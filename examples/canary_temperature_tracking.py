#!/usr/bin/env python3
"""In-situ canary voltage control under ambient temperature variation.

Reproduces the behaviour of the paper's Fig. 12: a model is deployed with the
full MATIC flow (profiling, memory-adaptive training, canary selection), and
the runtime controller re-regulates the SRAM rail as a temperature chamber
steps from −15 °C to 90 °C.  Because the chip operates below the 65 nm
temperature-inversion point, the tracked voltage falls as the chip heats up.

Run with:  python examples/canary_temperature_tracking.py
"""

from __future__ import annotations

from repro.experiments import default_flow, make_chip, prepare_benchmark
from repro.sram import EnvironmentalConditions, TemperatureChamber


def main() -> None:
    prepared = prepare_benchmark("inversek2j", seed=1)
    spec = prepared.spec

    chip = make_chip(seed=11)
    flow = default_flow(epochs=50, seed=1)
    deployment = flow.deploy_adaptive(
        chip, spec.topology, prepared.train,
        target_voltage=0.50, loss=spec.loss,
        initial_network=prepared.baseline, select_canaries=True,
    )
    controller = deployment.controller
    controller.voltage_step = 0.005
    print(f"deployed {spec.name} at 0.50 V with "
          f"{len(deployment.canaries)} in-situ canary bits "
          f"({len(deployment.canaries) // len(chip.memory)} per weight SRAM)\n")

    chamber = TemperatureChamber(start=25.0, low=-15.0, high=90.0, step=15.0)
    print(f"{'temperature':>12}  {'SRAM voltage':>12}  {'app. error':>10}")
    for conditions in chamber.conditions():
        chip.set_environment(conditions)
        trace = controller.regulate(safe_voltage=0.60)
        outputs, _ = chip.run_inference(prepared.test.inputs)
        error = spec.error(outputs, prepared.test)
        print(f"{conditions.temperature:>10.0f}°C  {trace.final_voltage:>11.3f}V  {error:>10.3f}")

    chip.set_environment(EnvironmentalConditions())
    print("\nThe canary-tracked rail follows the temperature-induced shift of the")
    print("read-failure boundary — no static worst-case margin is carried.")


if __name__ == "__main__":
    main()
