#!/usr/bin/env python3
"""Energy-efficiency scenarios enabled by MATIC's SRAM voltage scaling.

Uses the calibrated SNNAC energy/frequency model to explore the three
operating scenarios of the paper's Table II (HighPerf, EnOpt_split,
EnOpt_joint), and reports energy per cycle, power, and efficiency for a
deployed digit-recognition model.

Run with:  python examples/energy_optimization.py
"""

from __future__ import annotations

from repro.accelerator import NOMINAL_OPERATING_POINT
from repro.experiments import make_chip, prepare_benchmark, run_table2
from repro.quant import WeightQuantizer


def main() -> None:
    # chip + deployed model (provides cycle and MAC counts for GOPS figures)
    prepared = prepare_benchmark("mnist", seed=1, epochs=5)
    chip = make_chip(seed=11)
    chip.deploy(prepared.baseline, WeightQuantizer(total_bits=16, frac_bits=13))
    program = chip.npu.program
    print(f"deployed {prepared.spec.topology}: "
          f"{program.total_cycles_per_inference} cycles / inference, "
          f"{program.total_macs_per_inference} MACs / inference\n")

    table2 = run_table2(energy_model=chip.energy_model)
    nominal_energy = chip.energy_model.energy_per_cycle(NOMINAL_OPERATING_POINT)
    print(f"nominal: 0.90/0.90 V @ 250.0 MHz -> {nominal_energy:6.2f} pJ/cycle, "
          f"{chip.efficiency_gops_per_watt(NOMINAL_OPERATING_POINT):6.1f} GOPS/W")

    for scenario in table2.scenarios:
        point = scenario.matic_point
        print(f"{scenario.name:>11}: {point.logic_voltage:.2f}/{point.sram_voltage:.2f} V "
              f"@ {point.frequency / 1e6:5.1f} MHz -> {scenario.matic_energy:6.2f} pJ/cycle, "
              f"{chip.efficiency_gops_per_watt(point):6.1f} GOPS/W  "
              f"({scenario.reduction:.1f}x vs its baseline)")

    best = min(table2.scenarios, key=lambda s: s.matic_energy)
    energy_per_inference = (
        best.matic_energy * program.total_cycles_per_inference / 1e3
    )
    print(f"\nmost efficient configuration: {best.name} "
          f"({energy_per_inference:.1f} nJ per inference)")


if __name__ == "__main__":
    main()
