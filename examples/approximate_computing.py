#!/usr/bin/env python3
"""Approximate-computing workloads on the low-voltage accelerator.

The paper's two AxBench-style benchmarks — 2-joint inverse kinematics and
Black–Scholes option pricing — are regression kernels approximated by small
DNNs.  This example deploys both with the MATIC flow at the energy-optimal
0.50 V SRAM voltage and reports the output quality (MSE) alongside the energy
per approximated function call.

Run with:  python examples/approximate_computing.py
"""

from __future__ import annotations

from repro.accelerator import OperatingPoint
from repro.experiments import default_flow, make_chip, prepare_benchmark

ENERGY_OPTIMAL = OperatingPoint(0.55, 0.50, 17.8e6, name="EnOpt_split")


def main() -> None:
    flow = default_flow(epochs=60, seed=1)
    print(f"{'kernel':>12}  {'topology':>9}  {'float MSE':>10}  {'naive MSE':>10}  "
          f"{'MATIC MSE':>10}  {'nJ/call':>8}")

    for name in ("inversek2j", "bscholes"):
        prepared = prepare_benchmark(name, seed=1)
        spec = prepared.spec

        chip = make_chip(seed=11)
        naive = flow.deploy_naive(
            chip, spec.topology, prepared.train, target_voltage=0.50,
            loss=spec.loss, initial_network=prepared.baseline,
        )
        naive_mse = spec.error(naive.run_at(prepared.test.inputs), prepared.test)

        chip = make_chip(seed=11)
        adaptive = flow.deploy_adaptive(
            chip, spec.topology, prepared.train, target_voltage=0.50,
            loss=spec.loss, initial_network=prepared.baseline,
            select_canaries=False,
        )
        matic_mse = spec.error(adaptive.run_at(prepared.test.inputs), prepared.test)

        cycles = adaptive.program.total_cycles_per_inference
        energy_nj = cycles * chip.energy_model.energy_per_cycle(ENERGY_OPTIMAL) / 1e3
        print(f"{name:>12}  {spec.topology:>9}  {prepared.baseline_error:>10.4f}  "
              f"{naive_mse:>10.4f}  {matic_mse:>10.4f}  {energy_nj:>8.2f}")

    print("\nMATIC keeps the approximation quality near the float baseline while the")
    print("weight memories run 400 mV below their rated voltage.")


if __name__ == "__main__":
    main()
