#!/usr/bin/env python3
"""Full MATIC flow on the accelerator model: digit recognition at low voltage.

This example exercises the complete hardware path the paper evaluates:

* instantiate an SNNAC chip model (its weight SRAMs carry sampled
  bit-cell variation),
* train a float baseline, deploy it naively, and measure its on-chip error
  while the SRAM rail is overscaled, then
* run the MATIC flow — profile the chip at the target voltage, train around
  the profiled faults, redeploy — and measure again.

Run with:  python examples/mnist_voltage_scaling.py
"""

from __future__ import annotations

from repro.datasets import get_benchmark
from repro.experiments import default_flow, make_chip, prepare_benchmark


def main() -> None:
    target_voltages = (0.53, 0.50, 0.48, 0.46)

    prepared = prepare_benchmark("mnist", seed=1)
    spec = prepared.spec
    print(f"benchmark: {spec.name} ({spec.topology}), "
          f"float baseline error {prepared.baseline_error:.1%}\n")

    flow = default_flow(epochs=60, seed=1)
    print(f"{'SRAM voltage':>12}  {'bit fault rate':>14}  {'naive':>8}  {'MATIC':>8}")
    for voltage in target_voltages:
        chip = make_chip(seed=11)
        naive = flow.deploy_naive(
            chip, spec.topology, prepared.train,
            target_voltage=voltage, loss=spec.loss,
            initial_network=prepared.baseline,
        )
        naive_error = spec.error(naive.run_at(prepared.test.inputs), prepared.test)

        chip = make_chip(seed=11)  # same die statistics, fresh state
        adaptive = flow.deploy_adaptive(
            chip, spec.topology, prepared.train,
            target_voltage=voltage, loss=spec.loss,
            initial_network=prepared.baseline, select_canaries=False,
        )
        adaptive_error = spec.error(adaptive.run_at(prepared.test.inputs), prepared.test)
        fault_rate = sum(m.fault_rate for m in adaptive.fault_maps) / len(adaptive.fault_maps)

        print(f"{voltage:>11.2f}V  {fault_rate:>13.2%}  "
              f"{naive_error:>8.1%}  {adaptive_error:>8.1%}")

    print("\nThe naive deployment collapses as soon as read failures appear, while")
    print("the memory-adaptive model holds usable accuracy deep into overscaling.")


if __name__ == "__main__":
    main()
