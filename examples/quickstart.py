#!/usr/bin/env python3
"""Quickstart: train around SRAM bit errors with memory-adaptive training.

The minimal MATIC loop, in software only (no accelerator model):

1. train a float baseline on the digit benchmark,
2. impose a random SRAM fault pattern on its quantized weights (the naive
   deployment), and
3. fine-tune the same model with the faults injected during training (MAT)
   and compare the two.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.datasets import get_benchmark
from repro.matic import FaultMaskSet, MemoryAdaptiveTrainer
from repro.nn import Trainer
from repro.quant import WeightQuantizer


def main() -> None:
    # 1. data + float baseline --------------------------------------------
    spec = get_benchmark("mnist")
    dataset = spec.generate(num_samples=2000, seed=1)
    train, test = spec.split(dataset, seed=2)

    baseline = spec.build_network(seed=3)
    Trainer(baseline, learning_rate=0.2, epochs=60, seed=4).fit(train)
    baseline_error = spec.error(baseline.predict(test.inputs), test)
    print(f"float baseline error:        {baseline_error:6.1%}")

    # 2. naive deployment: quantize and impose a 2% bit-fault pattern -------
    quantizer = WeightQuantizer(total_bits=16, frac_bits=13)
    fault_rate = 0.02
    masks = FaultMaskSet.random(baseline, quantizer, fault_rate, rng=7)

    naive = baseline.copy()
    masks.install(naive)
    naive_error = spec.error(naive.predict(test.inputs), test)
    print(f"naive with {fault_rate:.0%} faulty bits:  {naive_error:6.1%}")

    # 3. memory-adaptive training with the same fault pattern ---------------
    adaptive = baseline.copy()
    trainer = MemoryAdaptiveTrainer(
        adaptive, masks, learning_rate=0.15, epochs=50, seed=5
    )
    trainer.fit(train)
    adaptive_error = spec.error(adaptive.predict(test.inputs), test)
    print(f"memory-adaptive, same faults:{adaptive_error:6.1%}")

    recovered = naive_error - adaptive_error
    print(f"\nMAT recovered {recovered:.1%} of application error "
          f"({naive_error:.1%} -> {adaptive_error:.1%}) at a "
          f"{fault_rate:.0%} bit-fault rate.")


if __name__ == "__main__":
    main()
