"""Regenerate Table I — application error at the nominal, energy-optimal
(0.50 V) and aggressive (0.46 V) SRAM voltages for the four benchmarks, plus
the AEI-reduction summary."""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.experiments import run_fig10, run_table1


def test_table1_application_error(benchmark, capsys, prepared_benchmarks):
    """Regenerate the Table I rows (reusing a single Fig. 10-style sweep)."""

    def run():
        # Regenerate through the historical per-voltage adaptive flow
        # (``warm_start=False`` is bit-identical to it), which the AEI
        # floors below were calibrated against.  The warm-started default
        # trades a little per-point adaptive error (within
        # ``bench_adaptive``'s tolerance) for the >=3x walk speedup, and is
        # gated qualitatively by ``bench_fig10_error_vs_voltage``.
        sweep = run_fig10(
            benchmarks=("mnist", "facedet", "inversek2j", "bscholes"),
            voltages=(0.90, 0.53, 0.52, 0.51, 0.50, 0.48, 0.46),
            adaptive_epochs=60,
            prepared_benchmarks=prepared_benchmarks,
            warm_start=False,
        )
        return run_table1(sweep=sweep)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, result.to_experiment_result().to_text())

    # Every benchmark must show the paper's qualitative result: the naive
    # hardware's average error increase is much larger than the adaptive
    # model's, so the AEI-reduction factor is comfortably above 1.
    for row in result.rows:
        assert row.naive_aei > row.adaptive_aei
        assert row.aei_reduction > 1.5
        # MATIC keeps the energy-optimal (0.50 V) error well below the naive
        assert row.adaptive_050 < row.naive_050
    assert result.average_aei_reduction > 2.0
    assert np.isfinite(result.average_aei_reduction)
