"""Sharded-sweep split/merge benchmark (BENCH_shard.json).

Runs the Fig. 9a voltage grid three ways over a shared artifact cache:

1. **Unsharded** — the reference single-host run.
2. **Shard 0/2** — computes its deterministic slice and publishes each task
   result to the cache; the merge is expected to be incomplete (unless the
   content hash happens to assign every task to shard 0).
3. **Shard 1/2** — computes the complementary slice and merges the full
   grid back out of the cache.

The merged table must be **bit-identical** to the unsharded run — same
floats, not merely close — and a re-run of shard 0 must recall everything
from the cache without recomputing a single task.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_shard.py

Appends a session record to ``BENCH_shard.json`` at the repository root and
exits non-zero on any mismatch.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _bench_records import append_record  # noqa: E402
from repro.experiments.cache import ArtifactCache  # noqa: E402
from repro.experiments.engine import (  # noqa: E402
    ShardIncompleteError,
    ShardSpec,
    SweepRunner,
    expand_grid,
)
from repro.experiments.fig09_sram import run_fig9a  # noqa: E402

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard.json"

NUM_WORDS = 1024
VOLTAGES = np.arange(0.40, 0.561, 0.02)
SWEEP_LABEL = "bench-shard-fig9a"


def _points(result) -> list[tuple[float, float, float, float]]:
    return [
        (p.voltage, p.measured_rate, p.predicted_rate, p.word_rate)
        for p in result.points
    ]


def _shard_runner(store: ArtifactCache, index: int, count: int) -> SweepRunner:
    return SweepRunner(
        workers=1,
        shard=ShardSpec(index, count),
        shard_store=store,
        sweep_label=SWEEP_LABEL,
    )


def bench_split_merge(cache_dir: str) -> dict:
    store = ArtifactCache(root=cache_dir)
    kwargs = dict(voltages=VOLTAGES, num_words=NUM_WORDS)

    start = time.perf_counter()
    reference = run_fig9a(runner=SweepRunner(workers=1), **kwargs)
    unsharded_seconds = time.perf_counter() - start

    # shard sizes are a property of the task content hash, not of list order
    tasks = expand_grid(voltages=[float(v) for v in VOLTAGES], seed=3)
    sizes = [len(ShardSpec(i, 2).partition(tasks)) for i in range(2)]

    start = time.perf_counter()
    shard0_result = None
    shard0_incomplete = False
    try:
        shard0_result = run_fig9a(runner=_shard_runner(store, 0, 2), **kwargs)
    except ShardIncompleteError:
        shard0_incomplete = True
    shard0_seconds = time.perf_counter() - start

    start = time.perf_counter()
    merged = run_fig9a(runner=_shard_runner(store, 1, 2), **kwargs)
    shard1_seconds = time.perf_counter() - start

    # a re-run of shard 0 is now a pure cache merge: zero recomputation
    rerun_runner = _shard_runner(store, 0, 2)
    start = time.perf_counter()
    remerged = run_fig9a(runner=rerun_runner, **kwargs)
    remerge_seconds = time.perf_counter() - start

    bit_identical = _points(merged) == _points(reference)
    remerge_identical = _points(remerged) == _points(reference)
    if shard0_result is not None:  # degenerate hash split: shard 0 owned it all
        bit_identical = bit_identical and _points(shard0_result) == _points(reference)

    return {
        "grid_points": len(tasks),
        "num_words": NUM_WORDS,
        "shard_sizes": sizes,
        "shard0_incomplete_as_expected": shard0_incomplete == (sizes[1] > 0),
        "merged_bit_identical": bit_identical,
        "remerge_bit_identical": remerge_identical,
        "remerge_recomputed_tasks": rerun_runner.tasks_run,
        "unsharded_seconds": round(unsharded_seconds, 6),
        "shard0_seconds": round(shard0_seconds, 6),
        "shard1_seconds": round(shard1_seconds, 6),
        "remerge_seconds": round(remerge_seconds, 6),
    }


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-bench-shard-") as cache_dir:
        result = bench_split_merge(cache_dir)

    session = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "split_merge": result,
    }
    append_record(
        RECORD_PATH,
        session,
        suite="shard-split-merge",
        headline={
            "latest_bit_identical": session["split_merge"]["merged_bit_identical"]
        },
    )
    print(json.dumps(session, indent=2))

    failures = []
    if not result["merged_bit_identical"]:
        failures.append("2-shard merge diverged from the unsharded run")
    if not result["remerge_bit_identical"]:
        failures.append("cache re-merge diverged from the unsharded run")
    if result["remerge_recomputed_tasks"] != 0:
        failures.append(
            f"re-merge recomputed {result['remerge_recomputed_tasks']} task(s) "
            "instead of recalling them from the cache"
        )
    if not result["shard0_incomplete_as_expected"]:
        failures.append("shard 0 completeness did not match its partition size")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
