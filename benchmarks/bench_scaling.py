"""Geometry-scaling benchmark (BENCH_scaling.json).

Runs the ``scaling_geometry`` driver's grid — chip geometry (PE count ×
bank capacity) crossed with a workload mix spanning a paper benchmark and
the procedural ``synth/`` families — three ways over a shared artifact
cache:

1. **Unsharded** — the reference single-host run.
2. **Shard 0/2** then **shard 1/2** — the split run; the second shard's
   merge must be **bit-identical** to the unsharded table (same floats,
   not merely close).

It also asserts the structural invariants the geometry refactor guarantees:
application error is identical across every geometry that fits a workload
(the systolic reduction is geometry-invariant), and capacity-constrained
points report placement spill instead of failing.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_scaling.py

Appends a session record to ``BENCH_scaling.json`` at the repository root
and exits non-zero on any mismatch.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _bench_records import append_record  # noqa: E402
from repro.experiments.cache import ArtifactCache  # noqa: E402
from repro.experiments.engine import (  # noqa: E402
    ShardIncompleteError,
    ShardSpec,
    SweepRunner,
)
from repro.experiments.scaling_geometry import run_scaling_geometry  # noqa: E402

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"

WORKLOADS = ("inversek2j", "synth/mlp-d3-w16", "synth/wide-f96-h8", "synth/ae-i32-b4")
NUM_PES = (2, 8, 16)
WORDS_PER_BANK = (64, 512)
SWEEP_LABEL = "bench-scaling-geometry"


def _rows(result) -> list[tuple]:
    return [
        (
            p.workload,
            p.num_pes,
            p.words_per_bank,
            p.fits,
            p.utilization,
            p.spilled_neurons,
            p.num_segments,
            p.cycles_per_inference,
            p.sram_reads,
            p.error,
            p.energy_per_inference_pj,
            p.efficiency_gops_per_w,
        )
        for p in result.points
    ]


def _shard_runner(store: ArtifactCache, index: int, count: int) -> SweepRunner:
    return SweepRunner(
        workers=1,
        shard=ShardSpec(index, count),
        shard_store=store,
        sweep_label=SWEEP_LABEL,
    )


def bench_scaling(cache_dir: str) -> dict:
    store = ArtifactCache(root=cache_dir)
    kwargs = dict(
        workloads=WORKLOADS,
        num_pes_values=NUM_PES,
        words_per_bank_values=WORDS_PER_BANK,
        num_samples=300,
        epochs=5,
        seed=3,
        cache=store,
    )

    start = time.perf_counter()
    reference = run_scaling_geometry(runner=SweepRunner(workers=1), **kwargs)
    unsharded_seconds = time.perf_counter() - start

    start = time.perf_counter()
    shard0_incomplete = False
    try:
        run_scaling_geometry(runner=_shard_runner(store, 0, 2), **kwargs)
    except ShardIncompleteError:
        shard0_incomplete = True
    shard0_seconds = time.perf_counter() - start

    start = time.perf_counter()
    merged = run_scaling_geometry(runner=_shard_runner(store, 1, 2), **kwargs)
    shard1_seconds = time.perf_counter() - start

    # structural invariants of the geometry refactor
    fitting = [p for p in reference.points if p.fits]
    error_geometry_invariant = all(
        len({p.error for p in fitting if p.workload == name}) <= 1
        for name in WORKLOADS
    )
    spilled_points = sum(1 for p in fitting if p.spilled_neurons > 0)
    capacity_wall_points = sum(1 for p in reference.points if not p.fits)

    return {
        "grid_points": len(reference.points),
        "workloads": list(WORKLOADS),
        "num_pes": list(NUM_PES),
        "words_per_bank": list(WORDS_PER_BANK),
        "merged_bit_identical": _rows(merged) == _rows(reference),
        "shard0_incomplete_as_expected": shard0_incomplete,
        "error_geometry_invariant": error_geometry_invariant,
        "spilled_points": spilled_points,
        "capacity_wall_points": capacity_wall_points,
        "unsharded_seconds": round(unsharded_seconds, 6),
        "shard0_seconds": round(shard0_seconds, 6),
        "shard1_seconds": round(shard1_seconds, 6),
    }


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-bench-scaling-") as cache_dir:
        result = bench_scaling(cache_dir)

    session = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scaling": result,
    }
    append_record(
        RECORD_PATH,
        session,
        suite="geometry-scaling",
        headline={
            "latest_bit_identical": result["merged_bit_identical"],
            "latest_unsharded_seconds": result["unsharded_seconds"],
        },
    )
    print(json.dumps(session, indent=2))

    failures = []
    if not result["merged_bit_identical"]:
        failures.append("2-shard merge diverged from the unsharded run")
    if not result["error_geometry_invariant"]:
        failures.append("application error varied with chip geometry")
    if result["spilled_points"] == 0:
        failures.append("grid exercised no placement-spill point")
    if result["capacity_wall_points"] == 0:
        failures.append("grid exercised no capacity-wall point")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
