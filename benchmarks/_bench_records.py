"""Shared JSON session-record appender for the benchmark harness.

Every benchmark surface (the pytest suite via ``conftest.py``, the
standalone ``bench_*.py`` scripts) tracks its performance trajectory in a
``BENCH_*.json`` record at the repository root: a rolling window of session
dicts plus a few headline fields for at-a-glance comparison.  The
read-validate-append-truncate-replace dance lives here once, so a policy
change (window size, locking, atomicity) lands in every record at the same
time.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

#: Keep the most recent N session records per suite.
RECORD_LIMIT = 50


def append_record(
    path: Path,
    session: dict[str, Any],
    *,
    suite: str,
    headline: dict[str, Any] | None = None,
    limit: int = RECORD_LIMIT,
    lock_path: Path | None = None,
) -> None:
    """Append ``session`` to the rolling JSON record at ``path``.

    ``headline`` entries are copied to the record's top level (latest
    wall-clock, speedup floor, ...) so dashboards need not dig through the
    session list.  With ``lock_path`` set, the read-modify-write runs under
    an advisory ``flock``, so concurrent sessions that agree on the lock
    location cannot drop each other's records; the temp-file +
    ``os.replace`` write keeps readers from ever seeing a torn file.  The
    perf record must never fail the benchmark run itself, so every step
    degrades silently.
    """
    lock_handle = None
    if lock_path is not None:
        try:
            lock_handle = open(lock_path, "w")
        except OSError:
            lock_handle = None
    try:
        if lock_handle is not None:
            try:
                import fcntl

                fcntl.flock(lock_handle, fcntl.LOCK_EX)
            except (ImportError, OSError):
                pass
        try:
            record = json.loads(path.read_text())
            if not isinstance(record, dict) or not isinstance(
                record.get("sessions"), list
            ):
                record = {"sessions": []}
        except (OSError, ValueError):
            record = {"sessions": []}
        record["suite"] = suite
        record["sessions"].append(session)
        record["sessions"] = record["sessions"][-limit:]
        for key, value in (headline or {}).items():
            record[key] = value
        temp_name = None
        try:
            handle = tempfile.NamedTemporaryFile(
                "w", dir=path.parent, suffix=".tmp", delete=False
            )
            temp_name = handle.name
            with handle as temp_file:
                temp_file.write(json.dumps(record, indent=2) + "\n")
            os.replace(temp_name, path)
        except OSError:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
    finally:
        if lock_handle is not None:
            lock_handle.close()
