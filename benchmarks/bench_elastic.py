"""Elastic queue-backend chaos benchmark (BENCH_elastic.json).

Exercises the fault-tolerant sweep service end to end on a real driver grid
(the Fig. 10 ``inversek2j`` voltage sweep) and records the three guarantees
the queue backend sells:

1. **elastic_kill** — the grid runs on a ``QueueBackend`` with 4 workers and
   a seeded :class:`FaultPlan` that SIGKILLs two of them mid-flight (one
   while holding a freshly-claimed lease, one right after a publish).  The
   merged result must be **bit-identical** to the ``SerialBackend``
   reference — same floats, not merely close.
2. **resume** — a brand-new coordinator over the same artifact store re-runs
   the same sweep and must recompute **zero** published tasks (everything
   recalled from the store).
3. **poison** — a deterministically failing task, with ``retries=1``, must
   be quarantined after exactly 2 attempts and reported in the merged
   result as a :class:`QuarantinedTask` instead of deadlocking the sweep.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_elastic.py

Appends a session record to ``BENCH_elastic.json`` at the repository root
and exits non-zero on any violated guarantee.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _bench_records import append_record  # noqa: E402
from repro.experiments.cache import ArtifactCache  # noqa: E402
from repro.experiments.engine import (  # noqa: E402
    QuarantinedTask,
    SweepRunner,
    expand_grid,
)
from repro.experiments.faults import FaultPlan, KillWorker  # noqa: E402
from repro.experiments.fig10_error_vs_voltage import run_fig10  # noqa: E402
from repro.experiments.queue import QueueBackend  # noqa: E402

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_elastic.json"

# three benchmarks, all voltages overscaled (< nominal threshold): one
# batched naive task + one chained adaptive-sweep task per benchmark = 6
# tasks, enough for both chaos kills to fire before the queue drains
BENCHMARKS = ("inversek2j", "bscholes", "facedet")
VOLTAGES = (0.46, 0.48, 0.50, 0.52, 0.54, 0.56)
NUM_SAMPLES = 240
ADAPTIVE_EPOCHS = 4
SWEEP_LABEL = "bench-elastic-fig10"


def _points(result) -> list[tuple]:
    return [
        (
            sweep.benchmark,
            sweep.nominal_error,
            point.voltage,
            point.bit_fault_rate,
            point.naive_error,
            point.adaptive_error,
        )
        for sweep in result.sweeps
        for point in sweep.points
    ]


def _run_fig10(store: ArtifactCache, runner: SweepRunner):
    return run_fig10(
        benchmarks=BENCHMARKS,
        voltages=VOLTAGES,
        num_samples=NUM_SAMPLES,
        adaptive_epochs=ADAPTIVE_EPOCHS,
        runner=runner,
        cache=store,
    )


def _queue_runner(store: ArtifactCache, backend: QueueBackend, workers: int):
    return SweepRunner(
        workers=workers,
        backend=backend,
        shard_store=store,
        sweep_label=SWEEP_LABEL,
    )


def bench_elastic_kill(store: ArtifactCache) -> tuple[dict, list[tuple]]:
    start = time.perf_counter()
    reference = _run_fig10(store, SweepRunner(workers=1))
    serial_seconds = time.perf_counter() - start

    plan = FaultPlan(
        rules=(
            KillWorker(worker=0, after_tasks=1, phase="claim"),
            KillWorker(worker=1, after_tasks=1, phase="publish"),
        )
    )
    backend = QueueBackend(
        store=store,
        lease_seconds=1.0,
        poll_seconds=0.02,
        backoff=0.05,
        respawn=False,
        fault_plan=plan,
    )
    start = time.perf_counter()
    chaos = _run_fig10(store, _queue_runner(store, backend, workers=4))
    chaos_seconds = time.perf_counter() - start

    reference_points = _points(reference)
    return {
        "grid_tasks": backend.last_stats["tasks"],
        "workers": 4,
        "workers_killed": backend.last_stats["worker_deaths"],
        "quarantined": backend.last_stats["quarantined"],
        "bit_identical": _points(chaos) == reference_points,
        "serial_seconds": round(serial_seconds, 6),
        "chaos_seconds": round(chaos_seconds, 6),
    }, reference_points


def bench_resume(store: ArtifactCache, reference_points: list[tuple]) -> dict:
    backend = QueueBackend(store=store, poll_seconds=0.02)
    start = time.perf_counter()
    resumed = _run_fig10(store, _queue_runner(store, backend, workers=2))
    resume_seconds = time.perf_counter() - start
    return {
        "recalled_tasks": backend.last_stats["recalled"],
        "recomputed_tasks": backend.last_stats["enqueued"],
        "bit_identical": _points(resumed) == reference_points,
        "resume_seconds": round(resume_seconds, 6),
    }


def _flaky_worker(shared, task):
    if task.voltage == shared["bad"]:
        raise RuntimeError("injected poison")
    return task.voltage * 2.0


def bench_poison(store: ArtifactCache) -> dict:
    tasks = expand_grid(voltages=(0.42, 0.46, 0.50, 0.54, 0.58), seed=5)
    shared = {"bad": 0.50}
    backend = QueueBackend(store=store, poll_seconds=0.02, backoff=0.02)
    runner = SweepRunner(
        workers=2,
        backend=backend,
        shard_store=store,
        sweep_label="bench-elastic-poison",
        retries=1,
    )
    start = time.perf_counter()
    results = runner.map(_flaky_worker, tasks, shared=shared)
    poison_seconds = time.perf_counter() - start
    poisoned = [r for r in results if isinstance(r, QuarantinedTask)]
    healthy_ok = [
        r for r in results if not isinstance(r, QuarantinedTask)
    ] == [t.voltage * 2.0 for t in tasks if t.voltage != shared["bad"]]
    return {
        "grid_tasks": len(tasks),
        "retries": 1,
        "poisoned_tasks": len(poisoned),
        "poison_attempts": poisoned[0].attempts if poisoned else None,
        "poison_error": poisoned[0].errors[-1] if poisoned else None,
        "healthy_results_intact": healthy_ok,
        "poison_seconds": round(poison_seconds, 6),
    }


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-bench-elastic-") as cache_dir:
        store = ArtifactCache(root=Path(cache_dir) / "cache")
        elastic_kill, reference_points = bench_elastic_kill(store)
        resume = bench_resume(store, reference_points)
        poison = bench_poison(store)

    session = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "elastic_kill": elastic_kill,
        "resume": resume,
        "poison": poison,
    }
    append_record(
        RECORD_PATH,
        session,
        suite="elastic-queue-chaos",
        headline={
            "latest_bit_identical": elastic_kill["bit_identical"],
            "latest_resume_recomputed": resume["recomputed_tasks"],
            "latest_poisoned": poison["poisoned_tasks"],
        },
    )
    print(json.dumps(session, indent=2))

    failures = []
    if not elastic_kill["bit_identical"]:
        failures.append("chaos run diverged from the serial reference")
    if elastic_kill["workers_killed"] != 2:
        failures.append(
            f"fault plan killed {elastic_kill['workers_killed']} workers, expected 2"
        )
    if elastic_kill["quarantined"] != 0:
        failures.append("healthy chaos run quarantined a task")
    if resume["recomputed_tasks"] != 0:
        failures.append(
            f"restart recomputed {resume['recomputed_tasks']} published task(s)"
        )
    if not resume["bit_identical"]:
        failures.append("resumed run diverged from the serial reference")
    if poison["poisoned_tasks"] != 1:
        failures.append(
            f"expected exactly 1 quarantined task, got {poison['poisoned_tasks']}"
        )
    if poison["poison_attempts"] != 2:
        failures.append(
            f"poison task took {poison['poison_attempts']} attempts, "
            "expected retries + 1 = 2"
        )
    if not poison["healthy_results_intact"]:
        failures.append("poisoning one task disturbed the healthy results")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
