"""Regenerate Fig. 9b — topology selection: application error versus model
size, used to pick compact topologies that avoid biased
over-parameterization."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_fig9b


def test_fig09b_topology_selection(benchmark, capsys):
    """Sweep hidden-layer width on the digit benchmark."""

    def run():
        return run_fig9b(
            benchmark="mnist", hidden_widths=(4, 8, 16, 32, 64), epochs=40
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, result.to_experiment_result().to_text())

    errors = {p.topology.split("-")[1]: p.test_error for p in result.points}
    # accuracy saturates around the paper-selected width: the selected
    # 32-hidden-unit model is much better than a tiny 4-unit model, while
    # doubling to 64 units buys little additional accuracy.
    assert errors["32"] < errors["4"]
    assert errors["64"] > errors["32"] - 0.05
    # parameter counts grow monotonically with width
    params = [p.num_parameters for p in result.points]
    assert params == sorted(params)
