"""Socket-broker chaos benchmark (BENCH_broker.json).

Exercises the networked sweep service end to end under the nastiest plan
the wire-level fault harness can express, and records the guarantees the
broker backend sells:

1. **broker_chaos** — a 12-task grid runs on a ``BrokerBackend`` with 4
   workers while the fault plan SIGKILLs two workers (one holding a
   freshly-claimed lease, one right after a publish), partitions a third
   from the broker mid-sweep, drops a fourth worker's ``complete``
   connections so lost acks must be re-sent, and SIGKILLs **the broker
   itself** after journaling its third completion.  The coordinator must
   restart the broker on the same port, journal replay must restore every
   settled task, and the merged result must be **bit-identical** to the
   ``SerialBackend`` reference — same floats, not merely close.
2. **resume** — a brand-new coordinator over the same artifact store re-runs
   the same sweep and must recompute **zero** published tasks.
3. **degraded** — a coordinator pointed at an unreachable broker address
   must drain the sweep inline (serially, full retry semantics) instead of
   hanging, and still match the serial reference bit for bit.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_broker.py

Appends a session record to ``BENCH_broker.json`` at the repository root
and exits non-zero on any violated guarantee.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _bench_records import append_record  # noqa: E402
from repro.experiments.broker import BrokerBackend  # noqa: E402
from repro.experiments.cache import ArtifactCache  # noqa: E402
from repro.experiments.engine import SweepRunner, expand_grid  # noqa: E402
from repro.experiments.faults import (  # noqa: E402
    DropConnection,
    FaultPlan,
    KillBroker,
    KillWorker,
    PartitionWorker,
)

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_broker.json"

VOLTAGES = tuple(round(0.40 + 0.015 * i, 3) for i in range(12))
SWEEP_LABEL = "bench-broker-chaos"

CHAOS_PLAN = FaultPlan(
    rules=(
        KillWorker(worker=0, after_tasks=1, phase="claim"),
        KillWorker(worker=1, after_tasks=1, phase="publish"),
        PartitionWorker(worker=2, after_tasks=1, seconds=0.8),
        DropConnection(worker=3, every=2, op="complete", limit=2),
        KillBroker(after_completions=3),
    )
)


def _chaos_worker(shared, task):
    rng = np.random.default_rng(task.seed)
    return {
        "voltage": task.voltage,
        "offset": shared["offset"],
        "draw": float(rng.uniform()),
    }


def _grid():
    return expand_grid(voltages=VOLTAGES, seed=29)


def _broker_backend(store: ArtifactCache, **kw) -> BrokerBackend:
    kw.setdefault("lease_seconds", 0.5)
    kw.setdefault("poll_seconds", 0.01)
    kw.setdefault("backoff", 0.05)
    kw.setdefault("connect_backoff", 0.02)
    return BrokerBackend(store=store, journal_dir=store.root / "broker", **kw)


def _broker_runner(store: ArtifactCache, backend: BrokerBackend, workers: int):
    return SweepRunner(
        workers=workers,
        backend=backend,
        shard_store=store,
        sweep_label=SWEEP_LABEL,
    )


def bench_broker_chaos(store: ArtifactCache) -> tuple[dict, list]:
    tasks = _grid()
    shared = {"offset": 11}
    start = time.perf_counter()
    reference = SweepRunner(workers=1).map(_chaos_worker, tasks, shared=shared)
    serial_seconds = time.perf_counter() - start

    backend = _broker_backend(store, respawn=False, fault_plan=CHAOS_PLAN)
    start = time.perf_counter()
    chaos = _broker_runner(store, backend, workers=4).map(
        _chaos_worker, tasks, shared=shared
    )
    chaos_seconds = time.perf_counter() - start
    return {
        "grid_tasks": backend.last_stats["tasks"],
        "workers": 4,
        "workers_killed": backend.last_stats["worker_deaths"],
        "partitions": 1,
        "dropped_connections": 2,
        "broker_restarts": backend.last_stats["broker_restarts"],
        "quarantined": backend.last_stats["quarantined"],
        "bit_identical": chaos == reference,
        "serial_seconds": round(serial_seconds, 6),
        "chaos_seconds": round(chaos_seconds, 6),
    }, reference


def bench_resume(store: ArtifactCache, reference: list) -> dict:
    backend = _broker_backend(store)
    start = time.perf_counter()
    resumed = _broker_runner(store, backend, workers=2).map(
        _chaos_worker, _grid(), shared={"offset": 11}
    )
    resume_seconds = time.perf_counter() - start
    return {
        "recalled_tasks": backend.last_stats["recalled"],
        "recomputed_tasks": backend.last_stats["enqueued"],
        "bit_identical": resumed == reference,
        "resume_seconds": round(resume_seconds, 6),
    }


def bench_degraded(store: ArtifactCache) -> dict:
    tasks = _grid()
    shared = {"offset": 3}  # different shared → a fresh sweep, nothing recalled
    reference = SweepRunner(workers=1).map(_chaos_worker, tasks, shared=shared)
    backend = _broker_backend(
        store,
        address="127.0.0.1:9",  # discard port: nothing listens there
        connect_timeout=0.2,
        connect_attempts=2,
    )
    start = time.perf_counter()
    degraded = _broker_runner(store, backend, workers=2).map(
        _chaos_worker, tasks, shared=shared
    )
    degraded_seconds = time.perf_counter() - start
    return {
        "grid_tasks": len(tasks),
        "inline_drained": backend.last_stats["inline_drained"],
        "bit_identical": degraded == reference,
        "degraded_seconds": round(degraded_seconds, 6),
    }


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-bench-broker-") as cache_dir:
        store = ArtifactCache(root=Path(cache_dir) / "cache")
        broker_chaos, reference = bench_broker_chaos(store)
        resume = bench_resume(store, reference)
        degraded = bench_degraded(store)

    session = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "broker_chaos": broker_chaos,
        "resume": resume,
        "degraded": degraded,
    }
    append_record(
        RECORD_PATH,
        session,
        suite="socket-broker-chaos",
        headline={
            "latest_bit_identical": broker_chaos["bit_identical"],
            "latest_broker_restarts": broker_chaos["broker_restarts"],
            "latest_resume_recomputed": resume["recomputed_tasks"],
        },
    )
    print(json.dumps(session, indent=2))

    failures = []
    if not broker_chaos["bit_identical"]:
        failures.append("chaos run diverged from the serial reference")
    if broker_chaos["workers_killed"] != 2:
        failures.append(
            f"fault plan killed {broker_chaos['workers_killed']} workers, expected 2"
        )
    if broker_chaos["broker_restarts"] != 1:
        failures.append(
            f"broker restarted {broker_chaos['broker_restarts']} times, expected "
            "exactly 1 (the kill-broker rule fires once)"
        )
    if broker_chaos["quarantined"] != 0:
        failures.append("healthy chaos run quarantined a task")
    if resume["recomputed_tasks"] != 0:
        failures.append(
            f"restart recomputed {resume['recomputed_tasks']} published task(s)"
        )
    if not resume["bit_identical"]:
        failures.append("resumed run diverged from the serial reference")
    if degraded["inline_drained"] != degraded["grid_tasks"]:
        failures.append(
            f"unreachable-broker fallback drained {degraded['inline_drained']} of "
            f"{degraded['grid_tasks']} tasks inline"
        )
    if not degraded["bit_identical"]:
        failures.append("degraded (inline) run diverged from the serial reference")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
