"""Variation-scenario benchmark (BENCH_variation.json).

Exercises the correlated-variation layer end to end and records the
quantities the refactor promises:

1. **Zero-correlation bit-identity** — a :class:`CorrelatedVminModel` with
   every strength at 0, and a chip built from an ``iid`` scenario, must
   produce *bit-identical* populations and fault maps to the legacy i.i.d.
   models at the same seed (same floats, not merely close).
2. **Sharded merge bit-identity** — the ``variation_scenarios`` driver run
   as shard 0/2 + shard 1/2 over a shared store must merge to the exact
   unsharded table.
3. **Measurable correlation effect at equal marginal variance** — at the
   same geometry and seeds, correlated scenarios must show larger fault-map
   clustering (row autocorrelation), a wider die-Vmin spread across the
   sampled dies, and per-cell marginals preserved (failure-probability curve
   unchanged).
4. **Canary placement** — stratified placement must cover at least as many
   die regions as pure-margin ordering on the correlated die.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_variation.py

Appends a session record to ``BENCH_variation.json`` at the repository root
and exits non-zero on any mismatch.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _bench_records import append_record  # noqa: E402
from repro.experiments.cache import ArtifactCache  # noqa: E402
from repro.experiments.common import make_chip  # noqa: E402
from repro.experiments.engine import (  # noqa: E402
    ShardIncompleteError,
    ShardSpec,
    SweepRunner,
)
from repro.experiments.variation_scenarios import run_variation_scenarios  # noqa: E402
from repro.sram.bitcell import (  # noqa: E402
    CorrelatedVminModel,
    EmpiricalVminModel,
    GaussianVminModel,
)
from repro.sram.variation import CorrelationSpec, VariationScenario  # noqa: E402

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_variation.json"

SWEEP_LABEL = "bench-variation-scenarios"
SHAPES = ("iid", "region", "mixed")
STRENGTHS = (0.5,)
VOLTAGE = 0.50


def _rows(result) -> list[tuple]:
    return [
        (
            p.benchmark,
            p.shape,
            p.strength,
            p.scenario_digest,
            p.vmin_mean,
            p.vmin_std,
            p.vmin_max,
            p.yield_fraction,
            p.fault_rate,
            p.mean_row_run,
            p.mean_column_run,
            p.row_autocorrelation,
            p.column_autocorrelation,
            p.naive_error,
            p.adaptive_error,
            p.margin_regions,
            p.stratified_regions,
            p.margin_detects,
            p.stratified_detects,
        )
        for p in result.points
    ]


def _shard_runner(store: ArtifactCache, index: int, count: int) -> SweepRunner:
    return SweepRunner(
        workers=1,
        shard=ShardSpec(index, count),
        shard_store=store,
        sweep_label=SWEEP_LABEL,
    )


def bench_bit_identity() -> dict:
    """Zero correlation must reproduce the legacy i.i.d. models bit for bit."""
    model_identical = True
    for base in (EmpiricalVminModel(), GaussianVminModel()):
        wrapped = CorrelatedVminModel(base=base)
        a = base.sample(128, 16, np.random.default_rng(7))
        b = wrapped.sample(128, 16, np.random.default_rng(7))
        model_identical &= bool(np.array_equal(a.vmin_read, b.vmin_read))
        model_identical &= bool(np.array_equal(a.preferred_state, b.preferred_state))

    legacy = make_chip(seed=23, words_per_bank=64, num_pes=2)
    scenario_chip = make_chip(
        seed=23, words_per_bank=64, num_pes=2, scenario=VariationScenario()
    )
    chip_identical = all(
        np.array_equal(
            lb.fault_map_at(VOLTAGE).stuck_mask, sb.fault_map_at(VOLTAGE).stuck_mask
        )
        and np.array_equal(lb.cells.vmin_read, sb.cells.vmin_read)
        for lb, sb in zip(legacy.memory, scenario_chip.memory)
    )
    return {
        "model_sample_bit_identical": model_identical,
        "iid_scenario_chip_bit_identical": bool(chip_identical),
    }


def bench_marginals() -> dict:
    """Correlation must redistribute variance without changing marginals."""
    base = EmpiricalVminModel()
    spec = CorrelationSpec.from_shape("mixed", 0.6)
    correlated = CorrelatedVminModel(
        base=base,
        row=spec.row,
        column_group=spec.column_group,
        region=spec.region,
    )
    # failure-probability curve is delegated verbatim to the base model
    voltages = np.linspace(0.40, 0.55, 7)
    curve_identical = bool(
        np.array_equal(
            base.failure_probability(voltages), correlated.failure_probability(voltages)
        )
    )
    # empirical marginal across many sampled populations (different seeds so
    # shared components average out)
    iid_cells = np.concatenate(
        [base.sample(64, 16, np.random.default_rng(s)).vmin_read.ravel() for s in range(30)]
    )
    corr_cells = np.concatenate(
        [
            correlated.sample(64, 16, np.random.default_rng(s)).vmin_read.ravel()
            for s in range(30)
        ]
    )
    mean_gap = abs(float(iid_cells.mean()) - float(corr_cells.mean()))
    std_ratio = float(corr_cells.std() / iid_cells.std())
    return {
        "failure_probability_identical": curve_identical,
        "marginal_mean_gap_volts": round(mean_gap, 6),
        "marginal_std_ratio": round(std_ratio, 4),
        "marginals_preserved": mean_gap < 0.002 and 0.9 < std_ratio < 1.1,
    }


def bench_sweep(cache_dir: str) -> dict:
    store = ArtifactCache(root=cache_dir)
    kwargs = dict(
        benchmarks=("inversek2j",),
        shapes=SHAPES,
        strengths=STRENGTHS,
        voltage=VOLTAGE,
        num_dies=6,
        num_pes=4,
        words_per_bank=128,
        num_samples=300,
        adaptive_epochs=8,
        seed=3,
        cache=store,
    )

    start = time.perf_counter()
    reference = run_variation_scenarios(runner=SweepRunner(workers=1), **kwargs)
    unsharded_seconds = time.perf_counter() - start

    start = time.perf_counter()
    shard0_incomplete = False
    try:
        run_variation_scenarios(runner=_shard_runner(store, 0, 2), **kwargs)
    except ShardIncompleteError:
        shard0_incomplete = True
    shard0_seconds = time.perf_counter() - start

    start = time.perf_counter()
    merged = run_variation_scenarios(runner=_shard_runner(store, 1, 2), **kwargs)
    shard1_seconds = time.perf_counter() - start

    iid = reference.points_for("iid")[0]
    correlated = [p for p in reference.points if p.shape != "iid"]
    clustering_shift = all(
        p.row_autocorrelation > iid.row_autocorrelation for p in correlated
    )
    vmin_spread_shift = all(p.vmin_std > iid.vmin_std for p in correlated)
    stratified_covers = all(
        p.stratified_regions >= p.margin_regions for p in reference.points
    )
    digests = {p.scenario_digest for p in reference.points}

    return {
        "grid_points": len(reference.points),
        "shapes": list(SHAPES),
        "strengths": list(STRENGTHS),
        "merged_bit_identical": _rows(merged) == _rows(reference),
        "shard0_incomplete_as_expected": shard0_incomplete,
        "scenario_digests_distinct": len(digests) == len(reference.points),
        "iid_row_autocorrelation": round(iid.row_autocorrelation, 6),
        "correlated_row_autocorrelation": [
            round(p.row_autocorrelation, 6) for p in correlated
        ],
        "clustering_shift": clustering_shift,
        "iid_vmin_std": round(iid.vmin_std, 6),
        "correlated_vmin_std": [round(p.vmin_std, 6) for p in correlated],
        "vmin_spread_shift": vmin_spread_shift,
        "iid_vs_correlated_vmin_gap": round(
            max(p.vmin_mean for p in correlated) - iid.vmin_mean, 6
        ),
        "stratified_covers_at_least_margin": stratified_covers,
        "unsharded_seconds": round(unsharded_seconds, 6),
        "shard0_seconds": round(shard0_seconds, 6),
        "shard1_seconds": round(shard1_seconds, 6),
    }


def main() -> int:
    identity = bench_bit_identity()
    marginals = bench_marginals()
    with tempfile.TemporaryDirectory(prefix="repro-bench-variation-") as cache_dir:
        sweep = bench_sweep(cache_dir)

    session = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "bit_identity": identity,
        "marginals": marginals,
        "sweep": sweep,
    }
    append_record(
        RECORD_PATH,
        session,
        suite="variation-scenarios",
        headline={
            "latest_bit_identical": sweep["merged_bit_identical"]
            and identity["model_sample_bit_identical"]
            and identity["iid_scenario_chip_bit_identical"],
            "latest_clustering_shift": sweep["clustering_shift"],
            "latest_unsharded_seconds": sweep["unsharded_seconds"],
        },
    )
    print(json.dumps(session, indent=2))

    failures = []
    if not identity["model_sample_bit_identical"]:
        failures.append("zero-correlation model diverged from the legacy sampler")
    if not identity["iid_scenario_chip_bit_identical"]:
        failures.append("iid-scenario chip diverged from the legacy chip")
    if not marginals["failure_probability_identical"]:
        failures.append("correlated model changed the failure-probability curve")
    if not marginals["marginals_preserved"]:
        failures.append("correlation changed the per-cell marginal distribution")
    if not sweep["merged_bit_identical"]:
        failures.append("2-shard merge diverged from the unsharded run")
    if not sweep["shard0_incomplete_as_expected"]:
        failures.append("shard 0/2 did not report an incomplete sweep")
    if not sweep["scenario_digests_distinct"]:
        failures.append("scenario digests collided across grid points")
    if not sweep["clustering_shift"]:
        failures.append("correlated scenarios showed no clustering shift vs i.i.d.")
    if not sweep["vmin_spread_shift"]:
        failures.append("correlated scenarios showed no die-Vmin spread shift")
    if not sweep["stratified_covers_at_least_margin"]:
        failures.append("stratified canary placement covered fewer regions than margin")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
