"""Regenerate Fig. 10 — application error versus SRAM voltage for all four
benchmarks, naive hardware versus MATIC, measured on the accelerator model."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_fig10


def test_fig10_error_vs_voltage(benchmark, capsys, prepared_benchmarks):
    """Sweep SRAM voltage on every benchmark, naive vs memory-adaptive."""

    def run():
        return run_fig10(
            benchmarks=("mnist", "facedet", "inversek2j", "bscholes"),
            voltages=(0.90, 0.53, 0.51, 0.50, 0.48, 0.46),
            adaptive_epochs=60,
            prepared_benchmarks=prepared_benchmarks,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, result.to_experiment_result().to_text())

    for sweep in result.sweeps:
        nominal = sweep.point_at(0.90)
        overscaled = [p for p in sweep.points if p.voltage < 0.54]
        # somewhere in the overscaled range the naive model collapses well
        # past its nominal error ...
        assert max(p.naive_error for p in overscaled) > nominal.naive_error * 1.5
        # ... while the memory-adaptive model's average error increase stays
        # well below the naive model's (the Table I relationship)
        assert sweep.average_error_increase("adaptive") < sweep.average_error_increase("naive")
        point_050 = sweep.point_at(0.50)
        assert point_050.adaptive_error < point_050.naive_error
