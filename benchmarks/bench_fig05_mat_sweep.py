"""Regenerate Fig. 5 — memory-adaptive training vs naive baseline over the
proportion of failed SRAM bits (simulated fault injection on the digit
benchmark)."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_fig5


def test_fig05_mat_sweep(benchmark, capsys, prepared_benchmarks):
    """Sweep the fault proportion and compare naive vs memory-adaptive error."""

    def run():
        return run_fig5(
            fault_rates=(0.005, 0.01, 0.02, 0.05, 0.10, 0.30, 0.50),
            adaptive_epochs=50,
            prepared=prepared_benchmarks["mnist"],
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, result.to_experiment_result().to_text())

    # Shape assertions: MAT recovers a large part of the fault-induced error
    # in the small/moderate fault-rate regime (the operating region of the
    # voltage-scaling experiments).
    for point in result.points:
        if point.fault_rate <= 0.05:
            assert point.adaptive_error <= point.naive_error + 0.02
    low_rate = result.points[1]  # 1% failed bits
    assert low_rate.naive_error - low_rate.adaptive_error > 0.03
