"""Regenerate Fig. 11 — per-cycle energy breakdown (leakage/dynamic, logic and
weight SRAM) at the nominal and MATIC-enabled operating points."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_fig11


def test_fig11_energy_breakdown(benchmark, capsys):
    """Recompute the energy decomposition from the calibrated chip model."""

    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    report(capsys, result.to_experiment_result().to_text())

    # nominal total matches the test chip's 67.1 pJ/cycle characteristic
    assert abs(result.nominal.total - 67.08) < 1.0
    # headline reductions: ~5.1x SRAM, ~2.4x logic
    assert 4.0 < result.sram_reduction < 6.0
    assert 2.0 < result.logic_reduction < 3.0
    # leakage is a small but non-zero fraction at both points
    assert 0.0 < result.nominal.leakage_total < result.nominal.dynamic_total
    assert 0.0 < result.optimized.leakage_total < result.optimized.dynamic_total
