"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's evaluation
and prints the regenerated rows next to the paper's reported values.  The
heavyweight artifacts (trained float baselines) are cached per session so
that benchmarks sharing a benchmark dataset do not retrain them.
"""

from __future__ import annotations

import pytest

from repro.experiments import prepare_benchmark


@pytest.fixture(scope="session")
def prepared_benchmarks():
    """Float baselines and data splits for all four application benchmarks."""
    return {
        name: prepare_benchmark(name, seed=1)
        for name in ("mnist", "facedet", "inversek2j", "bscholes")
    }


def report(capsys, text: str) -> None:
    """Print a regenerated table so it appears in the pytest output."""
    with capsys.disabled():
        print()
        print(text)
        print()
