"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's evaluation
and prints the regenerated rows next to the paper's reported values.  The
heavyweight artifacts (trained float baselines, memory-adaptive fine-tuning
runs) are memoized by the content-addressed artifact cache
(:mod:`repro.experiments.cache`), so a warm-cache pass recalls every
training instead of repeating it; the sweep grids themselves execute
through the :mod:`repro.experiments.engine` worker pool.

Every session appends its wall-clock and cache statistics to
``BENCH_sweep.json`` at the repository root, so the suite's performance
trajectory is tracked from PR to PR.
"""

from __future__ import annotations

import os
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from _bench_records import append_record
from repro.experiments import default_cache, prepare_benchmark

#: Where the suite wall-clock record lands (repository root).
BENCH_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
#: Keep the most recent N session records.
BENCH_RECORD_LIMIT = 50


@pytest.fixture(scope="session")
def prepared_benchmarks():
    """Float baselines and data splits for all four application benchmarks.

    ``prepare_benchmark`` is cache-backed: the first-ever session trains the
    baselines, every later session (and every sweep worker) recalls them.
    """
    return {
        name: prepare_benchmark(name, seed=1)
        for name in ("mnist", "facedet", "inversek2j", "bscholes")
    }


@pytest.fixture(scope="session", autouse=True)
def bench_sweep_record():
    """Record suite wall-clock and cache statistics in BENCH_sweep.json."""
    cache = default_cache()
    start_stats = cache.stats.as_dict()
    start = time.perf_counter()
    yield
    elapsed = time.perf_counter() - start
    end_stats = cache.stats.as_dict()
    session = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "wall_clock_seconds": round(elapsed, 3),
        "cache_enabled": cache.enabled,
        "cache_root": str(cache.root),
        # parent-process counters only: sweep-pool workers keep their own
        # stats, so on multi-core hosts this under-counts worker-side hits
        "cache_stats_scope": "parent-process",
        "cache": {key: end_stats[key] - start_stats[key] for key in end_stats},
        "workers_env": os.environ.get("REPRO_SWEEP_WORKERS", ""),
        "cpu_count": os.cpu_count(),
    }
    append_record(
        BENCH_RECORD_PATH,
        session,
        suite="benchmarks",
        limit=BENCH_RECORD_LIMIT,
        headline={"latest_wall_clock_seconds": session["wall_clock_seconds"]},
        lock_path=_lock_path(),
    )


def _lock_path() -> Path | None:
    """Advisory-lock location: a gitignored scratch dir in this checkout.

    The lock must be keyed to the resource it protects — the repo-root
    ``BENCH_sweep.json`` — so it lives next to it, in the checkout's
    ``.repro-cache/scratch/`` (gitignored), NOT under the configurable
    ``$REPRO_CACHE_DIR`` root: two sessions with different cache roots
    still race on the same record file and must take the same lock.
    """
    try:
        scratch = BENCH_RECORD_PATH.parent / ".repro-cache" / "scratch"
        scratch.mkdir(parents=True, exist_ok=True)
        return scratch / "BENCH_sweep.lock"
    except OSError:
        return None


def report(capsys, text: str) -> None:
    """Print a regenerated table so it appears in the pytest output."""
    with capsys.disabled():
        print()
        print(text)
        print()
