"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's evaluation
and prints the regenerated rows next to the paper's reported values.  The
heavyweight artifacts (trained float baselines, memory-adaptive fine-tuning
runs) are memoized by the content-addressed artifact cache
(:mod:`repro.experiments.cache`), so a warm-cache pass recalls every
training instead of repeating it; the sweep grids themselves execute
through the :mod:`repro.experiments.engine` worker pool.

Every session appends its wall-clock and cache statistics to
``BENCH_sweep.json`` at the repository root, so the suite's performance
trajectory is tracked from PR to PR.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.experiments import default_cache, prepare_benchmark

#: Where the suite wall-clock record lands (repository root).
BENCH_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
#: Keep the most recent N session records.
BENCH_RECORD_LIMIT = 50


@pytest.fixture(scope="session")
def prepared_benchmarks():
    """Float baselines and data splits for all four application benchmarks.

    ``prepare_benchmark`` is cache-backed: the first-ever session trains the
    baselines, every later session (and every sweep worker) recalls them.
    """
    return {
        name: prepare_benchmark(name, seed=1)
        for name in ("mnist", "facedet", "inversek2j", "bscholes")
    }


@pytest.fixture(scope="session", autouse=True)
def bench_sweep_record():
    """Record suite wall-clock and cache statistics in BENCH_sweep.json."""
    cache = default_cache()
    start_stats = cache.stats.as_dict()
    start = time.perf_counter()
    yield
    elapsed = time.perf_counter() - start
    end_stats = cache.stats.as_dict()
    session = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "wall_clock_seconds": round(elapsed, 3),
        "cache_enabled": cache.enabled,
        "cache_root": str(cache.root),
        # parent-process counters only: sweep-pool workers keep their own
        # stats, so on multi-core hosts this under-counts worker-side hits
        "cache_stats_scope": "parent-process",
        "cache": {key: end_stats[key] - start_stats[key] for key in end_stats},
        "workers_env": os.environ.get("REPRO_SWEEP_WORKERS", ""),
        "cpu_count": os.cpu_count(),
    }
    _append_session_record(session)


def _append_session_record(session: dict) -> None:
    """Read-modify-write BENCH_sweep.json under an advisory lock.

    The lock keeps concurrent sessions (parallel CI jobs on one workspace)
    from dropping each other's records; the temp-file + ``os.replace``
    write keeps readers from ever seeing a torn file.  The perf record
    must never fail the suite's teardown, so every step degrades silently.
    """
    try:
        lock_handle = open(BENCH_RECORD_PATH.with_suffix(".lock"), "w")
    except OSError:
        lock_handle = None
    try:
        if lock_handle is not None:
            try:
                import fcntl

                fcntl.flock(lock_handle, fcntl.LOCK_EX)
            except (ImportError, OSError):
                pass
        try:
            record = json.loads(BENCH_RECORD_PATH.read_text())
            if not isinstance(record, dict) or not isinstance(record.get("sessions"), list):
                record = {"sessions": []}
        except (OSError, ValueError):
            record = {"sessions": []}
        record["suite"] = "benchmarks"
        record["sessions"].append(session)
        record["sessions"] = record["sessions"][-BENCH_RECORD_LIMIT:]
        record["latest_wall_clock_seconds"] = session["wall_clock_seconds"]
        temp_name = None
        try:
            handle = tempfile.NamedTemporaryFile(
                "w", dir=BENCH_RECORD_PATH.parent, suffix=".tmp", delete=False
            )
            temp_name = handle.name
            with handle as temp_file:
                temp_file.write(json.dumps(record, indent=2) + "\n")
            os.replace(temp_name, BENCH_RECORD_PATH)
        except OSError:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
    finally:
        if lock_handle is not None:
            lock_handle.close()


def report(capsys, text: str) -> None:
    """Print a regenerated table so it appears in the pytest output."""
    with capsys.disabled():
        print()
        print(text)
        print()
