"""Regenerate Table III — comparison of SNNAC (nominal and with MATIC) against
prior DNN accelerators."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_table3


def test_table3_comparison(benchmark, capsys):
    """Recompute the SNNAC rows of the comparison table from the simulator."""

    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    report(capsys, result.to_experiment_result().to_text())

    nominal = result.snnac_nominal
    matic = result.snnac_matic
    # MATIC improves energy efficiency by roughly the 3.3x joint-scaling
    # factor over the nominal configuration
    ratio = matic.efficiency_gops_per_w / nominal.efficiency_gops_per_w
    assert 2.5 < ratio < 4.5
    # the low-power operating point sits well under a milliwatt, like the
    # paper's 0.37 mW figure
    assert matic.power_mw < 1.0
    # SNNAC+MATIC is competitive with the fully-connected prior work rows
    fully_connected = [
        row for row in result.prior_work if row.dnn_type == "Fully-connected"
    ]
    assert matic.efficiency_gops_per_w > min(r.efficiency_gops_per_w for r in fully_connected)
