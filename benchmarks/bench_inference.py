"""Inference read-path microbenchmark (BENCH_inference.json).

First bench record for the inference engine itself: measures the
operating-point-resident SRAM read path + compiled gather plans + decode
memoization against a faithful reconstruction of the pre-PR path —
bit-matrix SRAM storage with a per-read unpack → V_min compare → repack
round-trip, a per-segment Python scatter loop in ``compute_layer``, a
per-neuron/per-segment weight store, and a full ``word_to_float`` re-decode
per layer per call.

Four measurements on a fig10-style workload (100-32-10 MLP, 8 PEs,
512x16-bit banks, the paper's voltage grid):

* ``single_point`` — one inference batch at the 0.50 V MEP, cold (fresh
  chip, masks and plans not yet compiled) and warm (best of repeats).
* ``sweep`` — the full multi-voltage grid, one refreshed measurement per
  point (exactly what the fig10/table1 naive column runs), old vs new, cold
  and warm.

Every grid point is asserted bit-identical between the two paths: float
outputs, execution statistics (cycles/macs/sram_reads), and the
post-measurement bank contents (persisted corruption).  The session fails
if the warm sweep speedup falls below the 5x floor.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_inference.py
"""

from __future__ import annotations

import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _bench_records import append_record  # noqa: E402
from repro.accelerator.npu import Npu  # noqa: E402
from repro.accelerator.systolic import evaluate_layer_words  # noqa: E402
from repro.nn import Network  # noqa: E402
from repro.quant import WeightQuantizer  # noqa: E402
from repro.sram.array import SramBank, WeightMemorySystem  # noqa: E402
from repro.sram.bitops import pack_bits, unpack_words  # noqa: E402

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_inference.json"

TOPOLOGY = "100-32-10"
NUM_PES = 8
WORDS_PER_BANK = 512
WORD_BITS = 16
BATCH = 64
SEED = 3
CHIP_SEED = 11
#: the fig10 grid: nominal reference plus the paper's overscaled points
VOLTAGES = (0.90, 0.53, 0.52, 0.51, 0.50, 0.48, 0.46)
SINGLE_POINT = 0.50
TEMPERATURE = 25.0
SPEEDUP_FLOOR = 5.0
#: best-of repeats; generous because the floor gates CI on a shared runner
REPEATS = 5


# --------------------------------------------------------------------------
# Pre-PR reference: bit-matrix storage + per-read unpack/compare/repack,
# per-segment scatter loop, per-neuron store, full decode per layer per call.


class OldReadBank(SramBank):
    """The pre-PR SramBank access path on the same sampled cell population."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._bits = np.zeros((self.num_words, self.word_bits), dtype=np.uint8)

    def write(self, addresses, words) -> None:
        addresses = self._check_addresses(addresses)
        words = np.atleast_1d(np.asarray(words, dtype=np.uint64)) & np.uint64(
            self.word_mask
        )
        if words.shape != addresses.shape:
            if words.size == 1:
                words = np.full(addresses.shape, words[0], dtype=np.uint64)
            else:
                raise ValueError("addresses and words must have matching lengths")
        self._bits[addresses] = unpack_words(words, self.word_bits)
        self.write_count += int(addresses.size)

    def read(self, addresses, voltage=0.9, temperature=25.0) -> np.ndarray:
        addresses = self._check_addresses(addresses)
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        vmin = self.effective_vmin(temperature)[addresses]
        disturbed = vmin > float(voltage)
        bits = self._bits[addresses]
        preferred = self.cells.preferred_state[addresses]
        new_bits = np.where(disturbed, preferred, bits)
        self._bits[addresses] = new_bits
        self.read_count += int(addresses.size)
        return pack_bits(new_bits)

    def stored_words(self) -> np.ndarray:
        return pack_bits(self._bits)


def build_memory(bank_cls) -> WeightMemorySystem:
    """Identically seeded memory system over either bank implementation."""
    root = np.random.SeedSequence(CHIP_SEED)
    banks = [
        bank_cls(
            WORDS_PER_BANK,
            WORD_BITS,
            seed=np.random.default_rng(child),
            name=f"pe{index}.weights",
        )
        for index, child in enumerate(root.spawn(NUM_PES))
    ]
    return WeightMemorySystem(banks)


def old_store(placement, memory, quantized) -> None:
    """The pre-PR per-neuron, per-segment weight store."""
    for layer, weight_words, bias_words in zip(
        placement.layers, quantized.weight_words, quantized.bias_words
    ):
        for neuron_placement in layer.neurons:
            words = np.concatenate(
                [[bias_words[neuron_placement.neuron]], weight_words[:, neuron_placement.neuron]]
            ).astype(np.uint64)
            for segment in neuron_placement.segments:
                addresses = np.arange(segment.base_address, segment.end_address)
                memory[segment.pe].write(
                    addresses,
                    words[segment.word_offset : segment.word_offset + segment.length],
                )


def old_compute_layer(ring, inputs, program, placement, voltage, temperature):
    """The pre-PR compute_layer: per-segment Python scatter + full decode."""
    from repro.accelerator.systolic import LayerExecutionStats

    inputs = np.asarray(inputs, dtype=float)
    if inputs.ndim == 1:
        inputs = inputs.reshape(1, -1)
    layer_placement = placement.layers[program.layer_index]
    batch = inputs.shape[0]
    reads_before = sum(bank.read_count for bank in ring.memory)
    word_matrix = np.zeros(
        (program.out_features, program.in_features + 1), dtype=np.uint64
    )
    for pe_index, pe in enumerate(ring.pes):
        assigned = layer_placement.segments_on(pe_index)
        if not assigned:
            continue
        addresses = np.concatenate(
            [np.arange(s.base_address, s.end_address) for _, s in assigned]
        )
        words = pe.weight_bank.read(addresses, voltage=voltage, temperature=temperature)
        cursor = 0
        hosted_weight_words = 0
        for placement_entry, segment in assigned:
            word_matrix[
                placement_entry.neuron,
                segment.word_offset : segment.word_offset + segment.length,
            ] = words[cursor : cursor + segment.length]
            cursor += segment.length
            hosted_weight_words += segment.length - (1 if segment.word_offset == 0 else 0)
        pe.mac_count += batch * hosted_weight_words
    outputs = evaluate_layer_words(inputs, word_matrix, program, ring.data_format)
    passes = layer_placement.passes_required(ring.num_pes)
    stats = LayerExecutionStats(
        layer_index=program.layer_index,
        batch_size=batch,
        passes=passes,
        cycles=passes * (program.in_features + 1 + ring.pipeline_overhead),
        macs=program.in_features * program.out_features * batch,
        sram_reads=sum(bank.read_count for bank in ring.memory) - reads_before,
    )
    return outputs, stats


def old_run(npu, inputs, voltage, temperature=TEMPERATURE):
    """The pre-PR Npu.run loop over old_compute_layer."""
    from repro.accelerator.npu import InferenceStats

    activations = npu.data_format.quantize(np.asarray(inputs, dtype=float))
    if activations.ndim == 1:
        activations = activations.reshape(1, -1)
    stats = InferenceStats(batch_size=activations.shape[0])
    for layer_program in npu.program.layers:
        pre, layer_stats = old_compute_layer(
            npu.ring, activations, layer_program, npu.program.placement, voltage, temperature
        )
        activations = npu.afu.apply(layer_program.activation, pre)
        activations = npu.data_format.quantize(activations)
        stats.layer_stats.append(layer_stats)
        stats.cycles += layer_stats.cycles
        stats.macs += layer_stats.macs
        stats.sram_reads += layer_stats.sram_reads
    return activations, stats


def old_sweep(npu, quantized, inputs, voltages):
    """The pre-PR fig10 naive measurement: per point, refresh then run."""
    results = []
    for voltage in voltages:
        old_store(npu.program.placement, npu.memory, quantized)
        results.append(old_run(npu, inputs, voltage))
    return results


# --------------------------------------------------------------------------


def deploy(bank_cls):
    memory = build_memory(bank_cls)
    npu = Npu(memory)
    network = Network(TOPOLOGY, seed=SEED)
    quantizer = WeightQuantizer(total_bits=WORD_BITS)
    npu.deploy(network, quantizer)
    if bank_cls is OldReadBank:
        # deploy() stored through the new plan path into the shadowed word
        # array; restore through the old store so the bit-matrix storage is
        # the source of truth for the reference chip
        old_store(npu.program.placement, npu.memory, quantizer.quantize_network(network))
    return npu, quantizer.quantize_network(network)


def assert_point_identical(label, old, new, old_npu, new_npu):
    (old_out, old_stats), (new_out, new_stats) = old, new
    if not np.array_equal(old_out, new_out):
        raise AssertionError(f"{label}: outputs diverged from the reference path")
    old_tuple = (old_stats.cycles, old_stats.macs, old_stats.sram_reads)
    new_tuple = (new_stats.cycles, new_stats.macs, new_stats.sram_reads)
    if old_tuple != new_tuple:
        raise AssertionError(f"{label}: stats diverged {old_tuple} != {new_tuple}")
    for old_bank, new_bank in zip(old_npu.memory, new_npu.memory):
        if not np.array_equal(old_bank.stored_words(), new_bank.stored_words()):
            raise AssertionError(
                f"{label}: persisted corruption diverged in {new_bank.name}"
            )


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> int:
    rng = np.random.default_rng(1)
    inputs = rng.random((BATCH, int(TOPOLOGY.split("-")[0])))

    # ---- correctness oracle: every grid point bit-identical ----------------
    old_npu, old_words = deploy(OldReadBank)
    new_npu, _ = deploy(SramBank)
    oracle_old = old_sweep(old_npu, old_words, inputs, VOLTAGES)
    oracle_new = new_npu.run_sweep(inputs, VOLTAGES, temperature=TEMPERATURE)
    for voltage, old_point, new_point in zip(VOLTAGES, oracle_old, oracle_new):
        assert_point_identical(f"{voltage:.2f} V", old_point, new_point, old_npu, new_npu)

    # ---- single-point timings ---------------------------------------------
    old_npu, old_words = deploy(OldReadBank)
    t0 = time.perf_counter()
    old_single_cold = old_run(old_npu, inputs, SINGLE_POINT)
    old_single_cold_s = time.perf_counter() - t0
    old_single_warm_s, _ = _best_of(
        REPEATS,
        lambda: (old_store(old_npu.program.placement, old_npu.memory, old_words),
                 old_run(old_npu, inputs, SINGLE_POINT)),
    )

    new_npu, _ = deploy(SramBank)
    t0 = time.perf_counter()
    new_single_cold = new_npu.run(inputs, sram_voltage=SINGLE_POINT)
    new_single_cold_s = time.perf_counter() - t0
    new_single_warm_s, _ = _best_of(
        REPEATS,
        lambda: (new_npu.refresh_weights(),
                 new_npu.run(inputs, sram_voltage=SINGLE_POINT)),
    )
    if not np.array_equal(old_single_cold[0], new_single_cold[0]):
        raise AssertionError("single-point cold outputs diverged")

    # ---- multi-voltage sweep timings --------------------------------------
    old_npu, old_words = deploy(OldReadBank)
    t0 = time.perf_counter()
    old_sweep(old_npu, old_words, inputs, VOLTAGES)
    old_sweep_cold_s = time.perf_counter() - t0
    old_sweep_warm_s, _ = _best_of(
        REPEATS, lambda: old_sweep(old_npu, old_words, inputs, VOLTAGES)
    )

    new_npu, _ = deploy(SramBank)
    t0 = time.perf_counter()
    new_npu.run_sweep(inputs, VOLTAGES, temperature=TEMPERATURE)
    new_sweep_cold_s = time.perf_counter() - t0
    new_sweep_warm_s, _ = _best_of(
        REPEATS, lambda: new_npu.run_sweep(inputs, VOLTAGES, temperature=TEMPERATURE)
    )

    sweep_speedup = old_sweep_warm_s / new_sweep_warm_s
    session = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "workload": {
            "topology": TOPOLOGY,
            "num_pes": NUM_PES,
            "words_per_bank": WORDS_PER_BANK,
            "word_bits": WORD_BITS,
            "batch": BATCH,
            "voltages": list(VOLTAGES),
        },
        "single_point": {
            "voltage": SINGLE_POINT,
            "old_cold_seconds": round(old_single_cold_s, 6),
            "old_warm_seconds": round(old_single_warm_s, 6),
            "new_cold_seconds": round(new_single_cold_s, 6),
            "new_warm_seconds": round(new_single_warm_s, 6),
            "warm_speedup": round(old_single_warm_s / new_single_warm_s, 2),
        },
        "sweep": {
            "points": len(VOLTAGES),
            "old_cold_seconds": round(old_sweep_cold_s, 6),
            "old_warm_seconds": round(old_sweep_warm_s, 6),
            "new_cold_seconds": round(new_sweep_cold_s, 6),
            "new_warm_seconds": round(new_sweep_warm_s, 6),
            "warm_speedup": round(sweep_speedup, 2),
        },
        "bit_identical": True,  # asserted above, per grid point
    }
    append_record(
        RECORD_PATH,
        session,
        suite="inference-microbenchmark",
        headline={
            "latest_sweep_speedup": session["sweep"]["warm_speedup"],
            "speedup_floor": SPEEDUP_FLOOR,
        },
    )
    print(json.dumps(session, indent=2))
    if sweep_speedup < SPEEDUP_FLOOR:
        print(
            f"FAIL: sweep speedup {sweep_speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
