"""Regenerate Fig. 9a — measured SRAM read-failure rate versus supply voltage
at room temperature, on a 9 KB weight-SRAM-sized bank."""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.experiments import run_fig9a


def test_fig09a_sram_failure_rate(benchmark, capsys):
    """Profile the modelled SRAM across the paper's voltage sweep."""

    def run():
        return run_fig9a(voltages=np.arange(0.40, 0.561, 0.01))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, result.to_experiment_result().to_text())

    by_voltage = {round(p.voltage, 2): p for p in result.points}
    # first failures appear around 0.53 V ...
    assert by_voltage[0.53].measured_rate < 1e-3
    assert by_voltage[0.56].measured_rate == 0.0
    # ... the word-level incidence at the 0.50 V MEP is ~28% ...
    assert 0.20 < by_voltage[0.50].word_rate < 0.40
    # ... and essentially everything fails by 0.40 V.
    assert by_voltage[0.40].measured_rate > 0.9
    # the measured curve is monotone in voltage
    rates = [p.measured_rate for p in sorted(result.points, key=lambda p: p.voltage)]
    assert all(a >= b for a, b in zip(rates, rates[1:]))
