"""Regenerate Fig. 12 — closed-loop, canary-driven SRAM voltage control under
ambient temperature variation (−15 °C to 90 °C) on the inversek2j benchmark."""

from __future__ import annotations

from conftest import report

from repro.experiments import run_fig12


def test_fig12_temperature_tracking(benchmark, capsys):
    """Run the temperature-chamber sweep with the in-situ canary controller."""

    def run():
        return run_fig12(benchmark="inversek2j", target_voltage=0.50, adaptive_epochs=50)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, result.to_experiment_result().to_text())

    # the controller tracks temperature with the inverse relationship the
    # paper measures (below the temperature-inversion point)
    assert result.voltage_temperature_correlation < -0.5
    coldest = min(result.steps, key=lambda s: s.temperature)
    hottest = max(result.steps, key=lambda s: s.temperature)
    assert coldest.sram_voltage >= hottest.sram_voltage
    # accuracy is maintained across the whole sweep (no static margin needed)
    for step in result.steps:
        assert step.application_error < result.nominal_error + 0.05
    # the regulated voltage stays in the deep-overscaled region
    for step in result.steps:
        assert 0.44 <= step.sram_voltage <= 0.56
