"""Regenerate Table II — HighPerf / EnOpt_split / EnOpt_joint operating
scenarios and their energy reduction versus SRAM-at-nominal baselines."""

from __future__ import annotations

from conftest import report

from repro.experiments import PAPER_TABLE2, run_table2


def test_table2_energy_scenarios(benchmark, capsys):
    """Recompute the scenario table from the calibrated energy model."""

    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    report(capsys, result.to_experiment_result().to_text())

    highperf = result.scenario("HighPerf")
    split = result.scenario("EnOpt_split")
    joint = result.scenario("EnOpt_joint")

    # reductions land close to the paper's 1.4x / 2.5x / 3.3x
    assert abs(highperf.reduction - PAPER_TABLE2["HighPerf"]["reduction"]) < 0.3
    assert abs(split.reduction - PAPER_TABLE2["EnOpt_split"]["reduction"]) < 0.5
    assert abs(joint.reduction - PAPER_TABLE2["EnOpt_joint"]["reduction"]) < 0.5

    # scenario structure: HighPerf keeps logic at nominal for timing, the
    # energy-optimal scenarios scale logic well below nominal
    assert highperf.matic_point.logic_voltage > 0.85
    assert split.matic_point.logic_voltage < 0.65
    assert joint.matic_point.logic_voltage == joint.matic_point.sram_voltage
    # EnOpt_split is the most efficient configuration overall (as in the paper)
    assert split.matic_energy <= joint.matic_energy <= highperf.matic_energy
