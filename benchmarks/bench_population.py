"""Chip-population fleet benchmark (BENCH_population.json).

Exercises the fleet simulator end to end and records the quantities the
subsystem promises:

1. **Sharded merge bit-identity** — the ``fleet_population`` driver run as
   shard 0/2 + shard 1/2 over a shared store must merge to the exact
   unsharded per-die reports (same floats, not merely close).
2. **Warm-cache reuse** — re-running the same fleet against the same
   artifact-cache root must recompute **zero** per-die fault-map profiles
   (the ``fault-map/*.pkl`` artifact count does not grow).
3. **Population-vs-single-die consistency** — a fleet of one die must be
   bit-identical to a direct :func:`repro.population.simulate_die` call
   with the same population seed tree.
4. **Quarantine-safe rendering** — a fleet CLI run with one die poisoned
   through the fault plan must still print the merged table with exactly
   one ``QUARANTINED`` row and exit nonzero.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_population.py

Appends a session record to ``BENCH_population.json`` at the repository
root and exits non-zero on any mismatch.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _bench_records import append_record  # noqa: E402
from repro.experiments.cache import ArtifactCache  # noqa: E402
from repro.experiments.common import default_flow, prepare_benchmark  # noqa: E402
from repro.experiments.engine import (  # noqa: E402
    ShardIncompleteError,
    ShardSpec,
    SweepRunner,
)
from repro.experiments.fleet_population import run_fleet_population  # noqa: E402
from repro.population import ChipPopulation, simulate_die  # noqa: E402

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_population.json"

SWEEP_LABEL = "bench-fleet-population"
DIES = 4
REQUESTS = 12
VOLTAGES = (0.90, 0.50)
SEED = 3
CHIP_SEED = 11
GEOMETRY = dict(num_pes=4, words_per_bank=128)
NUM_SAMPLES = 300


def _rows(result) -> list[tuple]:
    return [
        (
            report.die,
            report.seed,
            report.vmin,
            report.fault_rate,
            report.canary_margin,
            report.requests_served,
            report.cycles,
            report.busy_seconds,
            tuple(sorted(report.requests_by_voltage.items())),
            tuple(sorted(report.errors_by_voltage.items())),
        )
        for report in result.reports
    ]


def _shard_runner(store: ArtifactCache, index: int, count: int) -> SweepRunner:
    return SweepRunner(
        workers=1,
        shard=ShardSpec(index, count),
        shard_store=store,
        sweep_label=SWEEP_LABEL,
    )


def _fault_map_artifacts(cache_dir: str) -> int:
    kind_dir = Path(cache_dir) / "fault-map"
    return len(list(kind_dir.glob("*.pkl"))) if kind_dir.is_dir() else 0


def bench_fleet(cache_dir: str) -> dict:
    store = ArtifactCache(root=cache_dir)
    kwargs = dict(
        benchmark="inversek2j",
        dies=DIES,
        num_requests=REQUESTS,
        voltages=VOLTAGES,
        num_samples=NUM_SAMPLES,
        seed=SEED,
        chip_seed=CHIP_SEED,
        **GEOMETRY,
    )

    start = time.perf_counter()
    reference = run_fleet_population(
        runner=SweepRunner(workers=1), cache=store, **kwargs
    )
    cold_seconds = time.perf_counter() - start
    cold_profiles = _fault_map_artifacts(cache_dir)

    # warm re-run: a fresh cache object over the same root must recall every
    # per-die fault-map profile instead of recomputing it
    warm_store = ArtifactCache(root=cache_dir)
    start = time.perf_counter()
    warm = run_fleet_population(
        runner=SweepRunner(workers=1), cache=warm_store, **kwargs
    )
    warm_seconds = time.perf_counter() - start
    recomputed_profiles = _fault_map_artifacts(cache_dir) - cold_profiles

    start = time.perf_counter()
    shard0_incomplete = False
    try:
        run_fleet_population(runner=_shard_runner(store, 0, 2), cache=store, **kwargs)
    except ShardIncompleteError:
        shard0_incomplete = True
    shard0_seconds = time.perf_counter() - start

    start = time.perf_counter()
    merged = run_fleet_population(
        runner=_shard_runner(store, 1, 2), cache=store, **kwargs
    )
    shard1_seconds = time.perf_counter() - start

    summary = reference.summary
    return {
        "dies": DIES,
        "requests": REQUESTS,
        "voltages": list(VOLTAGES),
        "merged_bit_identical": _rows(merged) == _rows(reference),
        "shard0_incomplete_as_expected": shard0_incomplete,
        "warm_bit_identical": _rows(warm) == _rows(reference),
        "fault_map_profiles_cold": cold_profiles,
        "fault_map_profiles_recomputed_warm": recomputed_profiles,
        "yield_fraction": summary.yield_fraction,
        "vmin_mean": round(summary.vmin_mean, 6),
        "vmin_std": round(summary.vmin_std, 6),
        "throughput_requests_per_second": round(
            summary.throughput_requests_per_second, 3
        ),
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "shard0_seconds": round(shard0_seconds, 6),
        "shard1_seconds": round(shard1_seconds, 6),
    }


def bench_single_die_consistency(cache_dir: str) -> dict:
    """A fleet of one die must equal a direct simulate_die call bit for bit."""
    store = ArtifactCache(root=cache_dir)
    fleet = run_fleet_population(
        benchmark="inversek2j",
        dies=1,
        num_requests=6,
        voltages=VOLTAGES,
        num_samples=NUM_SAMPLES,
        seed=SEED,
        chip_seed=CHIP_SEED,
        runner=SweepRunner(workers=1),
        cache=store,
        **GEOMETRY,
    )
    prepared = prepare_benchmark(
        "inversek2j", num_samples=NUM_SAMPLES, seed=SEED, cache=store
    )
    flow = default_flow(seed=SEED, cache=store)
    population = ChipPopulation(num_dies=1, entropy=CHIP_SEED, **GEOMETRY)
    requests = population.request_stream(6, VOLTAGES, seed=SEED)
    direct = simulate_die(
        population,
        0,
        flow,
        topology=prepared.spec.topology,
        train=prepared.train,
        loss=prepared.spec.loss,
        baseline=prepared.baseline,
        test_inputs=prepared.test.inputs,
        error_fn=lambda outputs: float(prepared.spec.error(outputs, prepared.test)),
        requests=requests,
        target_voltage=0.50,
    )
    report = fleet.report_for(0)
    return {
        "single_die_bit_identical": (
            report.vmin == direct.vmin
            and report.fault_rate == direct.fault_rate
            and report.canary_margin == direct.canary_margin
            and report.errors_by_voltage == direct.errors_by_voltage
            and report.requests_by_voltage == direct.requests_by_voltage
            and report.seed == direct.seed
        ),
        # the fleet run above already profiled this die into the shared
        # cache, so the direct call must recall it in one batched chip-level
        # round trip — no per-bank get/put traffic
        "profile_counters": flow.profile_counters.as_dict(),
        "profile_recall_is_batched": (
            flow.profile_counters.chip_hits >= 1
            and flow.profile_counters.bank_misses == 0
        ),
    }


def bench_quarantine_rendering(cache_dir: str) -> dict:
    """A poisoned die must degrade the fleet CLI to a QUARANTINED row."""
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    env["REPRO_FAULT_PLAN"] = json.dumps(
        [{"kind": "poison", "match": "die=0", "worker": -1}]
    )
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.experiments.fleet_population",
            "--dies", "2", "--requests", "4",
            "--voltages", *[str(v) for v in VOLTAGES],
            "--num-pes", str(GEOMETRY["num_pes"]),
            "--words-per-bank", str(GEOMETRY["words_per_bank"]),
            "--num-samples", str(NUM_SAMPLES),
            "--seed", str(SEED),
            "--backend", "queue", "--workers", "1",
            "--retries", "0", "--backoff", "0.05",
            "--cache-dir", cache_dir,
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=repo_root,
        timeout=600,
    )
    quarantined_rows = sum(
        line.strip().startswith("QUARANTINED")
        for line in proc.stdout.splitlines()
    )
    return {
        "exit_code": proc.returncode,
        "quarantined_rows": quarantined_rows,
        "table_rendered": "Vmin (V)" in proc.stdout,
        "quarantine_renders_degraded_table": (
            proc.returncode == 1
            and quarantined_rows == 1
            and "Vmin (V)" in proc.stdout
        ),
    }


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-bench-population-") as cache_dir:
        fleet = bench_fleet(cache_dir)
        consistency = bench_single_die_consistency(cache_dir)
        quarantine = bench_quarantine_rendering(cache_dir)

    session = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "fleet": fleet,
        "consistency": consistency,
        "quarantine": quarantine,
    }
    append_record(
        RECORD_PATH,
        session,
        suite="fleet-population",
        headline={
            "latest_bit_identical": fleet["merged_bit_identical"]
            and fleet["warm_bit_identical"]
            and consistency["single_die_bit_identical"],
            "latest_warm_profiles_recomputed": fleet[
                "fault_map_profiles_recomputed_warm"
            ],
            "latest_quarantine_safe": quarantine[
                "quarantine_renders_degraded_table"
            ],
            "latest_cold_seconds": fleet["cold_seconds"],
        },
    )
    print(json.dumps(session, indent=2))

    failures = []
    if not fleet["merged_bit_identical"]:
        failures.append("2-shard merge diverged from the unsharded fleet")
    if not fleet["shard0_incomplete_as_expected"]:
        failures.append("shard 0/2 did not report an incomplete sweep")
    if not fleet["warm_bit_identical"]:
        failures.append("warm re-run diverged from the cold run")
    if fleet["fault_map_profiles_recomputed_warm"] != 0:
        failures.append(
            "warm re-run recomputed "
            f"{fleet['fault_map_profiles_recomputed_warm']} fault-map profiles"
        )
    if not consistency["single_die_bit_identical"]:
        failures.append("N=1 fleet diverged from a direct simulate_die call")
    if not consistency["profile_recall_is_batched"]:
        failures.append(
            "die-0 profile recall was not one batched chip-level hit "
            f"(counters: {consistency['profile_counters']})"
        )
    if not quarantine["quarantine_renders_degraded_table"]:
        failures.append(
            "poisoned fleet CLI did not render exactly one QUARANTINED row "
            f"with a table and exit 1 (got {quarantine})"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
