"""Batched adaptive-deployment benchmark (BENCH_adaptive.json).

Times fig10's adaptive column for one benchmark both ways:

1. **Cold per-voltage** — the historical flow: one full
   :meth:`MaticFlow.deploy_adaptive` per overscaled operating point (profile
   the chip, compile, retrain from the pristine baseline, deploy, measure).
2. **Batched warm-start** — one :meth:`MaticFlow.deploy_adaptive_sweep`
   chained walk: fault maps for the whole axis from one sweep-profiling
   pass, one shared compile, and every point after the first fine-tuned from
   the neighboring voltage's converged weights under the reduced budget.

Both arms run against their own fresh artifact cache (no cross-arm recall)
and measure each point's on-chip error on the same held-out test split.
The session asserts, and the CI ``adaptive-smoke`` job enforces:

- end-to-end speedup >= the 3x floor,
- every warm-started adaptive error within ``ERROR_TOLERANCE`` of its cold
  counterpart,
- ``deploy_adaptive_sweep(warm_start=False)`` *bit-identical* to the cold
  per-voltage loop (trained weights and measured errors, exact equality),
- sweep-profiled fault maps bit-identical to per-voltage
  :meth:`SramProfiler.profile_bank` (the equivalence oracle).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_adaptive.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _bench_records import append_record  # noqa: E402
from repro.experiments.cache import ArtifactCache  # noqa: E402
from repro.experiments.common import (  # noqa: E402
    default_flow,
    make_chip,
    prepare_benchmark,
)
from repro.experiments.fig10_error_vs_voltage import (  # noqa: E402
    DEFAULT_VOLTAGES,
    NOMINAL_THRESHOLD,
)
from repro.sram import SramProfiler  # noqa: E402

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_adaptive.json"

BENCHMARK = "inversek2j"
#: fig10's overscaled operating points — the adaptive column's whole axis
VOLTAGES = tuple(v for v in DEFAULT_VOLTAGES if v < NOMINAL_THRESHOLD)
NUM_SAMPLES = 400
EPOCHS = 30
SEED = 1
CHIP_SEED = 11
SPEEDUP_FLOOR = 3.0
ERROR_TOLERANCE = 0.05


def _measure(prepared, deployment) -> float:
    return float(
        prepared.spec.error(deployment.run_at(prepared.test.inputs), prepared.test)
    )


def _network_state(network) -> list[tuple[np.ndarray, np.ndarray]]:
    return [(layer.weights.copy(), layer.bias.copy()) for layer in network.layers]


def _states_identical(a, b) -> bool:
    return len(a) == len(b) and all(
        np.array_equal(wa, wb) and np.array_equal(ba, bb)
        for (wa, ba), (wb, bb) in zip(a, b)
    )


def bench_adaptive_column(prepared, work_dir: Path) -> dict:
    common = dict(
        loss=prepared.spec.loss,
        initial_network=prepared.baseline,
        select_canaries=False,
    )

    # -------------------------------------------------- cold per-voltage arm
    cold_flow = default_flow(
        epochs=EPOCHS, seed=SEED, cache=ArtifactCache(root=work_dir / "cold")
    )
    cold_states, cold_errors = [], []
    start = time.perf_counter()
    for voltage in VOLTAGES:
        deployment = cold_flow.deploy_adaptive(
            make_chip(seed=CHIP_SEED),
            prepared.spec.topology,
            prepared.train,
            target_voltage=voltage,
            **common,
        )
        cold_states.append(_network_state(deployment.network))
        cold_errors.append(_measure(prepared, deployment))
    cold_seconds = time.perf_counter() - start

    # ------------------------------------------------ batched warm-start arm
    warm_flow = default_flow(
        epochs=EPOCHS, seed=SEED, cache=ArtifactCache(root=work_dir / "warm")
    )
    start = time.perf_counter()
    warm_points = warm_flow.deploy_adaptive_sweep(
        make_chip(seed=CHIP_SEED),
        prepared.spec.topology,
        prepared.train,
        voltages=VOLTAGES,
        warm_start=True,
        measure=lambda deployment: _measure(prepared, deployment),
        **common,
    )
    warm_seconds = time.perf_counter() - start
    warm_errors = [point.measurement for point in warm_points]

    # ------------------------------------- batched cold identity (untimed)
    identity_flow = default_flow(
        epochs=EPOCHS, seed=SEED, cache=ArtifactCache(root=work_dir / "identity")
    )
    identity_points = identity_flow.deploy_adaptive_sweep(
        make_chip(seed=CHIP_SEED),
        prepared.spec.topology,
        prepared.train,
        voltages=VOLTAGES,
        warm_start=False,
        measure=lambda deployment: _measure(prepared, deployment),
        **common,
    )
    cold_identity = all(
        _states_identical(state, _network_state(point.deployment.network))
        and error == point.measurement
        for state, error, point in zip(cold_states, cold_errors, identity_points)
    )

    error_deltas = [
        abs(warm - cold) for warm, cold in zip(warm_errors, cold_errors)
    ]
    return {
        "benchmark": BENCHMARK,
        "voltages": list(VOLTAGES),
        "epochs": EPOCHS,
        "num_samples": NUM_SAMPLES,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "cold_errors": [round(e, 6) for e in cold_errors],
        "warm_errors": [round(e, 6) for e in warm_errors],
        "max_error_delta": round(max(error_deltas), 6),
        "cold_identity_bit_identical": cold_identity,
        "warm_points_warm_started": [point.warm_started for point in warm_points],
    }


def bench_sweep_profiling_oracle() -> dict:
    """Sweep-profiled fault maps must equal measured per-voltage profiling."""
    profiler = SramProfiler()
    chip = make_chip(seed=CHIP_SEED)
    identical = True
    for bank in chip.memory:
        derived = profiler.profile_bank_sweep(bank, VOLTAGES)
        for voltage, report in zip(VOLTAGES, derived):
            reference = profiler.profile_bank(bank, voltage)
            if (
                reference.fault_map != report.fault_map
                or reference.pattern_errors != report.pattern_errors
                or reference.read_after_read_errors
                != report.read_after_read_errors
            ):
                identical = False
    return {
        "banks": len(chip.memory),
        "voltages": list(VOLTAGES),
        "sweep_maps_bit_identical": identical,
    }


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-bench-adaptive-") as tmp:
        work_dir = Path(tmp)
        prepared = prepare_benchmark(
            BENCHMARK,
            num_samples=NUM_SAMPLES,
            seed=SEED,
            cache=ArtifactCache(root=work_dir / "prepare"),
        )
        column = bench_adaptive_column(prepared, work_dir)
    oracle = bench_sweep_profiling_oracle()

    session = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "adaptive_column": column,
        "profiling_oracle": oracle,
        "speedup_floor": SPEEDUP_FLOOR,
        "error_tolerance": ERROR_TOLERANCE,
    }
    append_record(
        RECORD_PATH,
        session,
        suite="adaptive-sweep",
        headline={
            "latest_speedup": column["speedup"],
            "speedup_floor": SPEEDUP_FLOOR,
            "latest_max_error_delta": column["max_error_delta"],
            "error_tolerance": ERROR_TOLERANCE,
            "latest_cold_identity": column["cold_identity_bit_identical"],
            "latest_sweep_maps_bit_identical": oracle["sweep_maps_bit_identical"],
        },
    )
    print(json.dumps(session, indent=2))

    failures = []
    if column["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"adaptive-column speedup {column['speedup']}x below the "
            f"{SPEEDUP_FLOOR}x floor"
        )
    if column["max_error_delta"] > ERROR_TOLERANCE:
        failures.append(
            f"warm-start error drifted {column['max_error_delta']} from cold "
            f"(tolerance {ERROR_TOLERANCE})"
        )
    if not column["cold_identity_bit_identical"]:
        failures.append(
            "deploy_adaptive_sweep(warm_start=False) diverged from the "
            "historical per-voltage flow"
        )
    if not oracle["sweep_maps_bit_identical"]:
        failures.append("sweep-profiled fault maps diverged from profile_bank")
    if column["warm_points_warm_started"] != [False] + [True] * (
        len(VOLTAGES) - 1
    ):
        failures.append(
            "warm sweep did not warm-start every point after the first"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
