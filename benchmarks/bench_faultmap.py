"""Fault-map pipeline microbenchmark (BENCH_faultmap.json).

Measures the two wins of the array-native fault-map pipeline on a
4096-word x 16-bit bank at a high-fault operating point:

1. **Vectorized profiling** — :meth:`SramProfiler.profile_bank` against a
   faithful reimplementation of the pre-PR per-bit recording loop (one
   ``BitFault`` dataclass inserted into a dict per faulty bit, per-fault
   Python loops for the AND/OR masks).
2. **Memoized chip profiling** — a repeat :meth:`MaticFlow.profile_chip` at
   the same operating point must be a cache hit returning bit-identical
   fault maps.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_faultmap.py

Appends a session record to ``BENCH_faultmap.json`` at the repository root
and exits non-zero if the vectorized speedup falls below the 10x floor or
the memoized maps are not bit-identical.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _bench_records import append_record  # noqa: E402
from repro.accelerator.soc import Snnac, SnnacConfig  # noqa: E402
from repro.experiments.cache import ArtifactCache  # noqa: E402
from repro.matic.flow import MaticFlow  # noqa: E402
from repro.sram import BitFault, SramBank, SramProfiler  # noqa: E402

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_faultmap.json"

NUM_WORDS = 4096
WORD_BITS = 16
#: high-fault operating point: nearly every cell fails here (Fig. 9a)
VOLTAGE = 0.40
SPEEDUP_FLOOR = 10.0
REPEATS = 3


# --------------------------------------------------------------------------
# Pre-PR reference: dict-backed fault map + per-bit recording loop, verbatim.


class _LoopFaultMap:
    """The original ``dict[(address, bit)] -> value`` fault-map core."""

    def __init__(self, num_words: int, word_bits: int) -> None:
        self.num_words = num_words
        self.word_bits = word_bits
        self._faults: dict[tuple[int, int], int] = {}

    def add(self, fault: BitFault) -> None:
        if fault.address >= self.num_words:
            raise ValueError("address out of range")
        if fault.bit >= self.word_bits:
            raise ValueError("bit out of range")
        self._faults[(fault.address, fault.bit)] = fault.stuck_value

    def masks(self) -> tuple[np.ndarray, np.ndarray]:
        and_masks = np.full(self.num_words, (1 << self.word_bits) - 1, dtype=np.uint64)
        or_masks = np.zeros(self.num_words, dtype=np.uint64)
        for (address, bit), value in self._faults.items():
            if value == 0:
                and_masks[address] &= np.uint64(
                    ~(1 << bit) & ((1 << self.word_bits) - 1)
                )
            else:
                or_masks[address] |= np.uint64(1 << bit)
        return and_masks, or_masks


def _words_to_bits(words: np.ndarray, word_bits: int) -> np.ndarray:
    shifts = np.arange(word_bits, dtype=np.uint64)
    return ((np.asarray(words, dtype=np.uint64)[..., None] >> shifts) & np.uint64(1)).astype(
        np.uint8
    )


def profile_bank_loop(bank: SramBank, voltage: float) -> _LoopFaultMap:
    """The pre-PR profile_bank: vectorized reads, per-bit recording loop."""
    saved = bank.stored_words()
    addresses = np.arange(bank.num_words)
    fault_map = _LoopFaultMap(bank.num_words, bank.word_bits)
    for pattern in (0, bank.word_mask):
        expected = np.full(bank.num_words, pattern, dtype=np.uint64)
        bank.write(addresses, expected)
        bank.read(addresses, voltage=voltage)
        second_read = bank.read(addresses, voltage=voltage)
        second_diff = _words_to_bits(expected, bank.word_bits) != _words_to_bits(
            second_read, bank.word_bits
        )
        observed_bits = _words_to_bits(second_read, bank.word_bits)
        for address, bit in zip(*np.nonzero(second_diff)):
            fault_map.add(
                BitFault(int(address), int(bit), int(observed_bits[address, bit]))
            )
    bank.write(addresses, saved)
    # materialize the masks too: every consumer of a profiled map needs them
    fault_map.masks()
    return fault_map


# --------------------------------------------------------------------------


def _best_of(repeats: int, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_profile_bank() -> dict:
    bank = SramBank(NUM_WORDS, WORD_BITS, seed=42, name="bench")

    def run_vectorized():
        report = SramProfiler().profile_bank(bank, VOLTAGE)
        # materialize the masks inside the timed region, matching the
        # baseline: every consumer of a profiled map needs them
        report.fault_map.masks()
        return report

    loop_seconds, loop_map = _best_of(REPEATS, lambda: profile_bank_loop(bank, VOLTAGE))
    vector_seconds, report = _best_of(REPEATS, run_vectorized)
    vector_map = report.fault_map

    loop_faults = {key: value for key, value in loop_map._faults.items()}
    vector_faults = {
        (fault.address, fault.bit): fault.stuck_value for fault in vector_map.faults
    }
    if loop_faults != vector_faults:
        raise AssertionError("vectorized profiler diverged from the per-bit loop")

    return {
        "num_words": NUM_WORDS,
        "word_bits": WORD_BITS,
        "voltage": VOLTAGE,
        "fault_rate": round(vector_map.fault_rate, 6),
        "num_faults": vector_map.num_faults,
        "loop_seconds": round(loop_seconds, 6),
        "vectorized_seconds": round(vector_seconds, 6),
        "speedup": round(loop_seconds / vector_seconds, 2),
    }


def bench_profile_chip(cache_dir: str) -> dict:
    cache = ArtifactCache(root=cache_dir)
    flow = MaticFlow(training_cache=cache)

    cold_start = time.perf_counter()
    cold_maps = flow.profile_chip(Snnac(SnnacConfig(seed=7)), VOLTAGE)
    cold_seconds = time.perf_counter() - cold_start

    stores_after_cold = cache.stats.stores
    warm_start = time.perf_counter()
    warm_maps = flow.profile_chip(Snnac(SnnacConfig(seed=7)), VOLTAGE)
    warm_seconds = time.perf_counter() - warm_start

    # the warm lookup is one batched chip-level round trip, not per-bank
    cache_hit = (
        cache.stats.stores == stores_after_cold
        and flow.profile_counters.chip_hits >= 1
        and flow.profile_counters.bank_hits == 0
    )
    bit_identical = len(cold_maps) == len(warm_maps) and all(
        np.array_equal(a.stuck_mask, b.stuck_mask)
        and np.array_equal(a.stuck_values, b.stuck_values)
        for a, b in zip(cold_maps, warm_maps)
    )
    return {
        "banks": len(cold_maps),
        "voltage": VOLTAGE,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "warm_is_cache_hit": cache_hit,
        "bit_identical": bit_identical,
        "profile_counters": flow.profile_counters.as_dict(),
    }


def main() -> int:
    bank_result = bench_profile_bank()
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        chip_result = bench_profile_chip(cache_dir)

    session = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "profile_bank": bank_result,
        "profile_chip": chip_result,
    }
    append_record(
        RECORD_PATH,
        session,
        suite="faultmap-microbenchmark",
        headline={
            "latest_speedup": session["profile_bank"]["speedup"],
            "speedup_floor": SPEEDUP_FLOOR,
        },
    )

    print(json.dumps(session, indent=2))
    failures = []
    if bank_result["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"speedup {bank_result['speedup']}x below the {SPEEDUP_FLOOR}x floor"
        )
    if not chip_result["warm_is_cache_hit"]:
        failures.append("repeat profile_chip was not a cache hit")
    if not chip_result["bit_identical"]:
        failures.append("memoized fault maps were not bit-identical")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
