"""MATIC core: memory-adaptive training, in-situ canaries, and the
compile/deploy flow — the paper's primary contribution."""

from .canary import CanaryBit, CanaryController, CanarySelector, RegulationTrace
from .flow import MaticDeployment, MaticFlow, TrainingConfig
from .masking import FaultMaskSet, LayerMasks, apply_masks_to_values
from .training import MemoryAdaptiveTrainer

__all__ = [
    "CanaryBit",
    "CanaryController",
    "CanarySelector",
    "RegulationTrace",
    "MaticDeployment",
    "MaticFlow",
    "TrainingConfig",
    "FaultMaskSet",
    "LayerMasks",
    "apply_masks_to_values",
    "MemoryAdaptiveTrainer",
]
