"""Injection masking: applying SRAM fault maps to DNN weights.

This is the mechanism of Fig. 4 in the paper: profiled bit-cell failures are
expressed as per-word AND masks (cells stuck at 0) and OR masks (cells stuck
at 1).  During memory-adaptive training, the masks are applied to the
quantized weights before every forward pass so backprop sees — and
compensates for — exactly the corruption the deployed SRAM will inflict.

Two construction paths are provided:

* :meth:`FaultMaskSet.from_fault_maps` — derive masks from per-bank fault
  maps through the compiled weight placement (the post-silicon flow), and
* :meth:`FaultMaskSet.random` — statically flip a random proportion of
  weight bits (the paper's pre-silicon feasibility study, Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..accelerator.microcode import WeightPlacement
from ..nn.network import Network
from ..quant.quantizer import LayerQuantization, WeightQuantizer
from ..sram.bitops import pack_bits, popcount
from ..sram.fault_map import FaultMap

__all__ = ["LayerMasks", "FaultMaskSet", "apply_masks_to_values"]


def apply_masks_to_values(
    values: np.ndarray,
    and_mask: np.ndarray,
    or_mask: np.ndarray,
    fmt,
) -> np.ndarray:
    """Quantize float values, corrupt their SRAM words, and decode back.

    Implements ``dequant((Q(values) & and_mask) | or_mask)`` with the given
    fixed-point format — the value the accelerator would actually read.
    """
    words = fmt.float_to_word(values)
    corrupted = (words & and_mask.astype(np.uint64)) | or_mask.astype(np.uint64)
    return fmt.word_to_float(corrupted)


@dataclass
class LayerMasks:
    """Per-layer injection masks, aligned with the layer's parameter shapes."""

    weight_and: np.ndarray
    weight_or: np.ndarray
    bias_and: np.ndarray
    bias_or: np.ndarray
    #: SRAM word length the masks describe (bits above it are ignored)
    word_bits: int = 16

    def __post_init__(self) -> None:
        for name in ("weight_and", "weight_or", "bias_and", "bias_or"):
            setattr(self, name, np.asarray(getattr(self, name), dtype=np.uint64))
        if self.weight_and.shape != self.weight_or.shape:
            raise ValueError("weight mask shapes must match")
        if self.bias_and.shape != self.bias_or.shape:
            raise ValueError("bias mask shapes must match")
        if not 1 <= int(self.word_bits) <= 64:
            raise ValueError("word_bits must be in [1, 64]")

    @property
    def num_faulty_weight_bits(self) -> int:
        """Number of weight bits pinned by the masks."""
        full = np.uint64((1 << int(self.word_bits)) - 1)
        cleared = popcount(~self.weight_and & full)
        setbits = popcount(self.weight_or & full)
        return int(cleared + setbits)

    @classmethod
    def identity(cls, weight_shape: tuple[int, ...], bias_shape: tuple[int, ...], word_bits: int) -> "LayerMasks":
        """Masks that leave every bit untouched."""
        full = np.uint64((1 << word_bits) - 1)
        return cls(
            weight_and=np.full(weight_shape, full, dtype=np.uint64),
            weight_or=np.zeros(weight_shape, dtype=np.uint64),
            bias_and=np.full(bias_shape, full, dtype=np.uint64),
            bias_or=np.zeros(bias_shape, dtype=np.uint64),
            word_bits=word_bits,
        )


class FaultMaskSet:
    """Injection masks for every layer of a network, plus the formats used.

    The mask set is the contract between the SRAM profiling step and the
    memory-adaptive trainer: it fully determines how the deployed weights
    will be corrupted at the profiled operating point.
    """

    def __init__(
        self,
        layer_masks: list[LayerMasks],
        layer_formats: list[LayerQuantization],
        word_bits: int,
        description: str = "",
    ) -> None:
        if len(layer_masks) != len(layer_formats):
            raise ValueError("one LayerMasks per LayerQuantization is required")
        self.layer_masks = list(layer_masks)
        self.layer_formats = list(layer_formats)
        self.word_bits = int(word_bits)
        self.description = description

    def __len__(self) -> int:
        return len(self.layer_masks)

    @property
    def total_faulty_bits(self) -> int:
        return sum(masks.num_faulty_weight_bits for masks in self.layer_masks)

    def fault_rate(self) -> float:
        """Fraction of weight bits pinned across the whole network."""
        total_bits = sum(m.weight_and.size * self.word_bits for m in self.layer_masks)
        if total_bits == 0:
            return 0.0
        return self.total_faulty_bits / total_bits

    # ----------------------------------------------------------- apply

    def masked_layer_parameters(
        self, network: Network, layer_index: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Quantized, fault-masked view of one layer's master parameters."""
        layer = network.layers[layer_index]
        masks = self.layer_masks[layer_index]
        fmt = self.layer_formats[layer_index]
        weights = apply_masks_to_values(
            layer.weights, masks.weight_and, masks.weight_or, fmt.weight_format
        )
        bias = apply_masks_to_values(
            layer.bias, masks.bias_and, masks.bias_or, fmt.bias_format
        )
        return weights, bias

    def install(self, network: Network) -> None:
        """Set every layer's effective parameters to the masked view."""
        if len(network.layers) != len(self.layer_masks):
            raise ValueError("mask set does not match network depth")
        for index, layer in enumerate(network.layers):
            weights, bias = self.masked_layer_parameters(network, index)
            layer.set_effective(weights, bias)

    # ----------------------------------------------------- constructors

    @classmethod
    def identity(cls, network: Network, quantizer: WeightQuantizer) -> "FaultMaskSet":
        """A no-fault mask set (pure quantization, no bit errors)."""
        formats = quantizer.layer_formats(network)
        masks = [
            LayerMasks.identity(layer.weights.shape, layer.bias.shape, quantizer.total_bits)
            for layer in network.layers
        ]
        return cls(masks, formats, quantizer.total_bits, description="identity")

    @classmethod
    def from_fault_maps(
        cls,
        network: Network,
        quantizer: WeightQuantizer,
        placement: WeightPlacement,
        fault_maps: list[FaultMap],
        description: str = "",
    ) -> "FaultMaskSet":
        """Build masks from profiled per-bank fault maps via the placement."""
        formats = quantizer.layer_formats(network)
        masks: list[LayerMasks] = []
        for layer_index in range(len(network.layers)):
            weight_and, weight_or, bias_and, bias_or = placement.layer_fault_masks(
                fault_maps, layer_index, quantizer.total_bits
            )
            masks.append(
                LayerMasks(
                    weight_and, weight_or, bias_and, bias_or, word_bits=quantizer.total_bits
                )
            )
        return cls(masks, formats, quantizer.total_bits, description=description)

    @classmethod
    def random(
        cls,
        network: Network,
        quantizer: WeightQuantizer,
        fault_rate: float,
        rng: np.random.Generator | int | None = None,
        include_bias: bool = True,
        stuck_one_probability: float = 0.5,
        description: str = "",
    ) -> "FaultMaskSet":
        """Statically flip a random proportion of weight bits (Fig. 5 study)."""
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        formats = quantizer.layer_formats(network)
        word_bits = quantizer.total_bits
        full = np.uint64((1 << word_bits) - 1)
        masks: list[LayerMasks] = []
        for layer in network.layers:
            layer_masks = LayerMasks.identity(layer.weights.shape, layer.bias.shape, word_bits)
            layer_masks.weight_and, layer_masks.weight_or = _random_masks(
                layer.weights.shape, word_bits, fault_rate, stuck_one_probability, rng, full
            )
            if include_bias:
                layer_masks.bias_and, layer_masks.bias_or = _random_masks(
                    layer.bias.shape, word_bits, fault_rate, stuck_one_probability, rng, full
                )
            masks.append(layer_masks)
        return cls(
            masks,
            formats,
            word_bits,
            description=description or f"random fault rate {fault_rate:.3f}",
        )


def _random_masks(
    shape: tuple[int, ...],
    word_bits: int,
    fault_rate: float,
    stuck_one_probability: float,
    rng: np.random.Generator,
    full: np.uint64,
) -> tuple[np.ndarray, np.ndarray]:
    """Random per-word AND/OR masks with the given bit-level fault rate.

    The RNG draws (two uniform matrices over ``shape + (word_bits,)``) match
    the pre-vectorized implementation exactly, so masks for a given generator
    state are bit-identical to the historical ones.
    """
    stuck = rng.random(shape + (word_bits,)) < fault_rate
    stuck_one = rng.random(shape + (word_bits,)) < stuck_one_probability
    cleared = pack_bits(stuck & ~stuck_one)
    and_mask = np.full(shape, full, dtype=np.uint64) ^ cleared
    or_mask = pack_bits(stuck & stuck_one)
    return and_mask, or_mask
