"""Memory-adaptive training (MAT).

MAT augments vanilla backprop with the injection-masking process of Fig. 4:

1. master float weights ``w`` are quantized to the SRAM word format,
2. the profiled AND/OR fault masks are applied to the quantized words,
   producing the *fixed* weights ``m`` the accelerator would actually read,
3. the forward and backward passes run on ``m``, so the propagated error
   reflects the bit errors, and
4. the weight update keeps float-domain state:

   ``w[n+1] = m[n] − α · ∂J/∂m[n] + ε_q``,  with  ``ε_q = w[n] − Q(w[n])``

   i.e. the fractional quantization error is preserved so that small
   gradient updates accumulate across iterations instead of being rounded
   away (the convergence fix the paper adopts from Gupta et al.).
"""

from __future__ import annotations

import numpy as np

from ..nn.data import Dataset
from ..nn.network import Network
from ..nn.optimizers import Optimizer
from ..nn.trainer import Trainer, TrainingHistory
from ..quant.quantizer import WeightQuantizer
from .masking import FaultMaskSet, apply_masks_to_values

__all__ = ["MemoryAdaptiveTrainer"]


class MemoryAdaptiveTrainer(Trainer):
    """Trainer implementing the paper's memory-adaptive weight update rule.

    Parameters
    ----------
    network:
        The model to train; its master weights stay in float, its effective
        weights are replaced by the quantized/fault-masked view every step.
    mask_set:
        Injection masks (profiled or synthetic) plus per-layer fixed-point
        formats.  Use :meth:`repro.matic.masking.FaultMaskSet.identity` to
        run quantized-but-fault-free training.
    optimizer, learning_rate, batch_size, epochs, patience, seed:
        As in :class:`repro.nn.trainer.Trainer`.
    """

    def __init__(
        self,
        network: Network,
        mask_set: FaultMaskSet,
        optimizer: str | Optimizer = "momentum",
        learning_rate: float = 0.1,
        batch_size: int = 32,
        epochs: int = 50,
        patience: int | None = None,
        lr_decay: float = 0.93,
        weight_decay: float = 0.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(
            network,
            optimizer=optimizer,
            learning_rate=learning_rate,
            batch_size=batch_size,
            epochs=epochs,
            patience=patience,
            lr_decay=lr_decay,
            weight_decay=weight_decay,
            seed=seed,
        )
        if len(mask_set) != len(network.layers):
            raise ValueError("mask set depth does not match the network")
        self.mask_set = mask_set

    @classmethod
    def from_config(cls, network: Network, mask_set: FaultMaskSet, config) -> "MemoryAdaptiveTrainer":
        """Build a trainer from a :class:`repro.matic.flow.TrainingConfig`.

        The single construction point the MATIC flow uses for both cold
        (full-budget) and warm-started (reduced ``epochs``/``patience``)
        fine-tuning runs — every hyper-parameter comes from ``config``, so a
        sweep that swaps configs between operating points can never leak a
        stale setting from the flow's defaults.  ``config`` is duck-typed to
        avoid a circular import; any object with the ``TrainingConfig``
        fields works.
        """
        return cls(
            network,
            mask_set,
            optimizer=config.optimizer,
            learning_rate=config.learning_rate,
            batch_size=config.batch_size,
            epochs=config.epochs,
            patience=config.patience,
            lr_decay=config.lr_decay,
            weight_decay=config.weight_decay,
            seed=config.seed,
        )

    # ------------------------------------------------------------------

    def _install_masked_view(self) -> None:
        """Install the quantized, fault-masked effective parameters."""
        self.mask_set.install(self.network)

    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One MAT iteration: mask, forward, backward, adapted update."""
        self._install_masked_view()
        predictions = self.network.forward(inputs, training=True)
        loss_value = self.network.backward(predictions, targets)
        if self.weight_decay:
            for layer in self.network.layers:
                layer.grad_weights = (
                    layer.grad_weights + self.weight_decay * layer.effective_weights
                )

        for index, layer in enumerate(self.network.layers):
            fmt = self.mask_set.layer_formats[index]
            weight_format = fmt.weight_format
            bias_format = fmt.bias_format
            # m[n]: the masked/quantized parameters the passes just used
            masked_weights = layer.effective_weights
            masked_bias = layer.effective_bias
            # ε_q: *fractional* (sub-LSB) quantization error of the master
            # parameters.  Masters are clamped to the representable range
            # first; otherwise a master pushed outside the range by a fault
            # would make ε_q the full clipping error and the float weights
            # would drift without bound.
            clipped_weights = np.clip(
                layer.weights, weight_format.min_value, weight_format.max_value
            )
            clipped_bias = np.clip(
                layer.bias, bias_format.min_value, bias_format.max_value
            )
            eps_weights = clipped_weights - weight_format.quantize(clipped_weights)
            eps_bias = clipped_bias - bias_format.quantize(clipped_bias)
            # optimizer delta corresponds to α · ∂J/∂m (with momentum/Adam
            # generalizations handled by the optimizer itself)
            delta_weights = self.optimizer.parameter_delta(
                f"layer{index}.weights", layer.grad_weights
            )
            delta_bias = self.optimizer.parameter_delta(
                f"layer{index}.bias", layer.grad_bias
            )
            layer.weights = np.clip(
                masked_weights - delta_weights + eps_weights,
                weight_format.min_value,
                weight_format.max_value,
            )
            layer.bias = np.clip(
                masked_bias - delta_bias + eps_bias,
                bias_format.min_value,
                bias_format.max_value,
            )

        return loss_value

    def fit(
        self,
        train: Dataset,
        validation: Dataset | None = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train and leave the network carrying the masked deployment view.

        After training, the network's *effective* parameters hold the
        quantized, fault-masked weights (what the accelerator will compute
        with), while the master parameters hold the float training state.
        Evaluation of the deployed behaviour should therefore use the network
        as-is; call :meth:`repro.nn.network.Network.clear_effective` to get
        back the pure float model.
        """
        history = super().fit(train, validation=validation, verbose=verbose)
        self._install_masked_view()
        return history

    # ------------------------------------------------------------------

    def deployed_accuracy_view(self) -> Network:
        """Return a copy of the network whose *master* weights are the masked view.

        Useful for handing the trained-around model to tooling that ignores
        effective weights (e.g. the weight quantizer during deployment).
        """
        clone = self.network.copy()
        for index, layer in enumerate(clone.layers):
            masks = self.mask_set.layer_masks[index]
            fmt = self.mask_set.layer_formats[index]
            layer.weights = apply_masks_to_values(
                layer.weights, masks.weight_and, masks.weight_or, fmt.weight_format
            )
            layer.bias = apply_masks_to_values(
                layer.bias, masks.bias_and, masks.bias_or, fmt.bias_format
            )
        return clone


def quantizer_for(mask_set: FaultMaskSet) -> WeightQuantizer:
    """Convenience: a quantizer matching the mask set's word length."""
    return WeightQuantizer(total_bits=mask_set.word_bits)
