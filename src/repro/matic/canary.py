"""In-situ synaptic canaries and the runtime voltage-control loop.

Instead of replica canary circuits plus static margin, MATIC selects a small
number of *marginal* bit-cells directly from the weight SRAMs — cells that
still read correctly at the target operating voltage but are the closest to
read failure.  The runtime controller (the on-chip µC in the test chip)
periodically polls those cells and walks the SRAM rail down until a canary
fails, then backs off one step and restores the canary states (Algorithm 1 in
the paper).  Because the canaries are the most marginal cells, they fail
before the cells the deployed model actually depends on, and because DNNs
tolerate a handful of uncompensated errors, accuracy does not depend on the
canary bits themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..accelerator.soc import Snnac
from ..sram import calibration
from ..sram.array import SramBank, WeightMemorySystem
from ..sram.profiler import SramProfiler

__all__ = ["CanaryBit", "CanarySelector", "CanaryController", "RegulationTrace"]


@dataclass(frozen=True)
class CanaryBit:
    """One in-situ canary: a marginal weight bit-cell and its expected value."""

    bank: int
    address: int
    bit: int
    expected_value: int

    def __post_init__(self) -> None:
        if self.expected_value not in (0, 1):
            raise ValueError("expected_value must be 0 or 1")


class CanarySelector:
    """Select marginal weight bit-cells to serve as in-situ canaries.

    Parameters
    ----------
    canaries_per_bank:
        Number of canary cells per weight SRAM (the paper conservatively
        uses eight distributed cells per bank).
    strategy:
        ``"profiled"`` (default) discovers marginal cells by profiling each
        bank at a descending sequence of voltages below the target operating
        point — the post-silicon procedure.  ``"oracle"`` reads the
        behavioural model's ground-truth margins directly (useful in tests).
    search_step:
        Voltage step of the profiled search, volts.
    search_depth:
        Number of steps below the target voltage to search.
    placement:
        ``"margin"`` (default) takes the most marginal cells outright — the
        paper's pure-margin ordering.  ``"stratified"`` spreads the picks
        across die regions and column groups, taking the most marginal cell
        of each spatial stratum round-robin: under correlated (clustered)
        variation, pure-margin ordering can land every canary in one weak
        region and leave the rest of the bank unguarded.  The stratification
        grid follows the bank's :class:`~repro.sram.variation.VariationScenario`
        when one is attached, else ``num_regions`` / ``column_group_size``.
    num_regions / column_group_size:
        Default stratification grid for ``"stratified"`` placement on banks
        without a scenario.
    """

    def __init__(
        self,
        canaries_per_bank: int = 8,
        strategy: str = "profiled",
        search_step: float = 0.005,
        search_depth: int = 20,
        placement: str = "margin",
        num_regions: int = 4,
        column_group_size: int = 4,
    ) -> None:
        if canaries_per_bank <= 0:
            raise ValueError("canaries_per_bank must be positive")
        if strategy not in ("profiled", "oracle"):
            raise ValueError("strategy must be 'profiled' or 'oracle'")
        if search_step <= 0 or search_depth <= 0:
            raise ValueError("search_step and search_depth must be positive")
        if placement not in ("margin", "stratified"):
            raise ValueError("placement must be 'margin' or 'stratified'")
        if num_regions <= 0 or column_group_size <= 0:
            raise ValueError("num_regions and column_group_size must be positive")
        self.canaries_per_bank = int(canaries_per_bank)
        self.strategy = strategy
        self.search_step = float(search_step)
        self.search_depth = int(search_depth)
        self.placement = placement
        self.num_regions = int(num_regions)
        self.column_group_size = int(column_group_size)

    # ------------------------------------------------------------------

    def select(
        self,
        memory: WeightMemorySystem,
        target_voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
        used_words_per_bank: list[int] | None = None,
    ) -> list[CanaryBit]:
        """Select canaries from every bank for a target operating voltage.

        ``used_words_per_bank`` restricts candidates to the address range the
        deployed model actually occupies in each bank — the canaries must be
        *synaptic* bit-cells so that the runtime controller's restore step
        (which rewrites the deployed weight image) also restores them.
        """
        if used_words_per_bank is not None and len(used_words_per_bank) < len(memory):
            raise ValueError("used_words_per_bank must cover every bank")
        canaries: list[CanaryBit] = []
        for bank_index, bank in enumerate(memory):
            limit = (
                bank.num_words
                if used_words_per_bank is None
                else min(int(used_words_per_bank[bank_index]), bank.num_words)
            )
            if self.strategy == "oracle":
                ordered = self._select_oracle(bank, target_voltage, temperature, limit)
            else:
                ordered = self._select_profiled(bank, target_voltage, temperature, limit)
            if self.placement == "stratified":
                cells = self._stratify(ordered, bank, limit)
            else:
                cells = ordered[: self.canaries_per_bank]
            for address, bit in cells:
                expected = int((int(bank.stored_words()[address]) >> bit) & 1)
                canaries.append(CanaryBit(bank_index, address, bit, expected))
        return canaries

    def _select_oracle(
        self, bank: SramBank, target_voltage: float, temperature: float, limit: int
    ) -> list[tuple[int, int]]:
        """All usable candidate cells in order of increasing margin."""
        marginal = bank.marginal_cells(
            target_voltage, temperature=temperature, count=bank.size_bits
        )
        return [
            (fault.address, fault.bit) for fault in marginal if fault.address < limit
        ]

    def _select_profiled(
        self, bank: SramBank, target_voltage: float, temperature: float, limit: int
    ) -> list[tuple[int, int]]:
        """Find the cells that fail at the highest voltage below the target.

        The profiler is run at ``target − k·step`` for increasing ``k``; cells
        that first appear at small ``k`` are the most marginal still-working
        cells at the target voltage.  Cells already failing *at* the target
        are excluded (they are covered by the fault map, not usable as
        canaries).
        """
        already_failed = {
            (fault.address, fault.bit)
            for fault in SramProfiler()
            .profile_bank(bank, target_voltage, temperature)
            .fault_map.faults
        }
        # margin placement needs only the first canaries_per_bank discoveries;
        # stratified placement keeps searching the full depth so every spatial
        # stratum gets a chance to contribute a candidate
        enough = (
            self.canaries_per_bank if self.placement == "margin" else float("inf")
        )
        selected: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set(already_failed)
        profiler = SramProfiler()
        for step_index in range(1, self.search_depth + 1):
            voltage = target_voltage - step_index * self.search_step
            if voltage <= 0:
                break
            report = profiler.profile_bank(bank, voltage, temperature)
            for fault in report.fault_map.faults:
                key = (fault.address, fault.bit)
                if key in seen or fault.address >= limit:
                    continue
                seen.add(key)
                selected.append(key)
                if len(selected) >= enough:
                    return selected
        return selected

    def _stratify(
        self, ordered: list[tuple[int, int]], bank: SramBank, limit: int
    ) -> list[tuple[int, int]]:
        """Round-robin the most marginal cell of each spatial stratum.

        Strata are (die region, column group) buckets; candidates arrive
        most-marginal-first, so taking the head of each bucket round-robin
        yields the most marginal representative of every covered stratum
        before any stratum contributes a second canary.
        """
        if not ordered:
            return []
        scenario = getattr(bank, "scenario", None)
        if scenario is not None:
            num_regions = scenario.correlation.num_regions
            group_size = scenario.correlation.column_group_size
        else:
            num_regions = self.num_regions
            group_size = self.column_group_size
        span = max(int(limit), 1)
        regions = max(min(num_regions, span), 1)
        buckets: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for address, bit in ordered:
            region = min(address * regions // span, regions - 1)
            stratum = (region, bit // group_size)
            buckets.setdefault(stratum, []).append((address, bit))
        # bucket order follows each stratum's most marginal candidate, so the
        # first round of picks is itself margin-ordered across strata
        queues = list(buckets.values())
        selected: list[tuple[int, int]] = []
        while len(selected) < self.canaries_per_bank and any(queues):
            for queue in queues:
                if queue and len(selected) < self.canaries_per_bank:
                    selected.append(queue.pop(0))
        return selected


@dataclass
class RegulationTrace:
    """Record of one execution of the canary control routine."""

    start_voltage: float
    final_voltage: float
    steps_taken: int
    canary_failure_voltage: float | None
    voltages_visited: list[float] = field(default_factory=list)


class CanaryController:
    """Runtime SRAM-voltage controller driven by in-situ canaries (Algorithm 1).

    Parameters
    ----------
    chip:
        The accelerator SoC whose SRAM rail is being controlled.
    canaries:
        Selected canary bits with their expected storage values.
    voltage_step:
        ``Δv`` of Algorithm 1, volts.
    minimum_voltage:
        Hard floor below which the controller will not push the rail.
    """

    def __init__(
        self,
        chip: Snnac,
        canaries: list[CanaryBit],
        voltage_step: float = 0.01,
        minimum_voltage: float = 0.35,
    ) -> None:
        if not canaries:
            raise ValueError("at least one canary bit is required")
        if voltage_step <= 0:
            raise ValueError("voltage_step must be positive")
        self.chip = chip
        self.canaries = list(canaries)
        self.voltage_step = float(voltage_step)
        self.minimum_voltage = float(minimum_voltage)
        self.traces: list[RegulationTrace] = []

    # ------------------------------------------------------------------

    def check_states(self) -> bool:
        """Poll every canary; return True if *any* canary has flipped.

        Polling is performed by reading the canary words through the normal
        SRAM access path at the current (possibly overscaled) rail voltage,
        exactly as the runtime firmware would.
        """
        voltage = self.chip.effective_sram_voltage
        temperature = self.chip.temperature
        any_failed = False
        for canary in self.canaries:
            bank = self.chip.memory[canary.bank]
            word = int(bank.read(canary.address, voltage=voltage, temperature=temperature)[0])
            if ((word >> canary.bit) & 1) != canary.expected_value:
                any_failed = True
        return any_failed

    def restore_states(self) -> None:
        """Rewrite the words containing canary bits to their deployed values.

        The deployed values are recovered from the NPU's stored weight image
        (the µC keeps the compiled model in its address space), so restoring
        also repairs any sibling bits in the same word that were disturbed
        while the rail was below their failure voltage.
        """
        self.chip.refresh_weights()

    def regulate(
        self,
        safe_voltage: float | None = None,
    ) -> RegulationTrace:
        """Run Algorithm 1 once and leave the rail at the canary boundary.

        Starting from ``safe_voltage`` (default: the current rail setting),
        the controller repeatedly lowers the rail by ``Δv`` and polls the
        canaries.  On the first canary failure it raises the rail by ``Δv``
        above the last-known-good setting (the paper's conservative one-step
        margin), restores the canary storage states, and returns.
        """
        self.chip.mcu.wake("canary control routine")
        regulator = self.chip.sram_regulator
        if safe_voltage is not None:
            regulator.set_voltage(safe_voltage)
        start_voltage = regulator.voltage
        visited = [start_voltage]

        last_good = regulator.voltage
        failure_voltage = None
        steps = 0
        while True:
            candidate = last_good - self.voltage_step
            if candidate < self.minimum_voltage:
                break
            regulator.set_voltage(candidate)
            visited.append(regulator.voltage)
            steps += 1
            if self.check_states():
                failure_voltage = regulator.voltage
                regulator.set_voltage(last_good + self.voltage_step)
                visited.append(regulator.voltage)
                self.restore_states()
                break
            last_good = regulator.voltage

        trace = RegulationTrace(
            start_voltage=start_voltage,
            final_voltage=regulator.voltage,
            steps_taken=steps,
            canary_failure_voltage=failure_voltage,
            voltages_visited=visited,
        )
        self.traces.append(trace)
        self.chip.mcu.record_control_run()
        self.chip.mcu.sleep()
        return trace
