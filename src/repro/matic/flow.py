"""End-to-end MATIC compile/deploy flow (Fig. 3 of the paper).

The flow stitches the subsystems together in the order the paper describes:

1. **Memory profiling** — run the read-after-write / read-after-read
   procedure on every weight SRAM bank at the target operating voltage to
   obtain the chip-specific fault maps.
2. **Memory-adaptive training** — convert the fault maps into injection
   masks through the compiled weight placement and train the model with the
   MAT update rule so it learns around the profiled errors.
3. **Canary selection** — pick the most marginal still-working bit-cells of
   each bank as in-situ canaries.
4. **Deploy** — load the quantized model into the weight SRAMs and hand a
   runtime :class:`~repro.matic.canary.CanaryController` to the caller.

The flow also provides the *naive* deployment path (train at full precision,
quantize, deploy, no fault awareness), which is the baseline every
application-error experiment compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..accelerator.microcode import MicrocodeCompiler, NpuProgram
from ..accelerator.soc import Snnac
from ..nn.data import Dataset
from ..nn.network import Network, Topology
from ..nn.trainer import Trainer, TrainingHistory
from ..quant.quantizer import WeightQuantizer
from ..sram import calibration
from ..sram.fault_map import FaultMap
from ..sram.profiler import SramProfiler
from .canary import CanaryBit, CanaryController, CanarySelector
from .masking import FaultMaskSet
from .training import MemoryAdaptiveTrainer

__all__ = ["TrainingConfig", "MaticDeployment", "MaticFlow"]


@dataclass
class TrainingConfig:
    """Hyper-parameters shared by the baseline and memory-adaptive trainers."""

    optimizer: str = "momentum"
    learning_rate: float = 0.15
    batch_size: int = 32
    epochs: int = 50
    patience: int | None = None
    #: per-epoch multiplicative learning-rate decay (stabilizes MAT at high
    #: fault rates)
    lr_decay: float = 0.95
    #: L2 regularization; keeping weights small keeps the fixed-point format
    #: tight, which bounds the damage a single stuck bit can do
    weight_decay: float = 2.0e-4
    seed: int | None = 0


@dataclass
class MaticDeployment:
    """Everything produced by one run of the MATIC flow on one chip."""

    chip: Snnac
    network: Network
    program: NpuProgram
    quantizer: WeightQuantizer
    fault_maps: list[FaultMap]
    mask_set: FaultMaskSet
    target_voltage: float
    canaries: list[CanaryBit] = field(default_factory=list)
    controller: CanaryController | None = None
    history: TrainingHistory | None = None

    def run_at(
        self, inputs: np.ndarray, sram_voltage: float | None = None
    ) -> np.ndarray:
        """Run inference on the chip at a given SRAM voltage (default: target).

        The deployed weights are refreshed first so that corruption from a
        previous operating point does not leak into the measurement.
        """
        voltage = self.target_voltage if sram_voltage is None else float(sram_voltage)
        return self.run_sweep(inputs, [voltage])[0]

    def run_sweep(
        self, inputs: np.ndarray, sram_voltages=None
    ) -> list[np.ndarray]:
        """Measure the deployed model at each SRAM voltage (default: target).

        Each point is an independent measurement — weights are refreshed
        before every run, exactly as a sequence of :meth:`run_at` calls — but
        executed through the chip's batched sweep primitive
        (:meth:`~repro.accelerator.soc.Snnac.run_voltage_sweep`), which
        shares decoded weight images between operating points whose
        corruption masks are identical.  Returns the output batches in
        ``sram_voltages`` order.
        """
        if sram_voltages is None:
            sram_voltages = [self.target_voltage]
        results = self.chip.run_voltage_sweep(inputs, sram_voltages)
        return [outputs for outputs, _ in results]


class MaticFlow:
    """Compile-time flow: profile, train around errors, deploy, select canaries.

    Parameters
    ----------
    word_bits / frac_bits:
        Fixed-point weight format used for training *and* deployment (they
        must match for the injection masks to describe the deployed words).
        ``frac_bits=None`` (the default) fits the fraction width per layer to
        the pre-trained model's weight range and then freezes it, which keeps
        quantization loss negligible while bounding the magnitude of any
        single stuck bit.
    training:
        Hyper-parameters for the trainers.
    canaries_per_bank:
        Number of in-situ canary cells per weight SRAM bank.
    canary_strategy:
        Selection strategy (``"profiled"`` or ``"oracle"``).
    canary_placement:
        Placement policy (``"margin"`` or ``"stratified"``): pure-margin
        ordering versus spatially stratified spreading across die regions
        and column groups (robust to clustered faults; see
        ``docs/variation.md``).
    training_cache:
        Optional artifact cache (duck-typed ``get(kind, key)`` /
        ``put(kind, key, value)``, e.g.
        :class:`repro.experiments.cache.ArtifactCache`).  When set,
        memory-adaptive fine-tuning results are memoized on the *content* of
        the run — initial weights, injection masks, training data, and every
        hyper-parameter — so repeated deployments across a sweep grid train
        each distinct combination once.  The same cache also memoizes
        :meth:`profile_chip`'s per-bank fault maps (see that method for the
        key and the soundness caveat).
    """

    def __init__(
        self,
        word_bits: int = 16,
        frac_bits: int | None = None,
        training: TrainingConfig | None = None,
        canaries_per_bank: int = 8,
        canary_strategy: str = "profiled",
        canary_placement: str = "margin",
        training_cache=None,
    ) -> None:
        self.word_bits = int(word_bits)
        self.frac_bits = None if frac_bits is None else int(frac_bits)
        self.training = training or TrainingConfig()
        self.canaries_per_bank = int(canaries_per_bank)
        self.canary_strategy = canary_strategy
        self.canary_placement = canary_placement
        self.training_cache = training_cache

    # ------------------------------------------------------------ pieces

    def make_quantizer(self) -> WeightQuantizer:
        """The base weight quantizer (see :meth:`quantizer_for`)."""
        return WeightQuantizer(total_bits=self.word_bits, frac_bits=self.frac_bits)

    def quantizer_for(self, network: Network) -> WeightQuantizer:
        """The weight format shared by training and deployment for one model.

        Formats are chosen from ``network``'s current (pre-trained) weights
        and frozen, so the same word layout is used when building injection
        masks, during memory-adaptive training, and when loading the weights
        into the accelerator's SRAM banks.
        """
        base = self.make_quantizer()
        return base.freeze(base.layer_formats(network))

    def build_network(self, topology: str | Topology, loss: str, **kwargs) -> Network:
        """Construct a model with the flow's default seeding."""
        return Network(topology, loss=loss, seed=self.training.seed, **kwargs)

    def train_baseline(
        self, network: Network, train: Dataset, validation: Dataset | None = None
    ) -> TrainingHistory:
        """Train the naive (fault-unaware, full-precision) baseline model."""
        trainer = Trainer(
            network,
            optimizer=self.training.optimizer,
            learning_rate=self.training.learning_rate,
            batch_size=self.training.batch_size,
            epochs=self.training.epochs,
            patience=self.training.patience,
            lr_decay=self.training.lr_decay,
            weight_decay=self.training.weight_decay,
            seed=self.training.seed,
        )
        return trainer.fit(train, validation=validation)

    @staticmethod
    def _profile_cache_key(
        bank, voltage: float, temperature: float, profiler: SramProfiler
    ) -> dict:
        """Content key addressing one bank's profiled fault map.

        The profiled map is a deterministic function of the bank's sampled
        bit-cell population (``vmin_read`` + ``preferred_state``, which fold
        in the chip seed, the variation model, and the bank geometry), its
        temperature coefficient, the operating point, and the profiler's
        measurement procedure (:meth:`~repro.sram.profiler.SramProfiler.describe`:
        class, test patterns, restore flag, plus whatever subclasses add) —
        so the key hashes exactly those.  Hashing the sampled population
        *content* rather than the (seed, model) pair that produced it keeps
        the key sound even for hand-constructed or mutated banks.

        The bank's variation provenance
        (:meth:`~repro.sram.array.SramBank.scenario_key`: scenario spec,
        model spec, and the corner/aging ``vmin_offset``) also participates:
        the offset changes which cells fail at a given voltage, and folding
        the scenario spec in guarantees i.i.d. and correlated populations
        can never collide in the artifact cache.
        """
        return {
            "vmin_read": bank.cells.vmin_read,
            "preferred_state": bank.cells.preferred_state,
            "temperature_coefficient": float(bank.temperature_coefficient),
            "word_bits": int(bank.word_bits),
            "voltage": float(voltage),
            "temperature": float(temperature),
            "patterns": profiler.patterns_for(bank),
            "profiler": profiler.describe(),
            "provenance": bank.scenario_key(),
        }

    def profile_chip(
        self,
        chip: Snnac,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
        profiler: SramProfiler | None = None,
    ) -> list[FaultMap]:
        """Profile every weight bank of ``chip`` at the target voltage.

        When a ``training_cache`` is attached, each bank's fault map is
        memoized through it (kind ``"fault-map"``, keyed per
        :meth:`_profile_cache_key`), so re-profiling the same deterministic
        (chip, voltage, temperature) point across driver runs is a cache hit
        that returns bit-identical maps without touching the bank.

        Soundness caveat: profiling overwrites bank contents with test
        patterns, and the measurement is only side-effect-free because
        ``restore_contents=True`` (the default) rewrites the saved contents
        afterwards.  A cache hit skips the whole procedure, which is
        equivalent *only* under that flag — passing a custom ``profiler``
        with ``restore_contents=False`` therefore bypasses memoization and
        always profiles for real.
        """
        profiler = profiler if profiler is not None else SramProfiler()
        cache = self.training_cache
        if cache is None or not profiler.restore_contents:
            reports = profiler.profile_memory_system(chip.memory, voltage, temperature)
            return [report.fault_map for report in reports]
        fault_maps: list[FaultMap] = []
        for bank in chip.memory:
            key = self._profile_cache_key(bank, voltage, temperature, profiler)
            cached = cache.get("fault-map", key)
            if cached is not None:
                stuck_mask, stuck_values = cached
                fault_maps.append(FaultMap.from_arrays(stuck_mask, stuck_values))
                continue
            fault_map = profiler.profile_bank(bank, voltage, temperature).fault_map
            cache.put("fault-map", key, (fault_map.stuck_mask, fault_map.stuck_values))
            fault_maps.append(fault_map)
        return fault_maps

    def build_mask_set(
        self,
        network: Network,
        chip: Snnac,
        fault_maps: list[FaultMap],
    ) -> FaultMaskSet:
        """Convert per-bank fault maps into per-layer injection masks."""
        quantizer = self.quantizer_for(network)
        compiler = MicrocodeCompiler(
            num_pes=len(chip.memory),
            words_per_bank=min(bank.num_words for bank in chip.memory),
            pipeline_overhead=chip.config.pipeline_overhead,
        )
        program = compiler.compile(network, quantizer)
        return FaultMaskSet.from_fault_maps(
            network,
            quantizer,
            program.placement,
            fault_maps,
            description=f"profiled masks for {network.name}",
        )

    def _adaptive_cache_key(
        self,
        network: Network,
        mask_set: FaultMaskSet,
        train: Dataset,
        validation: Dataset | None,
    ) -> dict:
        """Content key addressing one memory-adaptive fine-tuning run.

        The validation split participates in the key because early stopping
        (``patience``) makes the trained weights depend on it; the network's
        structure/loss and the per-layer quantization formats participate
        because identically initialized networks trained under different
        objectives or word layouts must never share an artifact.
        """
        config = self.training
        return {
            "network": {
                "widths": tuple(network.widths),
                "activations": tuple(layer.activation.name for layer in network.layers),
                "loss": network.loss.name,
            },
            "formats": tuple(
                (
                    fmt.weight_format.total_bits,
                    fmt.weight_format.frac_bits,
                    fmt.bias_format.total_bits,
                    fmt.bias_format.frac_bits,
                )
                for fmt in mask_set.layer_formats
            ),
            "validation": (
                {"inputs": validation.inputs, "targets": validation.targets}
                if validation is not None
                else "none"
            ),
            "initial": network.get_weights(),
            "masks": [
                (
                    masks.weight_and,
                    masks.weight_or,
                    masks.bias_and,
                    masks.bias_or,
                    int(masks.word_bits),
                )
                for masks in mask_set.layer_masks
            ],
            "word_bits": int(mask_set.word_bits),
            "train_inputs": train.inputs,
            "train_targets": train.targets,
            "optimizer": config.optimizer,
            "learning_rate": float(config.learning_rate),
            "batch_size": int(config.batch_size),
            "epochs": int(config.epochs),
            "patience": config.patience if config.patience is not None else "none",
            "lr_decay": float(config.lr_decay),
            "weight_decay": float(config.weight_decay),
            "seed": config.seed if config.seed is not None else "none",
        }

    def fit_adaptive(
        self,
        network: Network,
        mask_set: FaultMaskSet,
        train: Dataset,
        validation: Dataset | None,
    ) -> TrainingHistory | None:
        """Run (or recall) memory-adaptive fine-tuning; mutates ``network``.

        Returns the training history, or ``None`` when the trained weights
        came from the training cache (histories are not cached).
        """
        key = None
        if self.training_cache is not None:
            key = self._adaptive_cache_key(network, mask_set, train, validation)
            cached = self.training_cache.get("trained-weights", key)
            if cached is not None:
                # restore the master weights, then reinstall the masked
                # effective view exactly as MemoryAdaptiveTrainer.fit leaves
                # it, so the recalled network is indistinguishable from a
                # freshly trained one (predictions included)
                network.set_weights(cached)
                mask_set.install(network)
                return None
        trainer = MemoryAdaptiveTrainer(
            network,
            mask_set,
            optimizer=self.training.optimizer,
            learning_rate=self.training.learning_rate,
            batch_size=self.training.batch_size,
            epochs=self.training.epochs,
            patience=self.training.patience,
            lr_decay=self.training.lr_decay,
            weight_decay=self.training.weight_decay,
            seed=self.training.seed,
        )
        history = trainer.fit(train, validation=validation)
        if self.training_cache is not None and key is not None:
            self.training_cache.put("trained-weights", key, network.get_weights())
        return history

    # ----------------------------------------------------------- the flow

    def deploy_adaptive(
        self,
        chip: Snnac,
        topology: str | Topology,
        train: Dataset,
        validation: Dataset | None = None,
        target_voltage: float = 0.5,
        loss: str = "mse",
        hidden_activation: str = "sigmoid",
        output_activation: str = "sigmoid",
        initial_network: Network | None = None,
        select_canaries: bool = True,
    ) -> MaticDeployment:
        """Run the full MATIC flow and return the deployment handle.

        ``initial_network`` lets callers start adaptive training from a
        pre-trained baseline (the usual practice: fine-tune around the
        profiled faults rather than training from scratch).
        """
        # 1. profile the chip's weight memories at the target voltage
        fault_maps = self.profile_chip(chip, target_voltage)

        # 2. memory-adaptive training with the profiled injection masks
        if initial_network is not None:
            network = initial_network.copy()
        elif isinstance(topology, Topology):
            network = Network(topology, loss=loss, seed=self.training.seed)
        else:
            network = Network(
                topology,
                hidden_activation=hidden_activation,
                output_activation=output_activation,
                loss=loss,
                seed=self.training.seed,
            )
        quantizer = self.quantizer_for(network)
        mask_set = self.build_mask_set(network, chip, fault_maps)
        history = self.fit_adaptive(network, mask_set, train, validation)

        # 3. deploy the trained model to the chip (quantized master weights)
        program = chip.deploy(network, quantizer)

        # 4. select in-situ canaries and build the runtime controller
        canaries: list[CanaryBit] = []
        controller = None
        if select_canaries:
            selector = CanarySelector(
                canaries_per_bank=self.canaries_per_bank,
                strategy=self.canary_strategy,
                placement=self.canary_placement,
            )
            canaries = selector.select(
                chip.memory,
                target_voltage,
                used_words_per_bank=program.placement.words_used_per_pe,
            )
            if canaries:
                controller = CanaryController(chip, canaries)

        chip.sram_regulator.set_voltage(target_voltage)
        return MaticDeployment(
            chip=chip,
            network=network,
            program=program,
            quantizer=quantizer,
            fault_maps=fault_maps,
            mask_set=mask_set,
            target_voltage=float(target_voltage),
            canaries=canaries,
            controller=controller,
            history=history,
        )

    def deploy_naive(
        self,
        chip: Snnac,
        topology: str | Topology,
        train: Dataset,
        validation: Dataset | None = None,
        target_voltage: float = 0.5,
        loss: str = "mse",
        hidden_activation: str = "sigmoid",
        output_activation: str = "sigmoid",
        initial_network: Network | None = None,
        profile: bool = True,
    ) -> MaticDeployment:
        """Deploy the naive baseline: same topology, no fault awareness.

        ``profile=False`` skips the fault-map profiling pass — the naive
        deployment never *uses* the maps (that is the point of the baseline),
        so sweep drivers that only measure naive error avoid the full
        read-after-write profiling of every bank.
        """
        if initial_network is not None:
            network = initial_network.copy()
            history = None
        else:
            if isinstance(topology, Topology):
                network = Network(topology, loss=loss, seed=self.training.seed)
            else:
                network = Network(
                    topology,
                    hidden_activation=hidden_activation,
                    output_activation=output_activation,
                    loss=loss,
                    seed=self.training.seed,
                )
            history = self.train_baseline(network, train, validation)
        quantizer = self.quantizer_for(network)
        program = chip.deploy(network, quantizer)
        fault_maps = self.profile_chip(chip, target_voltage) if profile else []
        mask_set = FaultMaskSet.identity(network, quantizer)
        chip.sram_regulator.set_voltage(target_voltage)
        return MaticDeployment(
            chip=chip,
            network=network,
            program=program,
            quantizer=quantizer,
            fault_maps=fault_maps,
            mask_set=mask_set,
            target_voltage=float(target_voltage),
            history=history,
        )
