"""End-to-end MATIC compile/deploy flow (Fig. 3 of the paper).

The flow stitches the subsystems together in the order the paper describes:

1. **Memory profiling** — run the read-after-write / read-after-read
   procedure on every weight SRAM bank at the target operating voltage to
   obtain the chip-specific fault maps.
2. **Memory-adaptive training** — convert the fault maps into injection
   masks through the compiled weight placement and train the model with the
   MAT update rule so it learns around the profiled errors.
3. **Canary selection** — pick the most marginal still-working bit-cells of
   each bank as in-situ canaries.
4. **Deploy** — load the quantized model into the weight SRAMs and hand a
   runtime :class:`~repro.matic.canary.CanaryController` to the caller.

The flow also provides the *naive* deployment path (train at full precision,
quantize, deploy, no fault awareness), which is the baseline every
application-error experiment compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

import numpy as np

from ..accelerator.microcode import MicrocodeCompiler, NpuProgram
from ..accelerator.soc import Snnac
from ..nn.data import Dataset
from ..nn.network import Network, Topology
from ..nn.trainer import Trainer, TrainingHistory
from ..quant.quantizer import WeightQuantizer
from ..sram import calibration
from ..sram.fault_map import FaultMap
from ..sram.profiler import SramProfiler
from .canary import CanaryBit, CanaryController, CanarySelector
from .masking import FaultMaskSet
from .training import MemoryAdaptiveTrainer

__all__ = [
    "TrainingConfig",
    "MaticDeployment",
    "AdaptiveSweepPoint",
    "ProfileCacheCounters",
    "MaticFlow",
]


@dataclass
class TrainingConfig:
    """Hyper-parameters shared by the baseline and memory-adaptive trainers."""

    optimizer: str = "momentum"
    learning_rate: float = 0.15
    batch_size: int = 32
    epochs: int = 50
    patience: int | None = None
    #: per-epoch multiplicative learning-rate decay (stabilizes MAT at high
    #: fault rates)
    lr_decay: float = 0.95
    #: L2 regularization; keeping weights small keeps the fixed-point format
    #: tight, which bounds the damage a single stuck bit can do
    weight_decay: float = 2.0e-4
    seed: int | None = 0


@dataclass
class ProfileCacheCounters:
    """Cache-traffic accounting for :meth:`MaticFlow.profile_chip` and friends.

    One counter pair per memoization granularity: whole-chip records
    (``fault-map-chip``), per-bank records (``fault-map``), and per-bank
    voltage-axis records (``fault-map-sweep``).  Counters are per-process —
    parallel sweep workers each count their own flow copy — and exist so the
    fleet/population and adaptive benchmarks can assert *how* a warm run was
    served (one chip-level round trip, zero bank re-profiles) instead of
    inferring it from wall time.
    """

    chip_hits: int = 0
    chip_misses: int = 0
    bank_hits: int = 0
    bank_misses: int = 0
    sweep_hits: int = 0
    sweep_misses: int = 0

    def reset(self) -> None:
        self.chip_hits = self.chip_misses = 0
        self.bank_hits = self.bank_misses = 0
        self.sweep_hits = self.sweep_misses = 0

    def as_dict(self) -> dict:
        return {
            "chip_hits": self.chip_hits,
            "chip_misses": self.chip_misses,
            "bank_hits": self.bank_hits,
            "bank_misses": self.bank_misses,
            "sweep_hits": self.sweep_hits,
            "sweep_misses": self.sweep_misses,
        }


@dataclass
class MaticDeployment:
    """Everything produced by one run of the MATIC flow on one chip."""

    chip: Snnac
    network: Network
    program: NpuProgram
    quantizer: WeightQuantizer
    fault_maps: list[FaultMap]
    mask_set: FaultMaskSet
    target_voltage: float
    canaries: list[CanaryBit] = field(default_factory=list)
    controller: CanaryController | None = None
    history: TrainingHistory | None = None

    def run_at(
        self, inputs: np.ndarray, sram_voltage: float | None = None
    ) -> np.ndarray:
        """Run inference on the chip at a given SRAM voltage (default: target).

        The deployed weights are refreshed first so that corruption from a
        previous operating point does not leak into the measurement.
        """
        voltage = self.target_voltage if sram_voltage is None else float(sram_voltage)
        return self.run_sweep(inputs, [voltage])[0]

    def run_sweep(
        self, inputs: np.ndarray, sram_voltages=None
    ) -> list[np.ndarray]:
        """Measure the deployed model at each SRAM voltage (default: target).

        Each point is an independent measurement — weights are refreshed
        before every run, exactly as a sequence of :meth:`run_at` calls — but
        executed through the chip's batched sweep primitive
        (:meth:`~repro.accelerator.soc.Snnac.run_voltage_sweep`), which
        shares decoded weight images between operating points whose
        corruption masks are identical.  Returns the output batches in
        ``sram_voltages`` order.
        """
        if sram_voltages is None:
            sram_voltages = [self.target_voltage]
        results = self.chip.run_voltage_sweep(inputs, sram_voltages)
        return [outputs for outputs, _ in results]


@dataclass
class AdaptiveSweepPoint:
    """One operating point of a batched adaptive deployment walk.

    Produced by :meth:`MaticFlow.deploy_adaptive_sweep`.  All points of a
    walk share one chip, so ``deployment.chip`` carries the *most recently*
    deployed model — per-point on-chip measurements must happen through the
    walk's ``measure`` callback (captured here as ``measurement``) while the
    point's weights are resident, not retroactively through stale
    deployment handles.
    """

    voltage: float
    deployment: MaticDeployment
    history: TrainingHistory | None
    measurement: Any = None
    #: whether this point's fine-tuning started from the neighboring
    #: (next-higher) voltage's converged weights instead of the baseline
    warm_started: bool = False


class MaticFlow:
    """Compile-time flow: profile, train around errors, deploy, select canaries.

    Parameters
    ----------
    word_bits / frac_bits:
        Fixed-point weight format used for training *and* deployment (they
        must match for the injection masks to describe the deployed words).
        ``frac_bits=None`` (the default) fits the fraction width per layer to
        the pre-trained model's weight range and then freezes it, which keeps
        quantization loss negligible while bounding the magnitude of any
        single stuck bit.
    training:
        Hyper-parameters for the trainers.
    canaries_per_bank:
        Number of in-situ canary cells per weight SRAM bank.
    canary_strategy:
        Selection strategy (``"profiled"`` or ``"oracle"``).
    canary_placement:
        Placement policy (``"margin"`` or ``"stratified"``): pure-margin
        ordering versus spatially stratified spreading across die regions
        and column groups (robust to clustered faults; see
        ``docs/variation.md``).
    training_cache:
        Optional artifact cache (duck-typed ``get(kind, key)`` /
        ``put(kind, key, value)``, e.g.
        :class:`repro.experiments.cache.ArtifactCache`).  When set,
        memory-adaptive fine-tuning results are memoized on the *content* of
        the run — initial weights, injection masks, training data, and every
        hyper-parameter — so repeated deployments across a sweep grid train
        each distinct combination once.  The same cache also memoizes
        :meth:`profile_chip`'s per-bank fault maps (see that method for the
        key and the soundness caveat).
    """

    def __init__(
        self,
        word_bits: int = 16,
        frac_bits: int | None = None,
        training: TrainingConfig | None = None,
        canaries_per_bank: int = 8,
        canary_strategy: str = "profiled",
        canary_placement: str = "margin",
        training_cache=None,
    ) -> None:
        self.word_bits = int(word_bits)
        self.frac_bits = None if frac_bits is None else int(frac_bits)
        self.training = training or TrainingConfig()
        self.canaries_per_bank = int(canaries_per_bank)
        self.canary_strategy = canary_strategy
        self.canary_placement = canary_placement
        self.training_cache = training_cache
        #: per-process cache-traffic accounting for the profiling memoization
        self.profile_counters = ProfileCacheCounters()
        # in-process memo for compiled NPU programs: placement/schedule are a
        # pure function of (topology, activations, formats, geometry), so one
        # compile serves every voltage of a sweep and every repeat deployment
        self._program_memo: dict = {}

    def __getstate__(self) -> dict:
        # compiled programs are cheap to rebuild and per-process anyway; keep
        # the shared payload shipped to sweep workers lean
        state = self.__dict__.copy()
        state["_program_memo"] = {}
        return state

    # ------------------------------------------------------------ pieces

    def make_quantizer(self) -> WeightQuantizer:
        """The base weight quantizer (see :meth:`quantizer_for`)."""
        return WeightQuantizer(total_bits=self.word_bits, frac_bits=self.frac_bits)

    def quantizer_for(self, network: Network) -> WeightQuantizer:
        """The weight format shared by training and deployment for one model.

        Formats are chosen from ``network``'s current (pre-trained) weights
        and frozen, so the same word layout is used when building injection
        masks, during memory-adaptive training, and when loading the weights
        into the accelerator's SRAM banks.
        """
        base = self.make_quantizer()
        return base.freeze(base.layer_formats(network))

    def build_network(self, topology: str | Topology, loss: str, **kwargs) -> Network:
        """Construct a model with the flow's default seeding."""
        return Network(topology, loss=loss, seed=self.training.seed, **kwargs)

    def train_baseline(
        self, network: Network, train: Dataset, validation: Dataset | None = None
    ) -> TrainingHistory:
        """Train the naive (fault-unaware, full-precision) baseline model."""
        trainer = Trainer(
            network,
            optimizer=self.training.optimizer,
            learning_rate=self.training.learning_rate,
            batch_size=self.training.batch_size,
            epochs=self.training.epochs,
            patience=self.training.patience,
            lr_decay=self.training.lr_decay,
            weight_decay=self.training.weight_decay,
            seed=self.training.seed,
        )
        return trainer.fit(train, validation=validation)

    @staticmethod
    def _profile_cache_key(
        bank, voltage: float, temperature: float, profiler: SramProfiler
    ) -> dict:
        """Content key addressing one bank's profiled fault map.

        The profiled map is a deterministic function of the bank's sampled
        bit-cell population (``vmin_read`` + ``preferred_state``, which fold
        in the chip seed, the variation model, and the bank geometry), its
        temperature coefficient, the operating point, and the profiler's
        measurement procedure (:meth:`~repro.sram.profiler.SramProfiler.describe`:
        class, test patterns, restore flag, plus whatever subclasses add) —
        so the key hashes exactly those.  Hashing the sampled population
        *content* rather than the (seed, model) pair that produced it keeps
        the key sound even for hand-constructed or mutated banks.

        The bank's variation provenance
        (:meth:`~repro.sram.array.SramBank.scenario_key`: scenario spec,
        model spec, and the corner/aging ``vmin_offset``) also participates:
        the offset changes which cells fail at a given voltage, and folding
        the scenario spec in guarantees i.i.d. and correlated populations
        can never collide in the artifact cache.
        """
        return {
            "vmin_read": bank.cells.vmin_read,
            "preferred_state": bank.cells.preferred_state,
            "temperature_coefficient": float(bank.temperature_coefficient),
            "word_bits": int(bank.word_bits),
            "voltage": float(voltage),
            "temperature": float(temperature),
            "patterns": profiler.patterns_for(bank),
            "profiler": profiler.describe(),
            "provenance": bank.scenario_key(),
        }

    def profile_chip(
        self,
        chip: Snnac,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
        profiler: SramProfiler | None = None,
    ) -> list[FaultMap]:
        """Profile every weight bank of ``chip`` at the target voltage.

        When a ``training_cache`` is attached, the profile is memoized at two
        granularities.  The warm path is **one** round trip: a whole-chip
        record (kind ``"fault-map-chip"``, keyed on the tuple of every bank's
        :meth:`_profile_cache_key`) returns all banks' maps from a single
        ``get``.  On a chip-record miss the per-bank records (kind
        ``"fault-map"``, one key per bank) are consulted and populated as
        before — so partially warmed caches still skip every bank they can —
        and the chip record is stored for the next run.  Hit/miss traffic at
        both granularities is reported through :attr:`profile_counters`.

        Soundness caveat: profiling overwrites bank contents with test
        patterns, and the measurement is only side-effect-free because
        ``restore_contents=True`` (the default) rewrites the saved contents
        afterwards.  A cache hit skips the whole procedure, which is
        equivalent *only* under that flag — passing a custom ``profiler``
        with ``restore_contents=False`` therefore bypasses memoization and
        always profiles for real.
        """
        profiler = profiler if profiler is not None else SramProfiler()
        cache = self.training_cache
        if cache is None or not profiler.restore_contents:
            reports = profiler.profile_memory_system(chip.memory, voltage, temperature)
            return [report.fault_map for report in reports]
        counters = self.profile_counters
        bank_keys = [
            self._profile_cache_key(bank, voltage, temperature, profiler)
            for bank in chip.memory
        ]
        chip_key = {"banks": tuple(bank_keys)}
        cached_chip = cache.get("fault-map-chip", chip_key)
        if cached_chip is not None:
            counters.chip_hits += 1
            return [
                FaultMap.from_arrays(stuck_mask, stuck_values)
                for stuck_mask, stuck_values in cached_chip
            ]
        counters.chip_misses += 1
        fault_maps: list[FaultMap] = []
        for bank, key in zip(chip.memory, bank_keys):
            cached = cache.get("fault-map", key)
            if cached is not None:
                counters.bank_hits += 1
                stuck_mask, stuck_values = cached
                fault_maps.append(FaultMap.from_arrays(stuck_mask, stuck_values))
                continue
            counters.bank_misses += 1
            fault_map = profiler.profile_bank(bank, voltage, temperature).fault_map
            cache.put("fault-map", key, (fault_map.stuck_mask, fault_map.stuck_values))
            fault_maps.append(fault_map)
        cache.put(
            "fault-map-chip",
            chip_key,
            tuple((fm.stuck_mask, fm.stuck_values) for fm in fault_maps),
        )
        return fault_maps

    def profile_chip_sweep(
        self,
        chip: Snnac,
        voltages,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
        profiler: SramProfiler | None = None,
    ) -> list[list[FaultMap]]:
        """Profile every weight bank of ``chip`` at every voltage of an axis.

        Returns ``maps[i][b]`` — the fault map of bank ``b`` at
        ``voltages[i]`` — derived from **one** pass over each bank's sampled
        cell population (:meth:`~repro.sram.profiler.SramProfiler.profile_bank_sweep`:
        a cell fails iff the voltage is below its effective V_min, so the
        whole axis is a single vectorized comparison).  The derivation is
        asserted bit-identical to per-voltage :meth:`profile_chip` /
        ``profile_bank`` by the equivalence oracle in
        ``tests/test_adaptive_sweep.py``; profilers whose procedure the
        analytic path cannot reproduce fall back to measured per-voltage
        profiling inside ``profile_bank_sweep`` itself.

        With a ``training_cache`` attached the axis is memoized as **one**
        ``"fault-map-sweep"`` record per bank (keyed like
        :meth:`_profile_cache_key` with the voltage axis in place of the
        single voltage) instead of ``len(voltages) × banks`` round trips.
        The same ``restore_contents`` soundness caveat as
        :meth:`profile_chip` applies.
        """
        profiler = profiler if profiler is not None else SramProfiler()
        voltage_axis = tuple(float(v) for v in voltages)
        cache = self.training_cache
        counters = self.profile_counters
        maps_by_bank: list[list[FaultMap]] = []
        for bank in chip.memory:
            if cache is None or not profiler.restore_contents:
                reports = profiler.profile_bank_sweep(bank, voltage_axis, temperature)
                maps_by_bank.append([report.fault_map for report in reports])
                continue
            key = self._profile_cache_key(bank, 0.0, temperature, profiler)
            del key["voltage"]
            key["voltages"] = voltage_axis
            cached = cache.get("fault-map-sweep", key)
            if cached is not None:
                counters.sweep_hits += 1
                maps_by_bank.append(
                    [
                        FaultMap.from_arrays(stuck_mask, stuck_values)
                        for stuck_mask, stuck_values in cached
                    ]
                )
                continue
            counters.sweep_misses += 1
            reports = profiler.profile_bank_sweep(bank, voltage_axis, temperature)
            maps = [report.fault_map for report in reports]
            cache.put(
                "fault-map-sweep",
                key,
                tuple((fm.stuck_mask, fm.stuck_values) for fm in maps),
            )
            maps_by_bank.append(maps)
        return [
            [maps_by_bank[b][i] for b in range(len(maps_by_bank))]
            for i in range(len(voltage_axis))
        ]

    def compile_program(
        self,
        network: Network,
        chip: Snnac,
        quantizer: WeightQuantizer | None = None,
    ) -> NpuProgram:
        """Compile (or recall) the NPU program for (network, chip geometry).

        The compiled placement and execution schedule are a pure function of
        the network's topology/activations, the per-layer fixed-point
        formats, and the chip geometry — none of which depend on the SRAM
        voltage — so the program is memoized in-process on exactly that
        content and one compile serves every operating point of a sweep
        (and every repeat deployment of the same model shape).
        """
        quantizer = quantizer if quantizer is not None else self.quantizer_for(network)
        formats = quantizer.layer_formats(network)
        key = (
            tuple(network.widths),
            tuple(layer.activation.name for layer in network.layers),
            tuple(
                (
                    fmt.weight_format.total_bits,
                    fmt.weight_format.frac_bits,
                    fmt.bias_format.total_bits,
                    fmt.bias_format.frac_bits,
                )
                for fmt in formats
            ),
            len(chip.memory),
            min(bank.num_words for bank in chip.memory),
            int(chip.config.pipeline_overhead),
        )
        program = self._program_memo.get(key)
        if program is None:
            compiler = MicrocodeCompiler(
                num_pes=len(chip.memory),
                words_per_bank=min(bank.num_words for bank in chip.memory),
                pipeline_overhead=chip.config.pipeline_overhead,
            )
            program = compiler.compile(network, quantizer)
            self._program_memo[key] = program
        return program

    def build_mask_set(
        self,
        network: Network,
        chip: Snnac,
        fault_maps: list[FaultMap],
        quantizer: WeightQuantizer | None = None,
        program: NpuProgram | None = None,
    ) -> FaultMaskSet:
        """Convert per-bank fault maps into per-layer injection masks.

        ``quantizer`` and ``program`` let sweep callers hoist the format
        choice and the compile out of the per-voltage loop: the placement is
        voltage-invariant, so one compiled program translates every operating
        point's fault maps.  When omitted they are derived from ``network``
        (formats fitted from its *current* weights, then frozen) exactly as
        before the hoist.
        """
        if quantizer is None:
            quantizer = self.quantizer_for(network)
        if program is None:
            program = self.compile_program(network, chip, quantizer)
        return FaultMaskSet.from_fault_maps(
            network,
            quantizer,
            program.placement,
            fault_maps,
            description=f"profiled masks for {network.name}",
        )

    def _adaptive_cache_key(
        self,
        network: Network,
        mask_set: FaultMaskSet,
        train: Dataset,
        validation: Dataset | None,
        config: TrainingConfig | None = None,
    ) -> dict:
        """Content key addressing one memory-adaptive fine-tuning run.

        The validation split participates in the key because early stopping
        (``patience``) makes the trained weights depend on it; the network's
        structure/loss and the per-layer quantization formats participate
        because identically initialized networks trained under different
        objectives or word layouts must never share an artifact.

        ``config`` is the hyper-parameter set that will actually train
        (default: the flow's).  Warm-started sweep points pass their reduced
        config here, and their lineage — which voltage's converged weights
        they started from — is already folded in through ``initial`` (the
        network's master weights *are* the lineage), so warm and cold
        artifacts can never collide: they differ in initial weights, epochs,
        or both.
        """
        config = config if config is not None else self.training
        return {
            "network": {
                "widths": tuple(network.widths),
                "activations": tuple(layer.activation.name for layer in network.layers),
                "loss": network.loss.name,
            },
            "formats": tuple(
                (
                    fmt.weight_format.total_bits,
                    fmt.weight_format.frac_bits,
                    fmt.bias_format.total_bits,
                    fmt.bias_format.frac_bits,
                )
                for fmt in mask_set.layer_formats
            ),
            "validation": (
                {"inputs": validation.inputs, "targets": validation.targets}
                if validation is not None
                else "none"
            ),
            "initial": network.get_weights(),
            "masks": [
                (
                    masks.weight_and,
                    masks.weight_or,
                    masks.bias_and,
                    masks.bias_or,
                    int(masks.word_bits),
                )
                for masks in mask_set.layer_masks
            ],
            "word_bits": int(mask_set.word_bits),
            "train_inputs": train.inputs,
            "train_targets": train.targets,
            "optimizer": config.optimizer,
            "learning_rate": float(config.learning_rate),
            "batch_size": int(config.batch_size),
            "epochs": int(config.epochs),
            "patience": config.patience if config.patience is not None else "none",
            "lr_decay": float(config.lr_decay),
            "weight_decay": float(config.weight_decay),
            "seed": config.seed if config.seed is not None else "none",
        }

    def fit_adaptive(
        self,
        network: Network,
        mask_set: FaultMaskSet,
        train: Dataset,
        validation: Dataset | None,
        config: TrainingConfig | None = None,
    ) -> TrainingHistory | None:
        """Run (or recall) memory-adaptive fine-tuning; mutates ``network``.

        ``config`` overrides the flow's training hyper-parameters for this
        fit (warm-started sweep points train fewer epochs); it participates
        in the memoization key, so differently configured fits never share
        artifacts.  Returns the training history, or ``None`` when the
        trained weights came from the training cache (histories are not
        cached).
        """
        config = config if config is not None else self.training
        key = None
        if self.training_cache is not None:
            key = self._adaptive_cache_key(network, mask_set, train, validation, config)
            cached = self.training_cache.get("trained-weights", key)
            if cached is not None:
                # restore the master weights, then reinstall the masked
                # effective view exactly as MemoryAdaptiveTrainer.fit leaves
                # it, so the recalled network is indistinguishable from a
                # freshly trained one (predictions included)
                network.set_weights(cached)
                mask_set.install(network)
                return None
        trainer = MemoryAdaptiveTrainer.from_config(network, mask_set, config)
        history = trainer.fit(train, validation=validation)
        if self.training_cache is not None and key is not None:
            self.training_cache.put("trained-weights", key, network.get_weights())
        return history

    # ----------------------------------------------------------- the flow

    def _starting_network(
        self,
        topology: str | Topology,
        loss: str,
        hidden_activation: str,
        output_activation: str,
        initial_network: Network | None,
    ) -> Network:
        """The network adaptive training starts from (pristine copy)."""
        if initial_network is not None:
            return initial_network.copy()
        if isinstance(topology, Topology):
            return Network(topology, loss=loss, seed=self.training.seed)
        return Network(
            topology,
            hidden_activation=hidden_activation,
            output_activation=output_activation,
            loss=loss,
            seed=self.training.seed,
        )

    def _select_canaries(self, chip: Snnac, target_voltage: float, program: NpuProgram):
        """Pick in-situ canaries and build the runtime controller."""
        selector = CanarySelector(
            canaries_per_bank=self.canaries_per_bank,
            strategy=self.canary_strategy,
            placement=self.canary_placement,
        )
        canaries = selector.select(
            chip.memory,
            target_voltage,
            used_words_per_bank=program.placement.words_used_per_pe,
        )
        controller = CanaryController(chip, canaries) if canaries else None
        return canaries, controller

    def deploy_adaptive(
        self,
        chip: Snnac,
        topology: str | Topology,
        train: Dataset,
        validation: Dataset | None = None,
        target_voltage: float = 0.5,
        loss: str = "mse",
        hidden_activation: str = "sigmoid",
        output_activation: str = "sigmoid",
        initial_network: Network | None = None,
        select_canaries: bool = True,
    ) -> MaticDeployment:
        """Run the full MATIC flow and return the deployment handle.

        ``initial_network`` lets callers start adaptive training from a
        pre-trained baseline (the usual practice: fine-tune around the
        profiled faults rather than training from scratch).
        """
        # 1. profile the chip's weight memories at the target voltage
        fault_maps = self.profile_chip(chip, target_voltage)

        # 2. memory-adaptive training with the profiled injection masks; the
        # formats are frozen from the pristine starting weights and the
        # program compiled once — mask translation and deployment share it
        network = self._starting_network(
            topology, loss, hidden_activation, output_activation, initial_network
        )
        quantizer = self.quantizer_for(network)
        program = self.compile_program(network, chip, quantizer)
        mask_set = self.build_mask_set(
            network, chip, fault_maps, quantizer=quantizer, program=program
        )
        history = self.fit_adaptive(network, mask_set, train, validation)

        # 3. deploy the trained model to the chip (quantized master weights)
        chip.deploy_quantized(program, quantizer.quantize_network(network))

        # 4. select in-situ canaries and build the runtime controller
        canaries: list[CanaryBit] = []
        controller = None
        if select_canaries:
            canaries, controller = self._select_canaries(chip, target_voltage, program)

        chip.sram_regulator.set_voltage(target_voltage)
        return MaticDeployment(
            chip=chip,
            network=network,
            program=program,
            quantizer=quantizer,
            fault_maps=fault_maps,
            mask_set=mask_set,
            target_voltage=float(target_voltage),
            canaries=canaries,
            controller=controller,
            history=history,
        )

    def deploy_adaptive_sweep(
        self,
        chip: Snnac,
        topology: str | Topology,
        train: Dataset,
        validation: Dataset | None = None,
        voltages=(0.53, 0.50, 0.46),
        loss: str = "mse",
        hidden_activation: str = "sigmoid",
        output_activation: str = "sigmoid",
        initial_network: Network | None = None,
        select_canaries: bool = False,
        warm_start: bool = True,
        warm_epochs: int | None = None,
        warm_patience: int | None = None,
        measure: Callable[[MaticDeployment], Any] | None = None,
    ) -> list[AdaptiveSweepPoint]:
        """Run the MATIC flow across a whole voltage axis on one chip.

        The batched equivalent of calling :meth:`deploy_adaptive` once per
        voltage, with three wins:

        1. **Sweep profiling** — every operating point's fault maps come from
           one :meth:`profile_chip_sweep` pass (one vectorized V_min
           comparison per bank, one cache record per bank) instead of a full
           measured profile per voltage.
        2. **Shared compile** — the placement/program is voltage-invariant,
           so the model is compiled once and every point translates its fault
           maps and deploys against the cached program.
        3. **Warm-started MAT** — with ``warm_start=True`` the walk proceeds
           high→low and fine-tunes each point starting from the neighboring
           (next-higher) voltage's converged weights under a reduced budget
           (``warm_epochs``, default ``max(1, epochs // 6)``, and
           ``warm_patience``) instead of retraining from the pristine
           baseline; neighboring fault maps are nested, so the previous
           point's weights are already nearly adapted.  The trained-weights
           cache key folds the lineage in naturally — the warm initial
           weights *are* the previous point's converged masters — so warm
           and cold artifacts can never collide.

        With ``warm_start=False`` every point trains from the pristine
        baseline under the flow's full config: bit-identical to the
        historical per-voltage :meth:`deploy_adaptive` loop (same initial
        weights, same maps, same masks, same hyper-parameters — the same
        trained-weights cache keys, so the two spellings even share
        artifacts).

        All points share ``chip``, which is serially re-deployed as the walk
        advances; per-point on-chip measurements must therefore happen
        through ``measure(deployment)``, invoked while that point's weights
        are resident (its return value lands in the point's ``measurement``
        field).  Results are returned in ``voltages`` order regardless of
        walk order.
        """
        voltage_axis = tuple(float(v) for v in voltages)
        if not voltage_axis:
            raise ValueError("deploy_adaptive_sweep needs at least one voltage")

        # 1. one profiling pass covers the whole axis
        maps_per_voltage = self.profile_chip_sweep(chip, voltage_axis)

        # 2. freeze formats and compile once, from the pristine baseline —
        # warm-started weights must not shift the word layout mid-sweep, or
        # the per-voltage masks would describe different deployed words
        base = self._starting_network(
            topology, loss, hidden_activation, output_activation, initial_network
        )
        quantizer = self.quantizer_for(base)
        program = self.compile_program(base, chip, quantizer)

        warm_config = replace(
            self.training,
            epochs=(
                int(warm_epochs)
                if warm_epochs is not None
                else max(1, self.training.epochs // 6)
            ),
            patience=(
                warm_patience if warm_patience is not None else self.training.patience
            ),
        )

        # 3. walk the axis high→low so each point's faults are a superset of
        # its warm-start parent's (ties keep input order)
        order = sorted(range(len(voltage_axis)), key=lambda i: (-voltage_axis[i], i))
        points: dict[int, AdaptiveSweepPoint] = {}
        previous: Network | None = None
        for index in order:
            target_voltage = voltage_axis[index]
            fault_maps = maps_per_voltage[index]
            warm = warm_start and previous is not None
            network = (previous if warm else base).copy()
            mask_set = self.build_mask_set(
                network, chip, fault_maps, quantizer=quantizer, program=program
            )
            history = self.fit_adaptive(
                network,
                mask_set,
                train,
                validation,
                config=warm_config if warm else None,
            )
            chip.deploy_quantized(program, quantizer.quantize_network(network))
            canaries: list[CanaryBit] = []
            controller = None
            if select_canaries:
                canaries, controller = self._select_canaries(
                    chip, target_voltage, program
                )
            chip.sram_regulator.set_voltage(target_voltage)
            deployment = MaticDeployment(
                chip=chip,
                network=network,
                program=program,
                quantizer=quantizer,
                fault_maps=fault_maps,
                mask_set=mask_set,
                target_voltage=target_voltage,
                canaries=canaries,
                controller=controller,
                history=history,
            )
            measurement = measure(deployment) if measure is not None else None
            points[index] = AdaptiveSweepPoint(
                voltage=target_voltage,
                deployment=deployment,
                history=history,
                measurement=measurement,
                warm_started=warm,
            )
            previous = network
        return [points[index] for index in range(len(voltage_axis))]

    def deploy_naive(
        self,
        chip: Snnac,
        topology: str | Topology,
        train: Dataset,
        validation: Dataset | None = None,
        target_voltage: float = 0.5,
        loss: str = "mse",
        hidden_activation: str = "sigmoid",
        output_activation: str = "sigmoid",
        initial_network: Network | None = None,
        profile: bool = True,
    ) -> MaticDeployment:
        """Deploy the naive baseline: same topology, no fault awareness.

        ``profile=False`` skips the fault-map profiling pass — the naive
        deployment never *uses* the maps (that is the point of the baseline),
        so sweep drivers that only measure naive error avoid the full
        read-after-write profiling of every bank.
        """
        if initial_network is not None:
            network = initial_network.copy()
            history = None
        else:
            if isinstance(topology, Topology):
                network = Network(topology, loss=loss, seed=self.training.seed)
            else:
                network = Network(
                    topology,
                    hidden_activation=hidden_activation,
                    output_activation=output_activation,
                    loss=loss,
                    seed=self.training.seed,
                )
            history = self.train_baseline(network, train, validation)
        quantizer = self.quantizer_for(network)
        program = chip.deploy(network, quantizer)
        fault_maps = self.profile_chip(chip, target_voltage) if profile else []
        mask_set = FaultMaskSet.identity(network, quantizer)
        chip.sram_regulator.set_voltage(target_voltage)
        return MaticDeployment(
            chip=chip,
            network=network,
            program=program,
            quantizer=quantizer,
            fault_maps=fault_maps,
            mask_set=mask_set,
            target_voltage=float(target_voltage),
            history=history,
        )
