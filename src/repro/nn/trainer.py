"""Baseline (non-adaptive) training loop.

This trainer implements vanilla mini-batch backprop and is what the paper
calls the *naive baseline*: the DNN is trained at full precision with no
knowledge of SRAM faults, and only quantized when deployed to the
accelerator.  Memory-adaptive training
(:class:`repro.matic.training.MemoryAdaptiveTrainer`) subclasses the same
interface so experiments can swap one for the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .data import Dataset, iterate_minibatches
from .network import Network
from .optimizers import Optimizer, get_optimizer

__all__ = ["TrainingHistory", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch training statistics."""

    train_loss: list[float] = field(default_factory=list)
    validation_loss: list[float] = field(default_factory=list)
    epochs_run: int = 0

    @property
    def final_train_loss(self) -> float:
        return self.train_loss[-1] if self.train_loss else float("nan")

    @property
    def final_validation_loss(self) -> float:
        return self.validation_loss[-1] if self.validation_loss else float("nan")


class Trainer:
    """Mini-batch gradient-descent trainer for :class:`Network`.

    Parameters
    ----------
    network:
        The model to train (updated in place).
    optimizer:
        Optimizer name or instance (default: SGD with momentum, which the
        synthetic benchmarks converge well with).
    batch_size:
        Mini-batch size.
    epochs:
        Maximum number of passes over the training set.
    patience:
        Early-stopping patience in epochs, measured on validation loss; use
        ``None`` to disable early stopping.
    lr_decay:
        Multiplicative learning-rate decay applied after every epoch
        (1.0 disables decay).  Decay is important for stable convergence of
        memory-adaptive training at high fault rates, where the heavily
        constrained network otherwise oscillates between mini-batches.
    weight_decay:
        L2 regularization coefficient applied to weight matrices (not
        biases).  Besides its usual generalization benefit, keeping weights
        small keeps the fixed-point weight format tight, which bounds the
        magnitude of any single SRAM bit error.
    seed:
        Seed for the mini-batch shuffling.
    """

    def __init__(
        self,
        network: Network,
        optimizer: str | Optimizer = "momentum",
        learning_rate: float = 0.1,
        batch_size: int = 16,
        epochs: int = 50,
        patience: int | None = None,
        lr_decay: float = 1.0,
        weight_decay: float = 0.0,
        seed: int | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if not 0.0 < lr_decay <= 1.0:
            raise ValueError("lr_decay must be in (0, 1]")
        if weight_decay < 0.0:
            raise ValueError("weight_decay must be non-negative")
        self.network = network
        if isinstance(optimizer, Optimizer):
            self.optimizer = optimizer
        else:
            self.optimizer = get_optimizer(optimizer, learning_rate=learning_rate)
        self.batch_size = int(batch_size)
        self.epochs = int(epochs)
        self.patience = patience
        self.lr_decay = float(lr_decay)
        self.weight_decay = float(weight_decay)
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------

    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One forward/backward/update step on a mini-batch; returns loss."""
        predictions = self.network.forward(inputs, training=True)
        loss_value = self.network.backward(predictions, targets)
        if self.weight_decay:
            for layer in self.network.layers:
                layer.grad_weights = layer.grad_weights + self.weight_decay * layer.weights
        self.optimizer.step(self.network)
        return loss_value

    def fit(
        self,
        train: Dataset,
        validation: Dataset | None = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train the network; returns the per-epoch history."""
        history = TrainingHistory()
        best_validation = float("inf")
        best_weights = None
        epochs_without_improvement = 0

        for epoch in range(self.epochs):
            epoch_losses = []
            for batch_x, batch_y in iterate_minibatches(
                train.inputs, train.targets, self.batch_size, rng=self.rng
            ):
                epoch_losses.append(self.train_step(batch_x, batch_y))
            history.train_loss.append(float(np.mean(epoch_losses)))
            history.epochs_run = epoch + 1
            self.optimizer.learning_rate *= self.lr_decay

            if validation is not None:
                val_loss = self.network.evaluate_loss(
                    validation.inputs, validation.targets
                )
                history.validation_loss.append(val_loss)
                if verbose:  # pragma: no cover - logging only
                    print(
                        f"epoch {epoch + 1:3d}: train={history.train_loss[-1]:.5f} "
                        f"val={val_loss:.5f}"
                    )
                if self.patience is not None:
                    if val_loss < best_validation - 1e-9:
                        best_validation = val_loss
                        best_weights = self.network.get_weights()
                        epochs_without_improvement = 0
                    else:
                        epochs_without_improvement += 1
                        if epochs_without_improvement >= self.patience:
                            break
            elif verbose:  # pragma: no cover - logging only
                print(f"epoch {epoch + 1:3d}: train={history.train_loss[-1]:.5f}")

        if best_weights is not None and self.patience is not None:
            self.network.set_weights(best_weights)
        return history
