"""Activation functions for the fully-connected DNN framework.

Each activation is a small stateless object with a ``forward`` and a
``backward`` method.  ``backward`` receives the *pre-activation* input that
``forward`` saw (and, where cheaper, the cached output) and returns the local
derivative so layers can apply the chain rule.

The set of activations mirrors what the SNNAC accelerator's activation
function unit (AFU) supports: sigmoid, tanh, and ReLU, plus the identity and
softmax used for regression and classification output layers respectively.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Activation",
    "Identity",
    "Sigmoid",
    "Tanh",
    "ReLU",
    "LeakyReLU",
    "Softmax",
    "get_activation",
]


class Activation:
    """Base class for element-wise activation functions."""

    #: Name used by :func:`get_activation` and by the AFU lookup tables.
    name = "base"

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the activation element-wise."""
        raise NotImplementedError

    def backward(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return d(activation)/dx evaluated element-wise.

        Parameters
        ----------
        x:
            The pre-activation values passed to :meth:`forward`.
        y:
            The cached output of :meth:`forward` for the same ``x``; several
            activations (sigmoid, tanh) are cheaper to differentiate from
            their output.
        """
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class Identity(Activation):
    """Linear (no-op) activation, used for regression output layers."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=float)

    def backward(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(x, dtype=float))


class Sigmoid(Activation):
    """Logistic sigmoid ``1 / (1 + exp(-x))``.

    The implementation is numerically stable for large-magnitude inputs by
    branching on the sign of ``x``.
    """

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        expx = np.exp(x[~pos])
        out[~pos] = expx / (1.0 + expx)
        return out

    def backward(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return y * (1.0 - y)


class Tanh(Activation):
    """Hyperbolic tangent activation."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(np.asarray(x, dtype=float))

    def backward(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return 1.0 - y * y


class ReLU(Activation):
    """Rectified linear unit ``max(0, x)``."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(np.asarray(x, dtype=float), 0.0)

    def backward(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=float) > 0.0).astype(float)


class LeakyReLU(Activation):
    """ReLU with a small negative-side slope to avoid dead units."""

    name = "leaky_relu"

    def __init__(self, negative_slope: float = 0.01) -> None:
        if negative_slope < 0:
            raise ValueError("negative_slope must be non-negative")
        self.negative_slope = float(negative_slope)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.where(x > 0.0, x, self.negative_slope * x)

    def backward(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.where(x > 0.0, 1.0, self.negative_slope)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class Softmax(Activation):
    """Row-wise softmax used for classification output layers.

    ``backward`` returns ones: the softmax layer is only meant to be paired
    with :class:`repro.nn.losses.CrossEntropyLoss`, whose gradient with
    respect to the *pre-activation* logits is ``softmax(x) - target``.  The
    loss signals this by returning the combined gradient, and the layer skips
    the local Jacobian (see :class:`repro.nn.layers.DenseLayer`).
    """

    name = "softmax"

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        shifted = x - np.max(x, axis=-1, keepdims=True)
        expx = np.exp(shifted)
        return expx / np.sum(expx, axis=-1, keepdims=True)

    def backward(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(x, dtype=float))


_REGISTRY = {
    cls.name: cls
    for cls in (Identity, Sigmoid, Tanh, ReLU, LeakyReLU, Softmax)
}


def get_activation(name: str | Activation) -> Activation:
    """Resolve an activation by name (or pass an instance through).

    >>> get_activation("sigmoid")
    Sigmoid()
    """
    if isinstance(name, Activation):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown activation {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]()
