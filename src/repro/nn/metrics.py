"""Evaluation metrics matching the paper's error reporting.

Table I reports:

* classification *error* rate (``100% − classification rate``) for mnist and
  facedet, and
* mean-squared error for inversek2j and bscholes.

Additionally the paper summarizes voltage sweeps with the *average error
increase* (AEI) relative to the nominal-voltage error, and reports MATIC's
benefit as the ratio of naive AEI to adaptive AEI ("AEI reduction").
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "classification_error",
    "classification_rate",
    "mean_squared_error",
    "average_error_increase",
    "error_increase",
]


def _labels_from(outputs: np.ndarray) -> np.ndarray:
    """Derive integer class labels from network outputs.

    Multi-column outputs use argmax; single-column (binary, sigmoid) outputs
    threshold at 0.5.
    """
    outputs = np.asarray(outputs, dtype=float)
    if outputs.ndim == 1:
        outputs = outputs.reshape(-1, 1)
    if outputs.shape[1] == 1:
        return (outputs[:, 0] >= 0.5).astype(int)
    return np.argmax(outputs, axis=1)


def classification_rate(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of samples classified correctly (the paper's "classif. rate")."""
    labels = np.asarray(labels, dtype=int).reshape(-1)
    predicted = _labels_from(predictions)
    if predicted.shape != labels.shape:
        raise ValueError(
            f"predictions imply {predicted.shape[0]} samples, labels have {labels.shape[0]}"
        )
    if labels.size == 0:
        raise ValueError("cannot compute classification rate of an empty set")
    return float(np.mean(predicted == labels))


def classification_error(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Classification error rate, ``1 − classification_rate``."""
    return 1.0 - classification_rate(predictions, labels)


def mean_squared_error(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean squared error averaged over samples and output dimensions."""
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if predictions.shape != targets.shape:
        raise ValueError(f"shape mismatch: {predictions.shape} vs {targets.shape}")
    if predictions.size == 0:
        raise ValueError("cannot compute MSE of an empty set")
    return float(np.mean((predictions - targets) ** 2))


def error_increase(error: float, nominal_error: float) -> float:
    """Error increase of an operating point relative to the nominal error.

    Expressed as an absolute increase (``error − nominal``), clipped at zero:
    operating points that happen to beat nominal count as zero increase.
    """
    return max(float(error) - float(nominal_error), 0.0)


def average_error_increase(errors: np.ndarray, nominal_error: float) -> float:
    """Average error increase (AEI) across a set of operating points.

    The paper's Table I reports AEI averaged "across both voltage and all
    benchmarks"; this helper performs the per-benchmark voltage average, and
    the caller averages across benchmarks.
    """
    errors = np.asarray(errors, dtype=float).reshape(-1)
    if errors.size == 0:
        raise ValueError("errors must be non-empty")
    increases = np.maximum(errors - float(nominal_error), 0.0)
    return float(np.mean(increases))
