"""Gradient-descent optimizers.

The paper trains its benchmark models with vanilla backprop (SGD); momentum
and Adam are provided because the memory-adaptive training experiments
converge noticeably faster with them on the synthetic datasets, and because a
production library would be expected to offer them.

Optimizers operate on a :class:`~repro.nn.network.Network` by reading each
layer's ``grad_weights`` / ``grad_bias`` and updating the *master* float
weights.  Memory-adaptive training wraps this update with its own rule (see
:class:`repro.matic.training.MemoryAdaptiveTrainer`) but reuses the same
optimizer implementations for the raw gradient step.
"""

from __future__ import annotations

import numpy as np

from .network import Network

__all__ = ["Optimizer", "SGD", "MomentumSGD", "Adam", "get_optimizer"]


class Optimizer:
    """Base class: per-parameter update of a network's master weights."""

    name = "base"

    def __init__(self, learning_rate: float = 0.1) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def step(self, network: Network) -> None:
        """Apply one update using the gradients currently stored in layers."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any internal state (momentum buffers, moment estimates)."""

    # ------------------------------------------------------------------
    # Helper used by MAT: compute the raw update delta for one parameter
    # tensor without applying it, so the caller can fold it into its own
    # weight-update rule.
    # ------------------------------------------------------------------
    def parameter_delta(self, key: str, gradient: np.ndarray) -> np.ndarray:
        """Return the update delta (to be *subtracted*) for one parameter.

        ``key`` identifies the parameter tensor (stable across iterations) so
        stateful optimizers can keep per-parameter buffers.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(lr={self.learning_rate})"


def _iter_parameters(network: Network):
    """Yield (key, parameter array, gradient array) triples for a network."""
    for index, layer in enumerate(network.layers):
        yield f"layer{index}.weights", layer.weights, layer.grad_weights
        yield f"layer{index}.bias", layer.bias, layer.grad_bias


class SGD(Optimizer):
    """Plain stochastic gradient descent: ``w ← w − α ∇J``."""

    name = "sgd"

    def step(self, network: Network) -> None:
        for _, param, grad in _iter_parameters(network):
            param -= self.learning_rate * grad

    def parameter_delta(self, key: str, gradient: np.ndarray) -> np.ndarray:
        return self.learning_rate * gradient


class MomentumSGD(Optimizer):
    """SGD with classical momentum."""

    name = "momentum"

    def __init__(self, learning_rate: float = 0.1, momentum: float = 0.9) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: dict[str, np.ndarray] = {}

    def reset(self) -> None:
        self._velocity.clear()

    def parameter_delta(self, key: str, gradient: np.ndarray) -> np.ndarray:
        velocity = self._velocity.get(key)
        if velocity is None:
            velocity = np.zeros_like(gradient)
        velocity = self.momentum * velocity + self.learning_rate * gradient
        self._velocity[key] = velocity
        return velocity

    def step(self, network: Network) -> None:
        for key, param, grad in _iter_parameters(network):
            param -= self.parameter_delta(key, grad)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    name = "adam"

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t: dict[str, int] = {}

    def reset(self) -> None:
        self._m.clear()
        self._v.clear()
        self._t.clear()

    def parameter_delta(self, key: str, gradient: np.ndarray) -> np.ndarray:
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None or v is None:
            m = np.zeros_like(gradient)
            v = np.zeros_like(gradient)
        t = self._t.get(key, 0) + 1
        m = self.beta1 * m + (1.0 - self.beta1) * gradient
        v = self.beta2 * v + (1.0 - self.beta2) * gradient * gradient
        self._m[key], self._v[key], self._t[key] = m, v, t
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        return self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def step(self, network: Network) -> None:
        for key, param, grad in _iter_parameters(network):
            param -= self.parameter_delta(key, grad)


_REGISTRY = {cls.name: cls for cls in (SGD, MomentumSGD, Adam)}


def get_optimizer(name: str | Optimizer, **kwargs) -> Optimizer:
    """Resolve an optimizer by name (or pass an instance through)."""
    if isinstance(name, Optimizer):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown optimizer {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key](**kwargs)
