"""Loss functions for training and evaluating fully-connected DNNs.

Every loss exposes:

``value(predictions, targets)``
    Scalar mean loss over the batch.

``gradient(predictions, targets)``
    Gradient of the mean loss with respect to the predictions (same shape as
    ``predictions``).

``fuses_with_softmax``
    True when the loss gradient is expressed with respect to the
    pre-activation logits of a softmax output layer (cross-entropy).  The
    :class:`repro.nn.network.Network` backward pass uses this flag to skip
    the softmax Jacobian.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Loss",
    "MeanSquaredError",
    "CrossEntropyLoss",
    "BinaryCrossEntropyLoss",
    "get_loss",
]

_EPS = 1e-12


def _as_2d(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=float)
    if a.ndim == 1:
        return a.reshape(1, -1)
    return a


class Loss:
    """Base class for losses."""

    name = "base"
    #: when True the gradient is w.r.t. softmax logits, not probabilities
    fuses_with_softmax = False

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class MeanSquaredError(Loss):
    """Mean squared error, averaged over batch and output dimensions.

    This is the error metric the paper reports for the ``inversek2j`` and
    ``bscholes`` regression benchmarks.
    """

    name = "mse"

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        p, t = _as_2d(predictions), _as_2d(targets)
        if p.shape != t.shape:
            raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
        return float(np.mean((p - t) ** 2))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        p, t = _as_2d(predictions), _as_2d(targets)
        if p.shape != t.shape:
            raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
        return 2.0 * (p - t) / p.size


class CrossEntropyLoss(Loss):
    """Categorical cross-entropy over one-hot targets.

    Intended to follow a softmax output layer; the gradient returned is with
    respect to the softmax *logits* (``softmax(x) - target``), the standard
    fused form, which is both faster and numerically better conditioned.
    """

    name = "cross_entropy"
    fuses_with_softmax = True

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        p, t = _as_2d(predictions), _as_2d(targets)
        if p.shape != t.shape:
            raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
        p = np.clip(p, _EPS, 1.0)
        return float(-np.mean(np.sum(t * np.log(p), axis=-1)))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        p, t = _as_2d(predictions), _as_2d(targets)
        if p.shape != t.shape:
            raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
        return (p - t) / p.shape[0]


class BinaryCrossEntropyLoss(Loss):
    """Per-output (sigmoid) cross-entropy, summed over outputs, averaged over
    the batch.

    This is the FANN-style classifier loss used by the ``facedet`` (400-8-1)
    and ``mnist`` (100-32-10, independent sigmoid outputs) benchmarks.  The
    gradient is with respect to the sigmoid *outputs* (probabilities), so it
    composes with the sigmoid local derivative in the output layer; its scale
    matches :class:`CrossEntropyLoss` (per-sample, not per-element), so the
    same learning rates work for both classifier heads.
    """

    name = "binary_cross_entropy"

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        p, t = _as_2d(predictions), _as_2d(targets)
        if p.shape != t.shape:
            raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
        p = np.clip(p, _EPS, 1.0 - _EPS)
        per_sample = -np.sum(t * np.log(p) + (1.0 - t) * np.log(1.0 - p), axis=-1)
        return float(np.mean(per_sample))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        p, t = _as_2d(predictions), _as_2d(targets)
        if p.shape != t.shape:
            raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
        p = np.clip(p, _EPS, 1.0 - _EPS)
        return (p - t) / (p * (1.0 - p)) / p.shape[0]


_REGISTRY = {
    cls.name: cls
    for cls in (MeanSquaredError, CrossEntropyLoss, BinaryCrossEntropyLoss)
}


def get_loss(name: str | Loss) -> Loss:
    """Resolve a loss by name (or pass an instance through)."""
    if isinstance(name, Loss):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown loss {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key]()
