"""Network layers.

The paper only evaluates fully-connected (FC) DNNs — the SNNAC accelerator is
an FC-oriented design — so the framework provides a dense layer plus the
plumbing MATIC needs:

* every layer keeps *master* float weights (``weights`` / ``bias``) that the
  optimizer updates, and
* optionally carries *effective* weights (``effective_weights`` /
  ``effective_bias``) that the forward and backward passes use instead.

Memory-adaptive training sets the effective weights each iteration to the
quantized, fault-masked view of the master weights, so the gradients computed
by backprop are exactly ``∂J/∂m`` from the paper's update rule.
"""

from __future__ import annotations

import numpy as np

from .activations import Activation, get_activation
from .initializers import Initializer, XavierUniform, ZerosInitializer, get_initializer

__all__ = ["Layer", "DenseLayer"]


class Layer:
    """Base class for layers with trainable parameters."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def parameters(self) -> list[np.ndarray]:
        return []

    @property
    def gradients(self) -> list[np.ndarray]:
        return []


class DenseLayer(Layer):
    """Fully-connected layer ``y = f(x @ W + b)``.

    Parameters
    ----------
    in_features, out_features:
        Layer width.  For SNNAC these map to a weight matrix that is
        time-multiplexed across the eight processing elements.
    activation:
        Activation name or instance (default sigmoid, matching the paper's
        benchmark models).
    weight_initializer, bias_initializer:
        Initialization schemes; Xavier uniform and zeros by default.
    rng:
        Random generator used to draw the initial weights.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str | Activation = "sigmoid",
        weight_initializer: str | Initializer | None = None,
        bias_initializer: str | Initializer | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer dimensions must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.activation = get_activation(activation)

        w_init = (
            get_initializer(weight_initializer)
            if weight_initializer is not None
            else XavierUniform()
        )
        b_init = (
            get_initializer(bias_initializer)
            if bias_initializer is not None
            else ZerosInitializer()
        )
        rng = rng if rng is not None else np.random.default_rng()

        #: master float weights, shape (in_features, out_features)
        self.weights = w_init((self.in_features, self.out_features), rng)
        #: master float bias, shape (out_features,)
        self.bias = b_init((self.out_features,), rng)

        #: optional fault-masked / quantized view used by forward & backward
        self.effective_weights: np.ndarray | None = None
        self.effective_bias: np.ndarray | None = None

        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)

        # caches populated by forward() when training=True
        self._input: np.ndarray | None = None
        self._pre_activation: np.ndarray | None = None
        self._output: np.ndarray | None = None
        #: set by Network.backward when the loss gradient is already w.r.t.
        #: the pre-activation (softmax + cross-entropy fusion)
        self.skip_activation_gradient = False

    # ------------------------------------------------------------------ API

    @property
    def active_weights(self) -> np.ndarray:
        """Weights actually used for compute (effective if set, else master)."""
        return self.effective_weights if self.effective_weights is not None else self.weights

    @property
    def active_bias(self) -> np.ndarray:
        """Bias actually used for compute (effective if set, else master)."""
        return self.effective_bias if self.effective_bias is not None else self.bias

    def set_effective(self, weights: np.ndarray | None, bias: np.ndarray | None) -> None:
        """Install (or clear, with ``None``) the effective parameter view."""
        if weights is not None and weights.shape != self.weights.shape:
            raise ValueError(
                f"effective weight shape {weights.shape} != {self.weights.shape}"
            )
        if bias is not None and bias.shape != self.bias.shape:
            raise ValueError(
                f"effective bias shape {bias.shape} != {self.bias.shape}"
            )
        self.effective_weights = weights
        self.effective_bias = bias

    def clear_effective(self) -> None:
        """Remove any effective parameter view; compute reverts to masters."""
        self.effective_weights = None
        self.effective_bias = None

    # ------------------------------------------------------------ forward

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"input has {x.shape[1]} features, layer expects {self.in_features}"
            )
        z = x @ self.active_weights + self.active_bias
        y = self.activation.forward(z)
        if training:
            self._input = x
            self._pre_activation = z
            self._output = y
        return y

    # ----------------------------------------------------------- backward

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` (dJ/dy) through the layer.

        Stores ``grad_weights`` / ``grad_bias`` (gradients with respect to
        the *active* weights) and returns dJ/dx for the previous layer.
        """
        if self._input is None or self._pre_activation is None or self._output is None:
            raise RuntimeError("backward() called before forward(training=True)")
        grad_output = np.asarray(grad_output, dtype=float)
        if grad_output.ndim == 1:
            grad_output = grad_output.reshape(1, -1)

        if self.skip_activation_gradient:
            grad_z = grad_output
        else:
            grad_z = grad_output * self.activation.backward(
                self._pre_activation, self._output
            )

        self.grad_weights = self._input.T @ grad_z
        self.grad_bias = np.sum(grad_z, axis=0)
        return grad_z @ self.active_weights.T

    # -------------------------------------------------------- bookkeeping

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.weights, self.bias]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weights, self.grad_bias]

    @property
    def num_parameters(self) -> int:
        return self.weights.size + self.bias.size

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DenseLayer({self.in_features}->{self.out_features}, "
            f"activation={self.activation.name})"
        )
