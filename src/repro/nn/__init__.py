"""Pure-numpy fully-connected DNN framework.

This subpackage is the training/inference substrate the MATIC methodology is
built on: dense layers with master/effective weight views (so fault-masked
training is possible), standard activations and losses, SGD-family
optimizers, and a baseline trainer.
"""

from .activations import (
    Activation,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    get_activation,
)
from .data import Dataset, iterate_minibatches, one_hot, train_test_split
from .initializers import (
    HeNormal,
    Initializer,
    NormalInitializer,
    UniformInitializer,
    XavierNormal,
    XavierUniform,
    ZerosInitializer,
    get_initializer,
)
from .layers import DenseLayer, Layer
from .losses import (
    BinaryCrossEntropyLoss,
    CrossEntropyLoss,
    Loss,
    MeanSquaredError,
    get_loss,
)
from .metrics import (
    average_error_increase,
    classification_error,
    classification_rate,
    error_increase,
    mean_squared_error,
)
from .network import Network, Topology, parse_topology
from .optimizers import SGD, Adam, MomentumSGD, Optimizer, get_optimizer
from .trainer import Trainer, TrainingHistory

__all__ = [
    "Activation",
    "Identity",
    "Sigmoid",
    "Tanh",
    "ReLU",
    "LeakyReLU",
    "Softmax",
    "get_activation",
    "Loss",
    "MeanSquaredError",
    "CrossEntropyLoss",
    "BinaryCrossEntropyLoss",
    "get_loss",
    "Initializer",
    "UniformInitializer",
    "NormalInitializer",
    "XavierUniform",
    "XavierNormal",
    "HeNormal",
    "ZerosInitializer",
    "get_initializer",
    "Layer",
    "DenseLayer",
    "Network",
    "Topology",
    "parse_topology",
    "Optimizer",
    "SGD",
    "MomentumSGD",
    "Adam",
    "get_optimizer",
    "Trainer",
    "TrainingHistory",
    "Dataset",
    "train_test_split",
    "iterate_minibatches",
    "one_hot",
    "classification_error",
    "classification_rate",
    "mean_squared_error",
    "average_error_increase",
    "error_increase",
]
