"""Dataset containers and batching utilities.

The paper splits each benchmark into train/test subsets with either a 7-to-1
or a 10-to-1 ratio; :func:`train_test_split` implements exactly that, and
:class:`Dataset` is the small container every generator in
:mod:`repro.datasets` returns.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Dataset", "train_test_split", "iterate_minibatches", "one_hot"]


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer class labels as one-hot row vectors."""
    labels = np.asarray(labels, dtype=int)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1-D integer array")
    if num_classes <= 0:
        raise ValueError("num_classes must be positive")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for num_classes")
    encoded = np.zeros((labels.size, num_classes), dtype=float)
    encoded[np.arange(labels.size), labels] = 1.0
    return encoded


@dataclass
class Dataset:
    """A supervised dataset: row-major inputs and matching targets.

    Attributes
    ----------
    inputs:
        Array of shape ``(num_samples, num_features)``.
    targets:
        Array of shape ``(num_samples, num_outputs)``; classification
        datasets store one-hot rows (or a single probability column for
        binary tasks).
    labels:
        Optional integer class labels, kept alongside one-hot targets so
        classification-rate metrics do not need to re-derive them.
    name:
        Human-readable benchmark name (``mnist``, ``facedet`` ...).
    """

    inputs: np.ndarray
    targets: np.ndarray
    labels: np.ndarray | None = None
    name: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.inputs = np.asarray(self.inputs, dtype=float)
        self.targets = np.asarray(self.targets, dtype=float)
        if self.inputs.ndim != 2:
            raise ValueError("inputs must be 2-D (samples, features)")
        if self.targets.ndim == 1:
            self.targets = self.targets.reshape(-1, 1)
        if len(self.inputs) != len(self.targets):
            raise ValueError("inputs and targets must have the same length")
        if self.labels is not None:
            self.labels = np.asarray(self.labels, dtype=int)
            if len(self.labels) != len(self.inputs):
                raise ValueError("labels length must match inputs")

    def __len__(self) -> int:
        return len(self.inputs)

    @property
    def num_features(self) -> int:
        return self.inputs.shape[1]

    @property
    def num_outputs(self) -> int:
        return self.targets.shape[1]

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Return a new dataset containing only ``indices``."""
        indices = np.asarray(indices, dtype=int)
        return Dataset(
            inputs=self.inputs[indices],
            targets=self.targets[indices],
            labels=None if self.labels is None else self.labels[indices],
            name=self.name,
            metadata=dict(self.metadata),
        )

    def shuffled(self, rng: np.random.Generator | int | None = None) -> "Dataset":
        """Return a row-shuffled copy."""
        rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        order = rng.permutation(len(self))
        return self.subset(order)


def train_test_split(
    dataset: Dataset,
    ratio: int | float = 7,
    rng: np.random.Generator | int | None = None,
) -> tuple[Dataset, Dataset]:
    """Split a dataset into train/test subsets.

    ``ratio`` follows the paper's convention: a value of ``7`` means a
    7-to-1 train/test split (i.e. 7/8 of the samples train), ``10`` means
    10-to-1.  Fractions in ``(0, 1)`` are also accepted and interpreted as
    the train fraction directly.
    """
    if ratio <= 0:
        raise ValueError("ratio must be positive")
    train_fraction = ratio if 0 < ratio < 1 else ratio / (ratio + 1.0)
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    order = rng.permutation(len(dataset))
    cut = int(round(train_fraction * len(dataset)))
    cut = min(max(cut, 1), len(dataset) - 1)
    return dataset.subset(order[:cut]), dataset.subset(order[cut:])


def iterate_minibatches(
    inputs: np.ndarray,
    targets: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(inputs, targets)`` mini-batches, optionally shuffled."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    n = len(inputs)
    if len(targets) != n:
        raise ValueError("inputs and targets must have the same length")
    indices = np.arange(n)
    if shuffle:
        rng = rng if rng is not None else np.random.default_rng()
        rng.shuffle(indices)
    for start in range(0, n, batch_size):
        batch = indices[start : start + batch_size]
        yield inputs[batch], targets[batch]
