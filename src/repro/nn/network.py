"""Feed-forward fully-connected network.

A :class:`Network` is an ordered list of :class:`~repro.nn.layers.DenseLayer`
objects built from a *topology* — the paper describes its benchmark models by
topology strings such as ``100-32-10`` (mnist), ``400-8-1`` (facedet),
``2-16-2`` (inversek2j) and ``6-16-1`` (bscholes).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from .activations import Activation
from .layers import DenseLayer
from .losses import Loss, get_loss

__all__ = ["Network", "Topology", "parse_topology"]


def parse_topology(topology: str | Sequence[int]) -> tuple[int, ...]:
    """Parse a topology description into a tuple of layer widths.

    Accepts either a dash-separated string (``"100-32-10"``) or a sequence of
    integers.  At least two entries (input and output widths) are required.
    """
    if isinstance(topology, str):
        try:
            widths = tuple(int(part) for part in topology.split("-"))
        except ValueError as exc:
            raise ValueError(f"invalid topology string {topology!r}") from exc
    else:
        widths = tuple(int(w) for w in topology)
    if len(widths) < 2:
        raise ValueError("topology needs at least input and output widths")
    if any(w <= 0 for w in widths):
        raise ValueError(f"topology widths must be positive, got {widths}")
    return widths


class Topology:
    """A named DNN topology (layer widths plus activation choices)."""

    def __init__(
        self,
        widths: str | Sequence[int],
        hidden_activation: str | Activation = "sigmoid",
        output_activation: str | Activation = "sigmoid",
        name: str = "",
    ) -> None:
        self.widths = parse_topology(widths)
        self.hidden_activation = hidden_activation
        self.output_activation = output_activation
        self.name = name or "-".join(str(w) for w in self.widths)

    @property
    def num_weights(self) -> int:
        """Number of weight parameters (excluding biases)."""
        return sum(a * b for a, b in zip(self.widths[:-1], self.widths[1:]))

    @property
    def num_parameters(self) -> int:
        """Number of trainable parameters including biases."""
        return self.num_weights + sum(self.widths[1:])

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Topology({self.name!r})"


class Network:
    """A feed-forward stack of dense layers.

    Parameters
    ----------
    topology:
        Layer widths, e.g. ``"100-32-10"`` or ``[100, 32, 10]``, or a
        :class:`Topology` instance.
    hidden_activation / output_activation:
        Activations for hidden layers and the output layer.  Classification
        benchmarks in the paper use sigmoid hidden units with softmax or
        sigmoid outputs; regression benchmarks use a linear output.
    loss:
        Loss name or instance used by :meth:`backward` and :meth:`evaluate`.
    seed:
        Seed for weight initialization (reproducibility of the baseline vs.
        memory-adaptive comparison requires identical initial weights).
    """

    def __init__(
        self,
        topology: str | Sequence[int] | Topology,
        hidden_activation: str | Activation = "sigmoid",
        output_activation: str | Activation = "sigmoid",
        loss: str | Loss = "mse",
        weight_initializer: str | None = None,
        seed: int | None = None,
    ) -> None:
        if isinstance(topology, Topology):
            widths = topology.widths
            hidden_activation = topology.hidden_activation
            output_activation = topology.output_activation
            self.name = topology.name
        else:
            widths = parse_topology(topology)
            self.name = "-".join(str(w) for w in widths)
        self.widths = widths
        self.loss = get_loss(loss)
        rng = np.random.default_rng(seed)

        self.layers: list[DenseLayer] = []
        for index, (fan_in, fan_out) in enumerate(zip(widths[:-1], widths[1:])):
            is_output = index == len(widths) - 2
            activation = output_activation if is_output else hidden_activation
            self.layers.append(
                DenseLayer(
                    fan_in,
                    fan_out,
                    activation=activation,
                    weight_initializer=weight_initializer,
                    rng=rng,
                )
            )

    # ------------------------------------------------------------ compute

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the network on a batch (or single sample) of inputs."""
        out = np.asarray(x, dtype=float)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass."""
        return self.forward(x, training=False)

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Compute the loss and backpropagate its gradient.

        Returns the scalar loss value.  Layer gradients are left in each
        layer's ``grad_weights`` / ``grad_bias``.
        """
        loss_value = self.loss.value(predictions, targets)
        grad = self.loss.gradient(predictions, targets)
        output_layer = self.layers[-1]
        output_layer.skip_activation_gradient = (
            self.loss.fuses_with_softmax
            and output_layer.activation.name == "softmax"
        )
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        output_layer.skip_activation_gradient = False
        return loss_value

    def evaluate_loss(self, x: np.ndarray, targets: np.ndarray) -> float:
        """Loss on a dataset without touching gradients."""
        return self.loss.value(self.predict(x), targets)

    # --------------------------------------------------------- parameters

    @property
    def num_parameters(self) -> int:
        return sum(layer.num_parameters for layer in self.layers)

    @property
    def num_weights(self) -> int:
        """Number of weight parameters (the values stored in weight SRAM)."""
        return sum(layer.weights.size for layer in self.layers)

    def get_weights(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Return copies of ``(weights, bias)`` per layer."""
        return [(layer.weights.copy(), layer.bias.copy()) for layer in self.layers]

    def set_weights(self, weights: Iterable[tuple[np.ndarray, np.ndarray]]) -> None:
        """Install per-layer ``(weights, bias)`` pairs (copied in)."""
        weights = list(weights)
        if len(weights) != len(self.layers):
            raise ValueError(
                f"expected {len(self.layers)} layer parameter pairs, got {len(weights)}"
            )
        for layer, (w, b) in zip(self.layers, weights):
            if w.shape != layer.weights.shape or b.shape != layer.bias.shape:
                raise ValueError("weight shapes do not match network topology")
            layer.weights = np.array(w, dtype=float, copy=True)
            layer.bias = np.array(b, dtype=float, copy=True)

    def clear_effective(self) -> None:
        """Remove fault-masked parameter views from every layer."""
        for layer in self.layers:
            layer.clear_effective()

    def copy(self) -> "Network":
        """Deep copy of the network (weights and topology, not caches)."""
        clone = Network(
            self.widths,
            hidden_activation=self.layers[0].activation.name if self.layers else "sigmoid",
            output_activation=self.layers[-1].activation.name if self.layers else "sigmoid",
            loss=self.loss,
        )
        clone.name = self.name
        clone.set_weights(self.get_weights())
        return clone

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Network({self.name!r}, loss={self.loss.name})"
