"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so that
experiments are reproducible end to end (the paper's evaluation is only
meaningful if the baseline and the memory-adaptive model start from the same
initial weights).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Initializer",
    "UniformInitializer",
    "NormalInitializer",
    "XavierUniform",
    "XavierNormal",
    "HeNormal",
    "ZerosInitializer",
    "get_initializer",
]


class Initializer:
    """Base class: callable producing an array of a requested shape."""

    name = "base"

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"

    @staticmethod
    def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
        """Return (fan_in, fan_out) for a dense weight matrix shape."""
        if len(shape) == 1:
            return shape[0], shape[0]
        fan_in = int(shape[0])
        fan_out = int(np.prod(shape[1:]))
        return fan_in, fan_out


class ZerosInitializer(Initializer):
    """All-zeros; the default for bias vectors."""

    name = "zeros"

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.zeros(shape, dtype=float)


class UniformInitializer(Initializer):
    """Uniform on ``[-scale, scale]``."""

    name = "uniform"

    def __init__(self, scale: float = 0.1) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(-self.scale, self.scale, size=shape)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"UniformInitializer(scale={self.scale})"


class NormalInitializer(Initializer):
    """Zero-mean Gaussian with a fixed standard deviation."""

    name = "normal"

    def __init__(self, std: float = 0.05) -> None:
        if std <= 0:
            raise ValueError("std must be positive")
        self.std = float(std)

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, self.std, size=shape)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"NormalInitializer(std={self.std})"


class XavierUniform(Initializer):
    """Glorot/Xavier uniform: suits sigmoid/tanh networks like SNNAC's."""

    name = "xavier_uniform"

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = self._fan(shape)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape)


class XavierNormal(Initializer):
    """Glorot/Xavier normal."""

    name = "xavier_normal"

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = self._fan(shape)
        std = np.sqrt(2.0 / (fan_in + fan_out))
        return rng.normal(0.0, std, size=shape)


class HeNormal(Initializer):
    """He/Kaiming normal: suits ReLU networks."""

    name = "he_normal"

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, _ = self._fan(shape)
        std = np.sqrt(2.0 / fan_in)
        return rng.normal(0.0, std, size=shape)


_REGISTRY = {
    cls.name: cls
    for cls in (
        ZerosInitializer,
        UniformInitializer,
        NormalInitializer,
        XavierUniform,
        XavierNormal,
        HeNormal,
    )
}


def get_initializer(name: str | Initializer) -> Initializer:
    """Resolve an initializer by name (or pass an instance through)."""
    if isinstance(name, Initializer):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown initializer {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]()
