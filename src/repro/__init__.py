"""MATIC reproduction: memory-adaptive training and in-situ canaries for
low-voltage DNN accelerators.

Reproduction of Kim et al., "MATIC: Learning Around Errors for Efficient
Low-Voltage Neural Network Accelerators" (DATE 2018), including the
substrates the paper depends on: a fully-connected DNN framework, a
fixed-point quantization layer, a voltage-scalable SRAM model, and a
simulator of the SNNAC accelerator with its calibrated energy model.

Subpackages
-----------
``repro.nn``
    Pure-numpy fully-connected DNN framework (layers, losses, optimizers,
    trainer, metrics).
``repro.quant``
    Fixed-point formats and weight quantization.
``repro.sram``
    6T bit-cell variation, voltage-scalable SRAM banks, fault maps,
    profiling, regulators, environmental variation.
``repro.accelerator``
    SNNAC simulator: PEs, systolic ring, AFU, microcode compiler, NPU, SoC,
    energy/frequency models.
``repro.matic``
    The paper's contribution: injection masking, memory-adaptive training,
    in-situ canaries, and the end-to-end flow.
``repro.datasets``
    The four application benchmarks of Table I.
``repro.experiments``
    Drivers that regenerate every table and figure of the evaluation.
"""

from . import accelerator, datasets, matic, nn, quant, sram

__version__ = "1.0.0"

__all__ = [
    "nn",
    "quant",
    "sram",
    "accelerator",
    "matic",
    "datasets",
    "__version__",
]
