"""Procedural handwritten-digit dataset (MNIST substitute).

The paper's ``mnist`` benchmark uses the MNIST handwritten digit database
down-scaled to a 100-input (10×10) representation with a 100-32-10 model.
This environment has no network access, so we generate a procedural
substitute with the same interface: 10×10 grayscale digit images produced
from pixel-font glyph templates with random translation, stroke jitter,
per-pixel noise, and intensity variation.  The resulting task has the same
input width, class count, and a comparable nominal error (~10 %) with the
paper's compact topology, which is what the voltage-scaling experiments
need.
"""

from __future__ import annotations

import numpy as np

from ..nn.data import Dataset, one_hot

__all__ = ["generate_digits", "DIGIT_GLYPHS", "IMAGE_SIZE", "NUM_CLASSES"]

#: Images are IMAGE_SIZE × IMAGE_SIZE pixels (100 inputs, as in the paper).
IMAGE_SIZE = 10

#: Ten digit classes.
NUM_CLASSES = 10

# 7x5 pixel-font glyphs for digits 0-9 ('#' = ink).
_GLYPH_STRINGS = {
    0: [" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "],
    1: ["  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "],
    2: [" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"],
    3: [" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "],
    4: ["   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "],
    5: ["#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "],
    6: [" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "],
    7: ["#####", "    #", "   # ", "  #  ", "  #  ", " #   ", " #   "],
    8: [" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "],
    9: [" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "],
}


def _glyph_array(digit: int) -> np.ndarray:
    rows = _GLYPH_STRINGS[digit]
    return np.array([[1.0 if ch == "#" else 0.0 for ch in row] for row in rows])


#: Glyph bitmaps, shape (10, 7, 5).
DIGIT_GLYPHS = np.stack([_glyph_array(d) for d in range(NUM_CLASSES)])


def _render_digit(
    digit: int,
    rng: np.random.Generator,
    noise_level: float,
    jitter_probability: float,
) -> np.ndarray:
    """Render one noisy 10×10 digit image with values in [0, 1]."""
    glyph = DIGIT_GLYPHS[digit].copy()

    # stroke jitter: randomly erase or add a few pixels adjacent to strokes
    jitter = rng.random(glyph.shape) < jitter_probability
    glyph = np.clip(glyph + jitter * rng.choice([-1.0, 1.0], size=glyph.shape), 0.0, 1.0)

    image = np.zeros((IMAGE_SIZE, IMAGE_SIZE))
    # random placement of the 7x5 glyph inside the 10x10 canvas
    max_row = IMAGE_SIZE - glyph.shape[0]
    max_col = IMAGE_SIZE - glyph.shape[1]
    row = rng.integers(0, max_row + 1)
    col = rng.integers(0, max_col + 1)
    image[row : row + glyph.shape[0], col : col + glyph.shape[1]] = glyph

    # intensity variation and additive noise
    intensity = rng.uniform(0.7, 1.0)
    image = image * intensity + rng.normal(0.0, noise_level, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def generate_digits(
    num_samples: int = 2000,
    seed: int | None = 0,
    noise_level: float = 0.15,
    jitter_probability: float = 0.05,
) -> Dataset:
    """Generate the digit-recognition dataset.

    Parameters
    ----------
    num_samples:
        Total number of images (classes are balanced up to rounding).
    seed:
        Generator seed; the same seed reproduces the same dataset.
    noise_level:
        Standard deviation of the additive Gaussian pixel noise.
    jitter_probability:
        Per-pixel probability of stroke jitter in the glyph.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, NUM_CLASSES, size=num_samples)
    images = np.stack(
        [
            _render_digit(int(digit), rng, noise_level, jitter_probability).reshape(-1)
            for digit in labels
        ]
    )
    return Dataset(
        inputs=images,
        targets=one_hot(labels, NUM_CLASSES),
        labels=labels,
        name="mnist",
        metadata={
            "substitute_for": "MNIST handwritten digits (LeCun & Cortes)",
            "image_size": IMAGE_SIZE,
            "num_classes": NUM_CLASSES,
        },
    )
