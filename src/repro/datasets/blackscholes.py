"""Option-pricing benchmark (AxBench / PARSEC ``blackscholes``).

Computes European option prices with the Black–Scholes closed-form solution
— the second approximate-computing benchmark the paper evaluates, with a
6-16-1 model.  Like ``inversek2j`` this is an exact re-implementation of the
data-generating kernel, not a substitute.
"""

from __future__ import annotations

import numpy as np

from ..nn.data import Dataset

__all__ = ["generate_blackscholes", "black_scholes_price", "norm_cdf"]


def norm_cdf(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF via the Abramowitz–Stegun erf approximation."""
    x = np.asarray(x, dtype=float)
    z = x / np.sqrt(2.0)
    sign = np.sign(z)
    az = np.abs(z)
    t = 1.0 / (1.0 + 0.3275911 * az)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    erf = sign * (1.0 - poly * np.exp(-az * az))
    return 0.5 * (1.0 + erf)


def black_scholes_price(
    spot: np.ndarray,
    strike: np.ndarray,
    rate: np.ndarray,
    volatility: np.ndarray,
    time_to_maturity: np.ndarray,
    is_put: np.ndarray,
) -> np.ndarray:
    """European option price under Black–Scholes.

    ``is_put`` selects put (1) versus call (0) pricing per sample, matching
    the PARSEC kernel's ``OptionType`` input.
    """
    spot = np.asarray(spot, dtype=float)
    strike = np.asarray(strike, dtype=float)
    rate = np.asarray(rate, dtype=float)
    volatility = np.asarray(volatility, dtype=float)
    time_to_maturity = np.asarray(time_to_maturity, dtype=float)
    is_put = np.asarray(is_put, dtype=float)

    sqrt_t = np.sqrt(time_to_maturity)
    d1 = (
        np.log(spot / strike) + (rate + 0.5 * volatility**2) * time_to_maturity
    ) / (volatility * sqrt_t)
    d2 = d1 - volatility * sqrt_t
    discount = strike * np.exp(-rate * time_to_maturity)
    call = spot * norm_cdf(d1) - discount * norm_cdf(d2)
    put = discount * norm_cdf(-d2) - spot * norm_cdf(-d1)
    return np.where(is_put > 0.5, put, call)


def generate_blackscholes(
    num_samples: int = 2000,
    seed: int | None = 0,
) -> Dataset:
    """Generate the option-pricing regression dataset.

    Inputs (6, matching the paper's 6-16-1 topology): spot price, strike
    price, risk-free rate, volatility, time to maturity, and option type —
    each min-max normalized to [0, 1].  The target is the option price
    normalized by the spot price (bounded to [0, 1] for the sigmoid output).
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    rng = np.random.default_rng(seed)
    spot = rng.uniform(20.0, 120.0, size=num_samples)
    # strike within +/-40% of spot keeps prices in an informative range
    strike = spot * rng.uniform(0.6, 1.4, size=num_samples)
    rate = rng.uniform(0.01, 0.1, size=num_samples)
    volatility = rng.uniform(0.1, 0.6, size=num_samples)
    time_to_maturity = rng.uniform(0.1, 2.0, size=num_samples)
    is_put = (rng.random(num_samples) < 0.5).astype(float)

    price = black_scholes_price(spot, strike, rate, volatility, time_to_maturity, is_put)

    inputs = np.stack(
        [
            (spot - 20.0) / 100.0,
            (strike / spot - 0.6) / 0.8,
            (rate - 0.01) / 0.09,
            (volatility - 0.1) / 0.5,
            (time_to_maturity - 0.1) / 1.9,
            is_put,
        ],
        axis=1,
    )
    targets = (price / spot).reshape(-1, 1)
    return Dataset(
        inputs=inputs,
        targets=np.clip(targets, 0.0, 1.0),
        name="bscholes",
        metadata={
            "substitute_for": "AxBench/PARSEC blackscholes (exact re-implementation)",
        },
    )
