"""Benchmark datasets: the paper's four applications (Table I).

``mnist`` and ``facedet`` are procedural substitutes with the same input
widths and topologies (no network access to the original databases);
``inversek2j`` and ``bscholes`` are exact re-implementations of the AxBench
kernels.
"""

from .blackscholes import black_scholes_price, generate_blackscholes, norm_cdf
from .digits import DIGIT_GLYPHS, IMAGE_SIZE, NUM_CLASSES, generate_digits
from .faces import PATCH_SIZE, generate_faces
from .inversek2j import (
    ARM_LENGTHS,
    forward_kinematics,
    generate_inversek2j,
    inverse_kinematics,
)
from .procedural import generate_lowrank, generate_teacher
from .registry import (
    BENCHMARKS,
    PROCEDURAL_FAMILIES,
    PROCEDURAL_PREFIX,
    BenchmarkSpec,
    ProceduralSpec,
    get_benchmark,
    list_benchmarks,
    register_benchmark,
)

__all__ = [
    "generate_digits",
    "DIGIT_GLYPHS",
    "IMAGE_SIZE",
    "NUM_CLASSES",
    "generate_faces",
    "PATCH_SIZE",
    "generate_inversek2j",
    "forward_kinematics",
    "inverse_kinematics",
    "ARM_LENGTHS",
    "generate_blackscholes",
    "black_scholes_price",
    "norm_cdf",
    "generate_teacher",
    "generate_lowrank",
    "BENCHMARKS",
    "PROCEDURAL_FAMILIES",
    "PROCEDURAL_PREFIX",
    "BenchmarkSpec",
    "ProceduralSpec",
    "get_benchmark",
    "list_benchmarks",
    "register_benchmark",
]
