"""Benchmark registry: the four application benchmarks of Table I.

Each :class:`BenchmarkSpec` bundles everything an experiment needs to train
and evaluate one of the paper's benchmarks: the dataset generator, the DNN
topology the paper uses, the loss, the activation configuration, the error
metric, and the train/test split ratio.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..nn.data import Dataset, train_test_split
from ..nn.metrics import classification_error, mean_squared_error
from ..nn.network import Network
from .blackscholes import generate_blackscholes
from .digits import generate_digits
from .faces import generate_faces
from .inversek2j import generate_inversek2j

__all__ = ["BenchmarkSpec", "BENCHMARKS", "get_benchmark", "list_benchmarks"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Description of one application benchmark."""

    name: str
    description: str
    topology: str
    loss: str
    hidden_activation: str
    output_activation: str
    error_metric: str  # "classification" or "mse"
    generator: Callable[..., Dataset]
    train_test_ratio: int
    default_samples: int
    #: nominal-voltage error reported by the paper (for EXPERIMENTS.md context)
    paper_nominal_error: float

    def generate(self, num_samples: int | None = None, seed: int | None = 0) -> Dataset:
        """Generate the benchmark dataset."""
        return self.generator(
            num_samples=num_samples or self.default_samples, seed=seed
        )

    def split(
        self, dataset: Dataset, seed: int | None = 0
    ) -> tuple[Dataset, Dataset]:
        """Train/test split using the paper's ratio for this benchmark."""
        return train_test_split(dataset, ratio=self.train_test_ratio, rng=seed)

    def build_network(self, seed: int | None = 0) -> Network:
        """Construct the paper's model topology for this benchmark."""
        return Network(
            self.topology,
            hidden_activation=self.hidden_activation,
            output_activation=self.output_activation,
            loss=self.loss,
            seed=seed,
        )

    def error(self, predictions: np.ndarray, test: Dataset) -> float:
        """Application error with the paper's metric for this benchmark."""
        if self.error_metric == "classification":
            if test.labels is None:
                raise ValueError("classification benchmarks need integer labels")
            return classification_error(predictions, test.labels)
        return mean_squared_error(predictions, test.targets)


BENCHMARKS: dict[str, BenchmarkSpec] = {
    "mnist": BenchmarkSpec(
        name="mnist",
        description="Digit recognition (procedural MNIST substitute)",
        topology="100-32-10",
        # FANN-style classifier: independent sigmoid outputs (one per class),
        # argmax readout — keeps every datapath value inside the fixed-point
        # range of the accelerator, unlike a softmax-logit head.
        loss="binary_cross_entropy",
        hidden_activation="sigmoid",
        output_activation="sigmoid",
        error_metric="classification",
        generator=generate_digits,
        train_test_ratio=7,
        default_samples=2000,
        paper_nominal_error=0.094,
    ),
    "facedet": BenchmarkSpec(
        name="facedet",
        description="Face detection (procedural CBCL substitute)",
        topology="400-8-1",
        loss="binary_cross_entropy",
        hidden_activation="sigmoid",
        output_activation="sigmoid",
        error_metric="classification",
        generator=generate_faces,
        train_test_ratio=7,
        default_samples=1600,
        paper_nominal_error=0.125,
    ),
    "inversek2j": BenchmarkSpec(
        name="inversek2j",
        description="2-joint inverse kinematics (AxBench)",
        topology="2-16-2",
        loss="mse",
        hidden_activation="sigmoid",
        output_activation="sigmoid",
        error_metric="mse",
        generator=generate_inversek2j,
        train_test_ratio=10,
        default_samples=2000,
        paper_nominal_error=0.032,
    ),
    "bscholes": BenchmarkSpec(
        name="bscholes",
        description="Option pricing (AxBench/PARSEC blackscholes)",
        topology="6-16-1",
        loss="mse",
        hidden_activation="sigmoid",
        output_activation="sigmoid",
        error_metric="mse",
        generator=generate_blackscholes,
        train_test_ratio=10,
        default_samples=2000,
        paper_nominal_error=0.021,
    ),
}


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by name."""
    key = str(name).lower()
    if key not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}")
    return BENCHMARKS[key]


def list_benchmarks() -> list[str]:
    """Names of all registered benchmarks, in the paper's Table I order."""
    return list(BENCHMARKS)
