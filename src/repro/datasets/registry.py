"""Benchmark catalog: the paper's Table I applications plus procedural specs.

Each :class:`BenchmarkSpec` bundles everything an experiment needs to train
and evaluate one workload: the dataset generator, the DNN topology, the loss,
the activation configuration, the error metric, and the train/test split
ratio.  The catalog has three sources:

* the four **paper benchmarks** of Table I (``mnist``, ``facedet``,
  ``inversek2j``, ``bscholes``), registered eagerly in :data:`BENCHMARKS`;
* **procedural specs** (:class:`ProceduralSpec`), resolved on demand from a
  parametric name grammar under the ``synth/`` prefix — e.g.
  ``synth/mlp-d8-w256`` is an MLP with 8 hidden layers of width 256.  Their
  datasets come from the seeded generators in
  :mod:`repro.datasets.procedural`;
* **caller-registered specs** via :func:`register_benchmark`.

Procedural name grammar
-----------------------
``synth/<family>-<token>...`` where each token is a letter followed by a
positive integer.  Families and tokens (defaults in parentheses):

=========  =====================================  =============================
family     tokens                                 topology
=========  =====================================  =============================
``mlp``    ``d`` depth*, ``w`` width*,            ``i-(w × d)-o`` deep stack
           ``i`` inputs (32), ``o`` outputs (8)
``wide``   ``f`` fan-in*, ``h`` hidden (16),      ``f-h-o`` wide fan-in
           ``o`` outputs (4)
``ae``     ``i`` width*, ``b`` bottleneck*        ``i-b-i`` autoencoder
=========  =====================================  =============================

(* = required.)  Every spec exposes :meth:`BenchmarkSpec.spec_key`, a full
content parameterization that :func:`repro.experiments.common.prepare_benchmark`
folds into its artifact-cache keys, so procedural workloads memoize exactly
like the paper ones.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..nn.data import Dataset, train_test_split
from ..nn.metrics import classification_error, mean_squared_error
from ..nn.network import Network, parse_topology
from .blackscholes import generate_blackscholes
from .digits import generate_digits
from .faces import generate_faces
from .inversek2j import generate_inversek2j
from .procedural import generate_lowrank, generate_teacher

__all__ = [
    "BenchmarkSpec",
    "ProceduralSpec",
    "BENCHMARKS",
    "PROCEDURAL_PREFIX",
    "PROCEDURAL_FAMILIES",
    "get_benchmark",
    "list_benchmarks",
    "register_benchmark",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Description of one application benchmark."""

    name: str
    description: str
    topology: str
    loss: str
    hidden_activation: str
    output_activation: str
    error_metric: str  # "classification" or "mse"
    generator: Callable[..., Dataset]
    train_test_ratio: int
    default_samples: int
    #: nominal-voltage error reported by the paper (NaN for workloads the
    #: paper does not evaluate, i.e. everything procedural)
    paper_nominal_error: float

    def generate(self, num_samples: int | None = None, seed: int | None = 0) -> Dataset:
        """Generate the benchmark dataset."""
        return self.generator(
            num_samples=num_samples or self.default_samples, seed=seed
        )

    def split(
        self, dataset: Dataset, seed: int | None = 0
    ) -> tuple[Dataset, Dataset]:
        """Train/test split using the paper's ratio for this benchmark."""
        return train_test_split(dataset, ratio=self.train_test_ratio, rng=seed)

    def build_network(self, seed: int | None = 0) -> Network:
        """Construct the benchmark's model topology."""
        return Network(
            self.topology,
            hidden_activation=self.hidden_activation,
            output_activation=self.output_activation,
            loss=self.loss,
            seed=seed,
        )

    def error(self, predictions: np.ndarray, test: Dataset) -> float:
        """Application error with the benchmark's metric."""
        if self.error_metric == "classification":
            if test.labels is None:
                raise ValueError("classification benchmarks need integer labels")
            return classification_error(predictions, test.labels)
        return mean_squared_error(predictions, test.targets)

    def spec_key(self) -> dict[str, Any]:
        """Full content parameterization of this spec (for artifact caching).

        Everything that changes the generated data or the model built from
        the spec must appear here: two specs with equal keys must be
        interchangeable, and any parameter change must change the key.
        """
        return {
            "name": self.name,
            "topology": self.topology,
            "loss": self.loss,
            "hidden_activation": self.hidden_activation,
            "output_activation": self.output_activation,
            "error_metric": self.error_metric,
            "generator": f"{self.generator.__module__}.{self.generator.__qualname__}",
            "train_test_ratio": int(self.train_test_ratio),
            "default_samples": int(self.default_samples),
        }


@dataclass(frozen=True)
class ProceduralSpec(BenchmarkSpec):
    """A parametric workload resolved from the ``synth/`` name grammar.

    ``generator_params`` is the sorted tuple of keyword arguments forwarded
    to the generator on top of ``num_samples``/``seed`` — it participates in
    :meth:`spec_key`, so two specs differing only in a generator parameter
    never share cached artifacts.
    """

    family: str = ""
    generator_params: tuple[tuple[str, Any], ...] = ()

    def generate(self, num_samples: int | None = None, seed: int | None = 0) -> Dataset:
        return self.generator(
            num_samples=num_samples or self.default_samples,
            seed=seed,
            name=self.name,
            **dict(self.generator_params),
        )

    def spec_key(self) -> dict[str, Any]:
        key = super().spec_key()
        key["family"] = self.family
        key["generator_params"] = self.generator_params
        return key


BENCHMARKS: dict[str, BenchmarkSpec] = {
    "mnist": BenchmarkSpec(
        name="mnist",
        description="Digit recognition (procedural MNIST substitute)",
        topology="100-32-10",
        # FANN-style classifier: independent sigmoid outputs (one per class),
        # argmax readout — keeps every datapath value inside the fixed-point
        # range of the accelerator, unlike a softmax-logit head.
        loss="binary_cross_entropy",
        hidden_activation="sigmoid",
        output_activation="sigmoid",
        error_metric="classification",
        generator=generate_digits,
        train_test_ratio=7,
        default_samples=2000,
        paper_nominal_error=0.094,
    ),
    "facedet": BenchmarkSpec(
        name="facedet",
        description="Face detection (procedural CBCL substitute)",
        topology="400-8-1",
        loss="binary_cross_entropy",
        hidden_activation="sigmoid",
        output_activation="sigmoid",
        error_metric="classification",
        generator=generate_faces,
        train_test_ratio=7,
        default_samples=1600,
        paper_nominal_error=0.125,
    ),
    "inversek2j": BenchmarkSpec(
        name="inversek2j",
        description="2-joint inverse kinematics (AxBench)",
        topology="2-16-2",
        loss="mse",
        hidden_activation="sigmoid",
        output_activation="sigmoid",
        error_metric="mse",
        generator=generate_inversek2j,
        train_test_ratio=10,
        default_samples=2000,
        paper_nominal_error=0.032,
    ),
    "bscholes": BenchmarkSpec(
        name="bscholes",
        description="Option pricing (AxBench/PARSEC blackscholes)",
        topology="6-16-1",
        loss="mse",
        hidden_activation="sigmoid",
        output_activation="sigmoid",
        error_metric="mse",
        generator=generate_blackscholes,
        train_test_ratio=10,
        default_samples=2000,
        paper_nominal_error=0.021,
    ),
}


# ------------------------------------------------------------- procedural

#: Names under this prefix resolve through the procedural grammar.
PROCEDURAL_PREFIX = "synth/"

#: family -> (required tokens, {token: default}) — the grammar table.
PROCEDURAL_FAMILIES: dict[str, tuple[tuple[str, ...], dict[str, int]]] = {
    "mlp": (("d", "w"), {"i": 32, "o": 8}),
    "wide": (("f",), {"h": 16, "o": 4}),
    "ae": (("i", "b"), {}),
}

#: Resolved procedural specs, memoized by canonical name.
_PROCEDURAL_CACHE: dict[str, ProceduralSpec] = {}


def _parse_procedural_tokens(name: str) -> tuple[str, dict[str, int]]:
    """Parse ``synth/<family>-<token>...`` into (family, token values)."""
    body = name[len(PROCEDURAL_PREFIX) :]
    parts = body.split("-")
    family = parts[0]
    if family not in PROCEDURAL_FAMILIES:
        raise KeyError(
            f"unknown procedural family {family!r} in {name!r}; "
            f"available: {sorted(PROCEDURAL_FAMILIES)}"
        )
    required, defaults = PROCEDURAL_FAMILIES[family]
    allowed = set(required) | set(defaults)
    values: dict[str, int] = dict(defaults)
    seen: set[str] = set()
    for token in parts[1:]:
        letter, digits = token[:1], token[1:]
        if letter not in allowed:
            raise ValueError(
                f"invalid token {token!r} in {name!r}; family {family!r} "
                f"accepts {sorted(allowed)}"
            )
        if letter in seen:
            raise ValueError(f"duplicate token {letter!r} in {name!r}")
        if not digits.isdigit() or int(digits) <= 0:
            raise ValueError(f"token {token!r} in {name!r} needs a positive integer")
        seen.add(letter)
        values[letter] = int(digits)
    missing = [letter for letter in required if letter not in values]
    if missing:
        raise ValueError(f"{name!r} is missing required token(s) {missing}")
    return family, values


def _build_procedural(name: str) -> ProceduralSpec:
    family, values = _parse_procedural_tokens(name)
    if family == "mlp":
        widths = (values["i"], *([values["w"]] * values["d"]), values["o"])
        description = f"Procedural deep MLP ({values['d']}x{values['w']} hidden)"
        generator = generate_teacher
        params = {"in_features": values["i"], "out_features": values["o"]}
    elif family == "wide":
        widths = (values["f"], values["h"], values["o"])
        description = f"Procedural wide fan-in MLP (fan-in {values['f']})"
        generator = generate_teacher
        params = {"in_features": values["f"], "out_features": values["o"]}
    else:  # ae
        if values["b"] > values["i"]:
            raise ValueError(f"{name!r}: bottleneck b cannot exceed width i")
        widths = (values["i"], values["b"], values["i"])
        description = f"Procedural autoencoder ({values['i']}-{values['b']}-{values['i']})"
        generator = generate_lowrank
        params = {"width": values["i"], "rank": min(values["b"], values["i"])}
    topology = "-".join(str(w) for w in parse_topology(widths))
    return ProceduralSpec(
        name=name,
        description=description,
        topology=topology,
        loss="mse",
        hidden_activation="sigmoid",
        output_activation="sigmoid",
        error_metric="mse",
        generator=generator,
        train_test_ratio=10,
        default_samples=512,
        paper_nominal_error=float("nan"),
        family=family,
        generator_params=tuple(sorted(params.items())),
    )


# ------------------------------------------------------------------ lookup


def register_benchmark(spec: BenchmarkSpec, overwrite: bool = False) -> None:
    """Add a spec to the catalog under ``spec.name`` (lower-cased)."""
    key = spec.name.lower()
    if not overwrite and key in BENCHMARKS:
        raise ValueError(f"benchmark {spec.name!r} is already registered")
    BENCHMARKS[key] = spec


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by name.

    Registered names resolve from :data:`BENCHMARKS`; ``synth/...`` names
    resolve through the procedural grammar (and are memoized, so repeated
    lookups return the same spec object).
    """
    key = str(name).lower()
    if key in BENCHMARKS:
        return BENCHMARKS[key]
    if key.startswith(PROCEDURAL_PREFIX):
        spec = _PROCEDURAL_CACHE.get(key)
        if spec is None:
            spec = _build_procedural(key)
            _PROCEDURAL_CACHE[key] = spec
        return spec
    raise KeyError(
        f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)} "
        f"plus procedural '{PROCEDURAL_PREFIX}' names (families: "
        f"{sorted(PROCEDURAL_FAMILIES)})"
    )


def list_benchmarks() -> list[str]:
    """Names of all registered benchmarks (paper order first).

    Procedural ``synth/`` workloads are resolved on demand and therefore do
    not appear here; see :data:`PROCEDURAL_FAMILIES` for the grammar.
    """
    return list(BENCHMARKS)
