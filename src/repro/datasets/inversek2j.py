"""Inverse-kinematics benchmark (AxBench ``inversek2j``).

The kernel computes the joint angles of a 2-link planar arm that place the
end effector at a requested (x, y) position — the approximate-computing
benchmark the paper takes from Esmaeilzadeh et al. (MICRO 2012) with a
2-16-2 model.  Unlike the image benchmarks, this one is reproduced exactly:
the data-generating function is the closed-form two-joint inverse-kinematics
solution.
"""

from __future__ import annotations

import numpy as np

from ..nn.data import Dataset

__all__ = ["generate_inversek2j", "forward_kinematics", "inverse_kinematics", "ARM_LENGTHS"]

#: Link lengths of the 2-joint arm (matching AxBench's 0.5 / 0.5 defaults).
ARM_LENGTHS = (0.5, 0.5)


def forward_kinematics(theta1: np.ndarray, theta2: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """End-effector (x, y) for joint angles ``theta1``, ``theta2``."""
    l1, l2 = ARM_LENGTHS
    theta1 = np.asarray(theta1, dtype=float)
    theta2 = np.asarray(theta2, dtype=float)
    x = l1 * np.cos(theta1) + l2 * np.cos(theta1 + theta2)
    y = l1 * np.sin(theta1) + l2 * np.sin(theta1 + theta2)
    return x, y


def inverse_kinematics(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form elbow-down inverse kinematics for the 2-link arm."""
    l1, l2 = ARM_LENGTHS
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    distance_sq = x**2 + y**2
    cos_theta2 = (distance_sq - l1**2 - l2**2) / (2.0 * l1 * l2)
    cos_theta2 = np.clip(cos_theta2, -1.0, 1.0)
    theta2 = np.arccos(cos_theta2)
    k1 = l1 + l2 * np.cos(theta2)
    k2 = l2 * np.sin(theta2)
    theta1 = np.arctan2(y, x) - np.arctan2(k2, k1)
    return theta1, theta2


def generate_inversek2j(
    num_samples: int = 2000,
    seed: int | None = 0,
) -> Dataset:
    """Generate the inverse-kinematics regression dataset.

    Joint angles are sampled uniformly (θ₁ ∈ [0, π/2], θ₂ ∈ [0, π/2], the
    AxBench input distribution), forward kinematics produces the (x, y)
    inputs, and the targets are the normalized joint angles recovered by the
    closed-form inverse solution.  Inputs and outputs are normalized to
    [0, 1] so the sigmoid-output 2-16-2 model of the paper applies directly.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    rng = np.random.default_rng(seed)
    theta1 = rng.uniform(0.0, np.pi / 2.0, size=num_samples)
    theta2 = rng.uniform(0.0, np.pi / 2.0, size=num_samples)
    x, y = forward_kinematics(theta1, theta2)
    solution_theta1, solution_theta2 = inverse_kinematics(x, y)

    # normalize inputs from the reachable workspace ([-1, 1] both axes) and
    # outputs from their angular ranges into [0, 1]
    inputs = np.stack([(x + 1.0) / 2.0, (y + 1.0) / 2.0], axis=1)
    targets = np.stack(
        [
            (solution_theta1 + np.pi / 2.0) / np.pi,
            solution_theta2 / np.pi,
        ],
        axis=1,
    )
    return Dataset(
        inputs=inputs,
        targets=targets,
        name="inversek2j",
        metadata={
            "substitute_for": "AxBench inversek2j (exact re-implementation)",
            "arm_lengths": ARM_LENGTHS,
        },
    )
