"""Procedural face-detection dataset (MIT CBCL substitute).

The paper's ``facedet`` benchmark classifies 20×20 grayscale patches from the
MIT CBCL face database with a 400-8-1 model.  The substitute generates
face-like patches (elliptical head region, darker eye and mouth blobs, random
illumination gradient and noise) and non-face patches (textured noise,
gradients, and random blob clutter), keeping the same input width, binary
output, and a nominal error in the low-teens of percent — comparable to the
12.5 % the paper reports.
"""

from __future__ import annotations

import numpy as np

from ..nn.data import Dataset

__all__ = ["generate_faces", "PATCH_SIZE"]

#: Patches are PATCH_SIZE × PATCH_SIZE pixels (400 inputs, as in the paper).
PATCH_SIZE = 20


def _coordinate_grid() -> tuple[np.ndarray, np.ndarray]:
    axis = np.arange(PATCH_SIZE)
    return np.meshgrid(axis, axis, indexing="ij")


def _render_face(rng: np.random.Generator, noise_level: float) -> np.ndarray:
    """A face-like patch: bright oval head, dark eyes and mouth."""
    rows, cols = _coordinate_grid()
    center_row = 10 + rng.uniform(-1.5, 1.5)
    center_col = 10 + rng.uniform(-1.5, 1.5)
    head_height = rng.uniform(7.0, 9.0)
    head_width = rng.uniform(5.5, 7.5)

    face_level = rng.uniform(0.55, 0.85)
    background = rng.uniform(0.2, 0.45)
    head = ((rows - center_row) / head_height) ** 2 + (
        (cols - center_col) / head_width
    ) ** 2
    image = np.where(head <= 1.0, face_level, background) + rng.uniform(-0.05, 0.05)

    def _blob(row: float, col: float, radius: float, depth: float) -> None:
        distance = (rows - row) ** 2 + (cols - col) ** 2
        image[distance <= radius**2] -= depth

    eye_offset_col = rng.uniform(2.0, 4.5)
    eye_row = center_row - rng.uniform(1.0, 3.0)
    eye_depth = rng.uniform(0.2, 0.5)
    _blob(eye_row, center_col - eye_offset_col, rng.uniform(0.8, 1.8), eye_depth)
    _blob(eye_row, center_col + eye_offset_col, rng.uniform(0.8, 1.8), eye_depth)
    mouth_row = center_row + rng.uniform(2.5, 5.0)
    _blob(mouth_row, center_col, rng.uniform(1.2, 2.4), rng.uniform(0.15, 0.4))

    # occasional occlusion block (hand / hair / shadow over part of the face)
    if rng.random() < 0.25:
        occlusion_row = rng.integers(0, PATCH_SIZE - 6)
        occlusion_col = rng.integers(0, PATCH_SIZE - 6)
        height, width = rng.integers(4, 9, size=2)
        image[
            occlusion_row : occlusion_row + height,
            occlusion_col : occlusion_col + width,
        ] = rng.uniform(0.2, 0.8)

    # illumination gradient + pixel noise
    gradient = rng.uniform(-0.2, 0.2) * (cols - 10) / 10.0
    image = image + gradient + rng.normal(0.0, noise_level, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def _render_nonface(rng: np.random.Generator, noise_level: float) -> np.ndarray:
    """A non-face patch: textures, gradients, clutter, and face-like confusers."""
    rows, cols = _coordinate_grid()
    kind = rng.integers(0, 4)
    if kind == 0:
        # smooth gradient background
        direction = rng.uniform(0, 2 * np.pi)
        image = 0.5 + 0.3 * (
            np.cos(direction) * (rows - 10) / 10.0 + np.sin(direction) * (cols - 10) / 10.0
        )
    elif kind == 1:
        # band-limited texture (sum of a few random sinusoids)
        image = np.full((PATCH_SIZE, PATCH_SIZE), 0.5)
        for _ in range(3):
            freq = rng.uniform(0.2, 0.9, size=2)
            phase = rng.uniform(0, 2 * np.pi)
            image += 0.15 * np.sin(freq[0] * rows + freq[1] * cols + phase)
    elif kind == 2:
        # random blob clutter
        image = np.full((PATCH_SIZE, PATCH_SIZE), rng.uniform(0.3, 0.7))
        for _ in range(rng.integers(2, 6)):
            row, col = rng.uniform(0, PATCH_SIZE, size=2)
            radius = rng.uniform(1.0, 4.0)
            sign = rng.choice([-1.0, 1.0])
            distance = (rows - row) ** 2 + (cols - col) ** 2
            image[distance <= radius**2] += sign * rng.uniform(0.2, 0.4)
    else:
        # face-like confuser: a bright oval with misplaced / missing features,
        # which keeps the task from being trivially separable by brightness
        center_row = rng.uniform(6.0, 14.0)
        center_col = rng.uniform(6.0, 14.0)
        head = ((rows - center_row) / rng.uniform(6.0, 9.0)) ** 2 + (
            (cols - center_col) / rng.uniform(5.0, 8.0)
        ) ** 2
        image = np.where(head <= 1.0, rng.uniform(0.55, 0.85), rng.uniform(0.2, 0.45))
        image = image + rng.uniform(-0.05, 0.05)
        for _ in range(rng.integers(1, 4)):
            row = rng.uniform(0, PATCH_SIZE)
            col = rng.uniform(0, PATCH_SIZE)
            distance = (rows - row) ** 2 + (cols - col) ** 2
            image[distance <= rng.uniform(0.8, 2.2) ** 2] -= rng.uniform(0.2, 0.5)
    image = image + rng.normal(0.0, noise_level, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def generate_faces(
    num_samples: int = 1600,
    seed: int | None = 0,
    noise_level: float = 0.15,
    face_fraction: float = 0.5,
) -> Dataset:
    """Generate the face/non-face patch dataset.

    ``face_fraction`` controls the class balance (0.5 by default).
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if not 0.0 < face_fraction < 1.0:
        raise ValueError("face_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    labels = (rng.random(num_samples) < face_fraction).astype(int)
    patches = np.stack(
        [
            (
                _render_face(rng, noise_level)
                if label
                else _render_nonface(rng, noise_level)
            ).reshape(-1)
            for label in labels
        ]
    )
    return Dataset(
        inputs=patches,
        targets=labels.reshape(-1, 1).astype(float),
        labels=labels,
        name="facedet",
        metadata={
            "substitute_for": "MIT CBCL face database",
            "patch_size": PATCH_SIZE,
        },
    )
