"""Seeded synthetic workload generators for the procedural benchmark catalog.

The paper evaluates SNNAC on four fixed applications; the procedural catalog
(:mod:`repro.datasets.registry`, ``synth/...`` names) adds parametric
workloads whose *shape* — input width, depth, fan-in, output width — is the
experimental variable, so geometry-scaling studies can co-vary the model with
the chip (PE count, bank capacity) instead of being pinned to Table I.

Two generator families cover the catalog:

* :func:`generate_teacher` — supervised regression against a fixed, seeded
  random *teacher* network.  The teacher is intentionally small and
  independent of the student topology: the task difficulty stays comparable
  while the student's shape (and therefore its SRAM footprint) sweeps across
  orders of magnitude.
* :func:`generate_lowrank` — reconstruction data for autoencoder shapes:
  inputs mix a low-dimensional latent through a fixed seeded dictionary, and
  the targets are the inputs themselves.

All values stay inside ``[0, 1]`` so the fixed-point datapath (and the
worst-case impact of a stuck bit) behaves like it does for the paper's
benchmarks.  Generation is a pure function of ``(parameters, seed)``: the
same call reproduces the same dataset bit-for-bit, which is what lets
:func:`repro.experiments.common.prepare_benchmark` memoize procedural
workloads content-addressed like the paper ones.
"""

from __future__ import annotations

import numpy as np

from ..nn.data import Dataset

__all__ = ["generate_teacher", "generate_lowrank"]


def _teacher_targets(
    inputs: np.ndarray,
    out_features: int,
    rng: np.random.Generator,
    teacher_widths: tuple[int, ...],
) -> np.ndarray:
    """Evaluate a fixed random tanh/sigmoid teacher network on ``inputs``.

    The teacher weights are drawn from ``rng`` (so they are part of the
    dataset seed) with 1/sqrt(fan_in) scaling; the sigmoid output head keeps
    every target in (0, 1).
    """
    activations = inputs
    widths = (inputs.shape[1], *teacher_widths, out_features)
    for index, (fan_in, fan_out) in enumerate(zip(widths[:-1], widths[1:])):
        weights = rng.normal(0.0, 1.0 / np.sqrt(fan_in), size=(fan_in, fan_out))
        bias = rng.normal(0.0, 0.1, size=fan_out)
        pre = activations @ weights + bias
        is_output = index == len(widths) - 2
        activations = 1.0 / (1.0 + np.exp(-pre)) if is_output else np.tanh(pre)
    return activations


def generate_teacher(
    num_samples: int = 512,
    seed: int | None = 0,
    in_features: int = 32,
    out_features: int = 8,
    teacher_widths: tuple[int, ...] = (16,),
    noise_level: float = 0.01,
    name: str = "synth/teacher",
) -> Dataset:
    """Seeded teacher-network regression dataset (values in [0, 1]).

    Parameters
    ----------
    num_samples:
        Number of rows.
    seed:
        Generator seed; the teacher weights and the inputs both derive from
        it, so a ``(parameters, seed)`` pair is fully reproducible.
    in_features / out_features:
        Input and target widths — these match the student topology the
        catalog pairs the dataset with.
    teacher_widths:
        Hidden widths of the teacher network (independent of the student).
    noise_level:
        Standard deviation of the additive label noise.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if in_features <= 0 or out_features <= 0:
        raise ValueError("in_features and out_features must be positive")
    rng = np.random.default_rng(seed)
    # the teacher is sampled first so that changing num_samples extends the
    # dataset without redefining the function being learned
    teacher_rng = np.random.default_rng(rng.integers(0, 2**63))
    inputs = rng.uniform(0.0, 1.0, size=(num_samples, in_features))
    targets = _teacher_targets(inputs, out_features, teacher_rng, tuple(teacher_widths))
    if noise_level > 0:
        targets = targets + rng.normal(0.0, noise_level, size=targets.shape)
    targets = np.clip(targets, 0.0, 1.0)
    return Dataset(
        inputs=inputs,
        targets=targets,
        name=name,
        metadata={
            "family": "teacher",
            "in_features": int(in_features),
            "out_features": int(out_features),
            "teacher_widths": tuple(int(w) for w in teacher_widths),
            "noise_level": float(noise_level),
        },
    )


def generate_lowrank(
    num_samples: int = 512,
    seed: int | None = 0,
    width: int = 64,
    rank: int = 8,
    noise_level: float = 0.01,
    name: str = "synth/lowrank",
) -> Dataset:
    """Low-rank reconstruction dataset for autoencoder shapes.

    Inputs are ``rank``-dimensional uniform latents mixed through a fixed
    seeded non-negative dictionary (columns normalized so values stay in
    [0, 1]); the targets are the inputs themselves, so an ``N-B-N``
    bottleneck model with ``B >= rank`` can in principle reconstruct
    perfectly up to the injected noise.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if width <= 0 or rank <= 0:
        raise ValueError("width and rank must be positive")
    if rank > width:
        raise ValueError("rank cannot exceed width")
    rng = np.random.default_rng(seed)
    dictionary = np.random.default_rng(rng.integers(0, 2**63)).uniform(
        0.0, 1.0, size=(rank, width)
    )
    dictionary /= dictionary.sum(axis=0, keepdims=True)
    latents = rng.uniform(0.0, 1.0, size=(num_samples, rank))
    inputs = latents @ dictionary
    if noise_level > 0:
        inputs = inputs + rng.normal(0.0, noise_level, size=inputs.shape)
    inputs = np.clip(inputs, 0.0, 1.0)
    return Dataset(
        inputs=inputs,
        targets=inputs.copy(),
        name=name,
        metadata={
            "family": "lowrank",
            "width": int(width),
            "rank": int(rank),
            "noise_level": float(noise_level),
        },
    )
