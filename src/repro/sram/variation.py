"""Environmental (PVT) variation models and the temperature chamber.

The paper's Fig. 12 experiment sweeps ambient temperature from −15 °C to
90 °C in 15 °C steps while the in-situ canary controller re-adjusts the SRAM
voltage.  :class:`EnvironmentalConditions` carries the ambient state that the
SRAM and energy models consume, :class:`ProcessCorner` captures global
process skew (a die-to-die shift of every cell's V_min,read), and
:class:`TemperatureChamber` generates the sweep schedule used by the
experiment driver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import calibration

__all__ = [
    "EnvironmentalConditions",
    "ProcessCorner",
    "TemperatureChamber",
    "TYPICAL_CORNER",
    "SLOW_CORNER",
    "FAST_CORNER",
]


@dataclass(frozen=True)
class EnvironmentalConditions:
    """Ambient operating conditions seen by the chip."""

    temperature: float = calibration.NOMINAL_TEMPERATURE
    #: static offset on the SRAM rail from supply-grid IR drop / noise, volts
    supply_noise: float = 0.0

    def with_temperature(self, temperature: float) -> "EnvironmentalConditions":
        return EnvironmentalConditions(
            temperature=float(temperature), supply_noise=self.supply_noise
        )


@dataclass(frozen=True)
class ProcessCorner:
    """Die-level process skew.

    ``vmin_shift`` moves every bit-cell's V_min,read by a constant
    amount (volts); positive values model a slow/weak corner that fails at
    higher voltages.  ``leakage_scale`` multiplies the leakage power of the
    energy model.
    """

    name: str = "TT"
    vmin_shift: float = 0.0
    leakage_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.leakage_scale <= 0:
            raise ValueError("leakage_scale must be positive")


TYPICAL_CORNER = ProcessCorner("TT", vmin_shift=0.0, leakage_scale=1.0)
SLOW_CORNER = ProcessCorner("SS", vmin_shift=+0.02, leakage_scale=0.7)
FAST_CORNER = ProcessCorner("FF", vmin_shift=-0.02, leakage_scale=1.6)


class TemperatureChamber:
    """Ambient-temperature schedule generator for the Fig. 12 experiment.

    The paper's procedure: initialize at the nominal temperature, sweep down
    to −15 °C, then sweep up from −15 °C to 90 °C in 15 °C steps, letting the
    chamber stabilize at each point.
    """

    def __init__(
        self,
        start: float = calibration.NOMINAL_TEMPERATURE,
        low: float = -15.0,
        high: float = 90.0,
        step: float = 15.0,
    ) -> None:
        if step <= 0:
            raise ValueError("step must be positive")
        if not low <= start <= high:
            raise ValueError("start temperature must lie within [low, high]")
        self.start = float(start)
        self.low = float(low)
        self.high = float(high)
        self.step = float(step)

    def schedule(self) -> np.ndarray:
        """Return the ordered sequence of stabilized temperature points."""
        down = np.arange(self.start, self.low - 1e-9, -self.step)
        up = np.arange(self.low, self.high + 1e-9, self.step)
        points = np.concatenate([down, up])
        # drop the duplicated low point where the down sweep meets the up sweep
        deduped = [points[0]]
        for value in points[1:]:
            if abs(value - deduped[-1]) > 1e-9:
                deduped.append(value)
        return np.asarray(deduped, dtype=float)

    def conditions(self) -> list[EnvironmentalConditions]:
        """The schedule expressed as :class:`EnvironmentalConditions`."""
        return [EnvironmentalConditions(temperature=t) for t in self.schedule()]
