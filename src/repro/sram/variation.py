"""Environmental (PVT) variation models, trajectories, and scenarios.

The paper's Fig. 12 experiment sweeps ambient temperature from −15 °C to
90 °C in 15 °C steps while the in-situ canary controller re-adjusts the SRAM
voltage.  :class:`EnvironmentalConditions` carries the ambient state that the
SRAM and energy models consume, :class:`ProcessCorner` captures global
process skew (a die-to-die shift of every cell's V_min,read), and
:class:`TemperatureChamber` generates the sweep schedule used by the
experiment driver.

:class:`EnvironmentTrajectory` generalizes the chamber to a timed sequence
of conditions with an optional aging/drift term, and
:class:`VariationScenario` bundles the full per-die story — spatial
correlation structure (:class:`CorrelationSpec`), process corner, and
trajectory — into one content-addressable object that the chip, flow cache
keys, and experiment drivers all consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import calibration

__all__ = [
    "EnvironmentalConditions",
    "ProcessCorner",
    "TemperatureChamber",
    "TrajectoryStep",
    "EnvironmentTrajectory",
    "CorrelationSpec",
    "VariationScenario",
    "TYPICAL_CORNER",
    "SLOW_CORNER",
    "FAST_CORNER",
]


@dataclass(frozen=True)
class EnvironmentalConditions:
    """Ambient operating conditions seen by the chip."""

    temperature: float = calibration.NOMINAL_TEMPERATURE
    #: static offset on the SRAM rail from supply-grid IR drop / noise, volts
    supply_noise: float = 0.0
    #: additive shift of every cell's V_min,read (volts) from aging / NBTI
    #: drift accumulated along a trajectory; positive values weaken cells
    vmin_shift: float = 0.0

    def with_temperature(self, temperature: float) -> "EnvironmentalConditions":
        return EnvironmentalConditions(
            temperature=float(temperature),
            supply_noise=self.supply_noise,
            vmin_shift=self.vmin_shift,
        )


@dataclass(frozen=True)
class ProcessCorner:
    """Die-level process skew.

    ``vmin_shift`` moves every bit-cell's V_min,read by a constant
    amount (volts); positive values model a slow/weak corner that fails at
    higher voltages.  ``leakage_scale`` multiplies the leakage power of the
    energy model.
    """

    name: str = "TT"
    vmin_shift: float = 0.0
    leakage_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.leakage_scale <= 0:
            raise ValueError("leakage_scale must be positive")


TYPICAL_CORNER = ProcessCorner("TT", vmin_shift=0.0, leakage_scale=1.0)
SLOW_CORNER = ProcessCorner("SS", vmin_shift=+0.02, leakage_scale=0.7)
FAST_CORNER = ProcessCorner("FF", vmin_shift=-0.02, leakage_scale=1.6)


class TemperatureChamber:
    """Ambient-temperature schedule generator for the Fig. 12 experiment.

    The paper's procedure: initialize at the nominal temperature, sweep down
    to −15 °C, then sweep up from −15 °C to 90 °C in 15 °C steps, letting the
    chamber stabilize at each point.
    """

    def __init__(
        self,
        start: float = calibration.NOMINAL_TEMPERATURE,
        low: float = -15.0,
        high: float = 90.0,
        step: float = 15.0,
    ) -> None:
        if step <= 0:
            raise ValueError("step must be positive")
        if not low <= start <= high:
            raise ValueError("start temperature must lie within [low, high]")
        self.start = float(start)
        self.low = float(low)
        self.high = float(high)
        self.step = float(step)

    def schedule(self) -> np.ndarray:
        """Return the ordered sequence of stabilized temperature points."""
        down = np.arange(self.start, self.low - 1e-9, -self.step)
        up = np.arange(self.low, self.high + 1e-9, self.step)
        points = np.concatenate([down, up])
        # drop the duplicated low point where the down sweep meets the up sweep
        deduped = [points[0]]
        for value in points[1:]:
            if abs(value - deduped[-1]) > 1e-9:
                deduped.append(value)
        return np.asarray(deduped, dtype=float)

    def conditions(self) -> list[EnvironmentalConditions]:
        """The schedule expressed as :class:`EnvironmentalConditions`."""
        return [EnvironmentalConditions(temperature=t) for t in self.schedule()]


@dataclass(frozen=True)
class TrajectoryStep:
    """One stabilized point along an :class:`EnvironmentTrajectory`."""

    time_hours: float
    conditions: EnvironmentalConditions


@dataclass(frozen=True)
class EnvironmentTrajectory:
    """A timed sequence of environmental conditions with optional aging.

    Generalizes :class:`TemperatureChamber` (a pure temperature walk at
    time zero) to arbitrary timed condition sequences.  The aging term
    models a slow monotone V_min,read drift (NBTI-style): the effective
    conditions at each step fold ``aging_vmin_shift_per_hour * time_hours``
    into the step's ``vmin_shift``.
    """

    steps: tuple[TrajectoryStep, ...]
    aging_vmin_shift_per_hour: float = 0.0

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a trajectory needs at least one step")
        times = [step.time_hours for step in self.steps]
        if any(t < 0 for t in times):
            raise ValueError("step times must be non-negative")
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("step times must be non-decreasing")

    @classmethod
    def from_chamber(
        cls,
        chamber: TemperatureChamber,
        dwell_hours: float = 1.0,
        aging_vmin_shift_per_hour: float = 0.0,
        base: EnvironmentalConditions | None = None,
    ) -> "EnvironmentTrajectory":
        """Lift a chamber schedule into a trajectory (one dwell per point)."""
        if dwell_hours < 0:
            raise ValueError("dwell_hours must be non-negative")
        base = base if base is not None else EnvironmentalConditions()
        steps = tuple(
            TrajectoryStep(
                time_hours=index * float(dwell_hours),
                conditions=base.with_temperature(temperature),
            )
            for index, temperature in enumerate(chamber.schedule())
        )
        return cls(steps=steps, aging_vmin_shift_per_hour=float(aging_vmin_shift_per_hour))

    def conditions(self) -> list[EnvironmentalConditions]:
        """Effective conditions at each step, with aging drift folded in."""
        result = []
        for step in self.steps:
            drift = self.aging_vmin_shift_per_hour * step.time_hours
            conditions = step.conditions
            if drift:
                conditions = EnvironmentalConditions(
                    temperature=conditions.temperature,
                    supply_noise=conditions.supply_noise,
                    vmin_shift=conditions.vmin_shift + drift,
                )
            result.append(conditions)
        return result

    def spec_key(self) -> dict:
        """Content key for cache digests."""
        return {
            "steps": tuple(
                (
                    float(step.time_hours),
                    float(step.conditions.temperature),
                    float(step.conditions.supply_noise),
                    float(step.conditions.vmin_shift),
                )
                for step in self.steps
            ),
            "aging_vmin_shift_per_hour": float(self.aging_vmin_shift_per_hour),
        }


@dataclass(frozen=True)
class CorrelationSpec:
    """Spatial correlation structure of bit-cell V_min,read within a bank.

    Each strength is the fraction of the per-cell variance carried by a
    shared Gaussian component (wordline-driver rows, sense-amp column
    groups, die regions); the remainder ``1 - row - column_group - region``
    stays i.i.d. per cell, so the marginal distribution is preserved
    exactly regardless of the split.
    """

    row: float = 0.0
    column_group: float = 0.0
    region: float = 0.0
    column_group_size: int = 4
    num_regions: int = 4

    def __post_init__(self) -> None:
        for name in ("row", "column_group", "region"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} strength must be in [0, 1)")
        if self.row + self.column_group + self.region >= 1.0:
            raise ValueError("correlation strengths must sum to less than 1")
        if self.column_group_size <= 0:
            raise ValueError("column_group_size must be positive")
        if self.num_regions <= 0:
            raise ValueError("num_regions must be positive")

    @property
    def is_iid(self) -> bool:
        return self.row == 0.0 and self.column_group == 0.0 and self.region == 0.0

    @classmethod
    def from_shape(cls, shape: str, strength: float = 0.0, **kwargs) -> "CorrelationSpec":
        """Named correlation shapes used by the scenario sweep driver.

        ``iid`` ignores ``strength``; ``row``/``column``/``region`` put all
        of ``strength`` on one component; ``mixed`` splits it 1/2 row,
        1/4 column group, 1/4 region.
        """
        if shape == "iid":
            return cls(**kwargs)
        if not 0.0 <= strength < 1.0:
            raise ValueError("strength must be in [0, 1)")
        if shape == "row":
            return cls(row=strength, **kwargs)
        if shape == "column":
            return cls(column_group=strength, **kwargs)
        if shape == "region":
            return cls(region=strength, **kwargs)
        if shape == "mixed":
            return cls(
                row=strength / 2.0,
                column_group=strength / 4.0,
                region=strength / 4.0,
                **kwargs,
            )
        raise ValueError(f"unknown correlation shape: {shape!r}")

    @property
    def total(self) -> float:
        return self.row + self.column_group + self.region

    def spec_key(self) -> dict:
        return {
            "row": float(self.row),
            "column_group": float(self.column_group),
            "region": float(self.region),
            "column_group_size": int(self.column_group_size),
            "num_regions": int(self.num_regions),
        }


@dataclass(frozen=True)
class VariationScenario:
    """A first-class, content-parameterized per-die variation story.

    Bundles the spatial correlation structure, the process corner, and an
    optional environment trajectory.  ``digest()`` is stable across
    processes and folds into fault-map / profile cache keys so i.i.d. and
    correlated samples can never collide in the :class:`ArtifactCache`.
    """

    name: str = "iid-tt"
    correlation: CorrelationSpec = field(default_factory=CorrelationSpec)
    corner: ProcessCorner = TYPICAL_CORNER
    trajectory: EnvironmentTrajectory | None = None

    def variation_model(self, base=None):
        """Build the bit-cell model realizing this scenario's correlation.

        ``base`` supplies the marginal distribution (defaults to the
        calibrated :class:`~repro.sram.bitcell.EmpiricalVminModel`); an
        i.i.d. spec returns ``base`` itself so the zero-correlation path is
        bit-identical to the legacy models.
        """
        from .bitcell import CorrelatedVminModel, EmpiricalVminModel

        if base is None:
            base = EmpiricalVminModel()
        if self.correlation.is_iid:
            return base
        return CorrelatedVminModel(
            base=base,
            row=self.correlation.row,
            column_group=self.correlation.column_group,
            region=self.correlation.region,
            column_group_size=self.correlation.column_group_size,
            num_regions=self.correlation.num_regions,
        )

    def spec_key(self) -> dict:
        return {
            "name": str(self.name),
            "correlation": self.correlation.spec_key(),
            "corner": {
                "name": str(self.corner.name),
                "vmin_shift": float(self.corner.vmin_shift),
                "leakage_scale": float(self.corner.leakage_scale),
            },
            "trajectory": (
                None if self.trajectory is None else self.trajectory.spec_key()
            ),
        }

    def digest(self) -> str:
        from repro.experiments.cache import cache_digest

        return cache_digest(self.spec_key())
