"""Calibration constants for the SRAM failure model.

The paper characterizes its compiled weight SRAMs (65 nm GP, rated 0.9 V) as:

* first read failures appear at ~0.53 V at room temperature (Fig. 9a),
* essentially all reads fail at ~0.40 V (Fig. 9a),
* the energy-optimal SRAM voltage of 0.50 V comes with a "28 % SRAM bit-cell
  failure rate" (Section V-B), and
* the memory-adaptive models remain usable down to 0.46 V (Table I).

Those four statements cannot all be satisfied by a single bit-level failure
probability curve (a 28 % *bit* failure rate at 0.50 V would imply an almost
fully-failed array at 0.46 V, which would make the reported 15.6 % adaptive
MNIST error impossible).  We therefore interpret the 28 % figure as the
fraction of SRAM *words* containing at least one failed bit — with 16-bit
words this corresponds to a ~2–4 % bit-level rate — and calibrate the
bit-level V_min,read distribution so that:

* bit failures begin around 0.53–0.54 V,
* the bit-level rate is ~2 % at the 0.50 V energy-optimal point (which makes
  the *word-level* incidence with 16-bit words ≈ 28 %, matching the paper's
  figure),
* a few percent of bit-cells fail by 0.46 V (the voltage where the paper's
  application error "increases significantly" while its memory-adaptive
  models remain usable), and
* nearly all bit-cells (hence every word) fail by 0.40–0.42 V.

This preserves every behaviour the evaluation depends on (smooth error/energy
trade-off, naive collapse right after the point of first failure, adaptive
models usable down to 0.46 V) while remaining physically monotone.
"""

from __future__ import annotations

__all__ = [
    "NOMINAL_VOLTAGE",
    "VMIN_READ_MEAN",
    "VMIN_READ_SIGMA",
    "TEMPERATURE_COEFFICIENT",
    "NOMINAL_TEMPERATURE",
    "FIRST_FAILURE_VOLTAGE",
    "ALL_FAIL_VOLTAGE",
    "ENERGY_OPTIMAL_SRAM_VOLTAGE",
    "FIG9A_ANCHORS",
]

#: SRAM rated (nominal) supply voltage, volts.
NOMINAL_VOLTAGE = 0.9

#: Mean of the per-bit-cell read-stability failure voltage, volts.
VMIN_READ_MEAN = 0.46

#: Standard deviation of the per-bit-cell failure voltage, volts.
VMIN_READ_SIGMA = 0.022

#: Shift of V_min,read per degree Celsius (volts / °C).  The experiments run
#: below the temperature-inversion point of the 65 nm process, so higher
#: temperature *lowers* the required SRAM voltage (Fig. 12's inverse
#: relationship); the coefficient is therefore negative.
TEMPERATURE_COEFFICIENT = -0.25e-3

#: Reference temperature for the calibration above, °C.
NOMINAL_TEMPERATURE = 25.0

#: Voltage at which the first bit failures appear (paper, Fig. 9a).
FIRST_FAILURE_VOLTAGE = 0.53

#: Voltage at which essentially every read fails (paper, Fig. 9a).
ALL_FAIL_VOLTAGE = 0.40

#: SRAM voltage at the minimum-energy point (paper, Section V-B).
ENERGY_OPTIMAL_SRAM_VOLTAGE = 0.50

#: (voltage, bit-level read-failure rate) anchor points approximating the
#: shape of the measured curve in Fig. 9a under the word-level reading of the
#: 28 % figure discussed above.  Used by the empirical distribution model and
#: by the Fig. 9a regeneration benchmark.
FIG9A_ANCHORS: tuple[tuple[float, float], ...] = (
    (0.40, 0.97),
    (0.42, 0.60),
    (0.44, 0.20),
    (0.46, 0.06),
    (0.48, 0.035),
    (0.50, 0.0215),
    (0.51, 0.010),
    (0.52, 1.2e-3),
    (0.53, 1.5e-4),
    (0.54, 2.0e-5),
)
