"""Vectorized word↔bit-matrix conversions shared across the fault pipeline.

Every subsystem that touches SRAM contents needs the same two conversions:
expanding ``uint64`` words into a dense ``(..., word_bits)`` bit matrix (LSB
at index 0) and packing such a matrix back into words.  The behavioural SRAM
model, the profiler, the fault-map core, and the injection-mask builders all
share these helpers so the bit layout is defined exactly once.
"""

from __future__ import annotations

import numpy as np

__all__ = ["unpack_words", "pack_bits", "popcount"]


def unpack_words(words: np.ndarray, word_bits: int) -> np.ndarray:
    """Expand words into a ``(..., word_bits)`` uint8 bit matrix (LSB first)."""
    shifts = np.arange(word_bits, dtype=np.uint64)
    words = np.asarray(words, dtype=np.uint64)
    return ((words[..., None] >> shifts) & np.uint64(1)).astype(np.uint8)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(..., word_bits)`` bit matrix into uint64 words (LSB first)."""
    bits = np.asarray(bits)
    word_bits = bits.shape[-1]
    shifts = np.arange(word_bits, dtype=np.uint64)
    return np.sum(bits.astype(np.uint64) << shifts, axis=-1, dtype=np.uint64)


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def popcount(a: np.ndarray) -> int:
        """Total number of set bits across an unsigned integer array."""
        return int(np.bitwise_count(np.asarray(a)).sum())

else:  # pragma: no cover - exercised only on numpy < 2.0

    def popcount(a: np.ndarray) -> int:
        """Total number of set bits across an unsigned integer array."""
        a = np.ascontiguousarray(np.asarray(a, dtype=np.uint64))
        return int(np.unpackbits(a.view(np.uint8)).sum())
