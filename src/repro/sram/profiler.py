"""Post-silicon SRAM profiling.

The paper's compile-time profiling step performs a read-after-write and a
read-after-read on every SRAM address at the target operating voltage, and
records the word address, bit index, and error polarity of every failing
bit-cell (Section III-A).  :class:`SramProfiler` reproduces that procedure on
the behavioural SRAM model: it is intentionally written against the *public
access interface* of :class:`~repro.sram.array.SramBank` (write/read only)
rather than the model's ground-truth state, so the profiling flow is the same
one that would run against real hardware through a debug interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import calibration
from .array import SramBank, WeightMemorySystem
from .bitops import unpack_words
from .fault_map import FaultMap

__all__ = ["ProfileReport", "SramProfiler"]


@dataclass
class ProfileReport:
    """Result of profiling one SRAM bank at one operating point."""

    bank_name: str
    voltage: float
    temperature: float
    fault_map: FaultMap
    #: number of bit errors seen on the read-after-write pass
    read_after_write_errors: int = 0
    #: number of bit errors seen on the read-after-read pass
    read_after_read_errors: int = 0
    #: per-pattern error counts, keyed by pattern name
    pattern_errors: dict = field(default_factory=dict)

    @property
    def fault_rate(self) -> float:
        return self.fault_map.fault_rate


class SramProfiler:
    """Profile read-stability failures of weight SRAM banks.

    Parameters
    ----------
    test_patterns:
        Data backgrounds written before reading.  The defaults (all-zeros and
        all-ones) expose every stuck cell regardless of its preferred state:
        a cell preferring 1 only corrupts data when a 0 is stored in it, and
        vice versa.
    restore_contents:
        When True (default), the profiler saves the bank's pre-profiling
        contents and rewrites them afterwards, so profiling does not clobber
        deployed weights.
    """

    def __init__(
        self,
        test_patterns: dict[str, int] | None = None,
        restore_contents: bool = True,
    ) -> None:
        self.test_patterns = dict(test_patterns) if test_patterns else {}
        self.restore_contents = bool(restore_contents)

    def patterns_for(self, bank: SramBank) -> dict[str, int]:
        """The data backgrounds this profiler writes into ``bank``.

        Public API: fault-map cache keys
        (:meth:`repro.matic.flow.MaticFlow.profile_chip`) fold the resolved
        patterns in through this method, so a subclass that derives its
        backgrounds differently (e.g. geometry-dependent checkerboards) keys
        its artifacts correctly by overriding it — rather than silently
        sharing cache entries because a private helper was bypassed.
        Configured patterns are masked to the bank's word length; without
        configuration the defaults are all-zeros and all-ones, which together
        expose every stuck cell regardless of its preferred state.
        """
        return self._patterns_for(bank)

    def _patterns_for(self, bank: SramBank) -> dict[str, int]:
        """Deprecated pre-public spelling of :meth:`patterns_for`.

        Holds the default derivation so legacy subclasses that override it
        (including ones that call ``super()._patterns_for``) keep driving
        both profiling and cache keys through the public method's
        delegation.  New code should override :meth:`patterns_for`.
        """
        if self.test_patterns:
            return {
                name: value & bank.word_mask for name, value in self.test_patterns.items()
            }
        return {"zeros": 0, "ones": bank.word_mask}

    def describe(self) -> dict:
        """Content description of the measurement procedure, for cache keys.

        Subclasses that parameterize their procedure (extra read passes,
        different recording rules, ...) MUST extend this with every attribute
        that can change the profiled map, or differently-configured instances
        will share memoized artifacts.
        """
        return {
            "class": f"{type(self).__module__}.{type(self).__qualname__}",
            "test_patterns": {
                str(name): int(value) for name, value in self.test_patterns.items()
            },
            "restore_contents": bool(self.restore_contents),
        }

    # ------------------------------------------------------------------

    def profile_bank(
        self,
        bank: SramBank,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> ProfileReport:
        """Run the read-after-write / read-after-read procedure on one bank."""
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        saved = bank.stored_words() if self.restore_contents else None
        addresses = np.arange(bank.num_words)
        stuck = np.zeros((bank.num_words, bank.word_bits), dtype=bool)
        stuck_values = np.zeros((bank.num_words, bank.word_bits), dtype=np.uint8)
        raw_errors = 0
        rar_errors = 0
        pattern_errors: dict[str, int] = {}

        for pattern_name, pattern in self.patterns_for(bank).items():
            expected = np.full(bank.num_words, pattern, dtype=np.uint64)
            # Write the background at nominal voltage, then read twice at the
            # target voltage: the first read exposes read-disturb flips
            # (read-after-write), the second confirms the flipped cells stay
            # stable at their preferred state (read-after-read).
            bank.write(addresses, expected)
            first_read = bank.read(addresses, voltage=voltage, temperature=temperature)
            second_read = bank.read(addresses, voltage=voltage, temperature=temperature)

            first_diff = self._bit_errors(expected, first_read, bank.word_bits)
            second_diff = self._bit_errors(expected, second_read, bank.word_bits)
            raw_errors += int(first_diff.sum())
            rar_errors += int(second_diff.sum())
            pattern_errors[pattern_name] = int(second_diff.sum())

            # Record every erroneous bit with the polarity it reads as.  Using
            # the second read means only stable (trainable-around) failures
            # enter the map, matching the paper's observation that disturbed
            # cells provide stable read outputs.  Later patterns override
            # earlier ones, matching the per-fault insertion order semantics.
            observed_bits = self._words_to_bits(second_read, bank.word_bits)
            np.copyto(stuck_values, observed_bits, where=second_diff)
            stuck |= second_diff

        fault_map = FaultMap.from_arrays(stuck, stuck_values)
        if saved is not None:
            bank.write(addresses, saved)

        return ProfileReport(
            bank_name=bank.name,
            voltage=float(voltage),
            temperature=float(temperature),
            fault_map=fault_map,
            read_after_write_errors=raw_errors,
            read_after_read_errors=rar_errors,
            pattern_errors=pattern_errors,
        )

    def profile_bank_sweep(
        self,
        bank: SramBank,
        voltages,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> list[ProfileReport]:
        """Profile one bank at every voltage of an axis in a single pass.

        A cell corrupts a read at voltage ``v`` iff its effective
        V_min,read exceeds ``v``, and the read-after-read procedure records
        it iff at least one test pattern stores the opposite of its
        preferred state in that cell (the second read always returns the
        preferred state).  Both facts are voltage-independent except for the
        single threshold comparison, so the whole axis reduces to one
        vectorized comparison of the bank's effective V_min population
        against the voltage vector plus a per-pattern detectability mask —
        no writes, no reads, no restore round trips.

        The derivation is asserted bit-identical to per-voltage
        :meth:`profile_bank` by the equivalence oracle in
        ``tests/test_adaptive_sweep.py`` and ``benchmarks/bench_adaptive.py``.
        It is only valid for *this class's* measurement procedure under
        ``restore_contents=True``: a subclass that overrides
        :meth:`profile_bank` (different procedure) or a profiler configured
        with ``restore_contents=False`` (profiling side effects are part of
        the contract) falls back to the measured per-voltage loop, whose
        behaviour is definitionally correct.

        Returns one :class:`ProfileReport` per entry of ``voltages``, in
        input order.
        """
        voltage_axis = [float(v) for v in voltages]
        for v in voltage_axis:
            if v <= 0:
                raise ValueError("voltage must be positive")
        if (
            type(self).profile_bank is not SramProfiler.profile_bank
            or not self.restore_contents
        ):
            return [self.profile_bank(bank, v, temperature) for v in voltage_axis]

        vmin = bank.effective_vmin(temperature)
        preferred = np.asarray(bank.cells.preferred_state, dtype=np.uint8)
        # which cells each pattern can expose: the background bit must differ
        # from the preferred state the cell flips to
        pattern_exposes = {
            name: self._words_to_bits(
                np.full(bank.num_words, pattern, dtype=np.uint64), bank.word_bits
            )
            != preferred
            for name, pattern in self.patterns_for(bank).items()
        }
        detectable = np.zeros((bank.num_words, bank.word_bits), dtype=bool)
        for exposes in pattern_exposes.values():
            detectable |= exposes

        reports = []
        for v in voltage_axis:
            disturbed = vmin > v
            pattern_errors = {
                name: int(np.count_nonzero(disturbed & exposes))
                for name, exposes in pattern_exposes.items()
            }
            # the first read flips disturbed cells to their preferred state in
            # storage and the second confirms them there, so both passes see
            # exactly the pattern-exposed disturbed cells
            errors = sum(pattern_errors.values())
            reports.append(
                ProfileReport(
                    bank_name=bank.name,
                    voltage=v,
                    temperature=float(temperature),
                    fault_map=FaultMap.from_arrays(disturbed & detectable, preferred),
                    read_after_write_errors=errors,
                    read_after_read_errors=errors,
                    pattern_errors=pattern_errors,
                )
            )
        return reports

    def profile_memory_system(
        self,
        memory: WeightMemorySystem,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> list[ProfileReport]:
        """Profile every weight bank of an accelerator memory system."""
        return [self.profile_bank(bank, voltage, temperature) for bank in memory]

    def failure_rate_curve(
        self,
        bank: SramBank,
        voltages: np.ndarray,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> np.ndarray:
        """Measured bit-level failure rate at each voltage (Fig. 9a's curve)."""
        voltages = np.asarray(voltages, dtype=float)
        rates = np.empty_like(voltages)
        for index, voltage in enumerate(voltages):
            report = self.profile_bank(bank, float(voltage), temperature)
            rates[index] = report.fault_rate
        return rates

    # ------------------------------------------------------------ helpers

    @staticmethod
    def _words_to_bits(words: np.ndarray, word_bits: int) -> np.ndarray:
        return unpack_words(words, word_bits)

    @classmethod
    def _bit_errors(
        cls, expected: np.ndarray, observed: np.ndarray, word_bits: int
    ) -> np.ndarray:
        return cls._words_to_bits(expected, word_bits) != cls._words_to_bits(
            observed, word_bits
        )
