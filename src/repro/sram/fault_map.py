"""Fault maps: the profiled description of SRAM read-stability failures.

A fault map records, for one SRAM bank, every bit-cell that fails reads at a
given operating point: its word address, bit index, and *polarity* (the value
the cell is stuck at — its preferred state).  The map is the single artifact
shared between:

* the memory-adaptive trainer, which converts it to AND/OR injection masks
  (Fig. 4 of the paper),
* the SRAM array model, which uses it to corrupt reads, and
* canary selection, which needs to know which cells are marginal.

Representation
--------------
The map is array-native: its core state is a dense boolean *stuck* matrix of
shape ``(num_words, word_bits)`` plus a matching *stuck-value* matrix, and the
per-word ``uint64`` AND/OR injection masks are materialized lazily from those
matrices (one vectorized bit-pack) and cached until the map is next mutated.
:class:`BitFault` records and the list-returning queries are thin views built
on demand; no per-fault Python state is kept.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

import numpy as np

from .bitops import pack_bits

__all__ = ["BitFault", "FaultMap", "masks_from_arrays"]


def masks_from_arrays(
    stuck: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Word-level ``(and_mask, or_mask)`` uint64 arrays from dense bit matrices.

    ``stuck`` is a boolean ``(num_words, word_bits)`` matrix of failing cells
    and ``values`` holds each cell's stuck state; entries of non-stuck cells
    are ignored.  Applying ``(word & and_mask) | or_mask`` reproduces exactly
    the corruption those cells inflict (bits stuck at 0 are cleared by the
    AND mask, bits stuck at 1 are set by the OR mask).  This is the single
    derivation shared by :meth:`FaultMap.masks` and the SRAM array model's
    operating-point-resident read path
    (:meth:`repro.sram.array.SramBank.corruption_masks`), so the two can
    never disagree on the mask semantics.
    """
    stuck = np.asarray(stuck, dtype=bool)
    values = np.asarray(values)
    if stuck.ndim != 2 or stuck.shape != values.shape:
        raise ValueError("stuck and values must be equal 2-D shapes")
    num_words, word_bits = stuck.shape
    if word_bits > 64:
        raise ValueError("word_bits must be at most 64")
    full = np.uint64((1 << word_bits) - 1)
    clear_bits = pack_bits(stuck & (values == 0))
    set_bits = pack_bits(stuck & (values != 0))
    and_masks = np.full(num_words, full, dtype=np.uint64) ^ clear_bits
    return and_masks, set_bits


@dataclass(frozen=True)
class BitFault:
    """A single stuck bit-cell.

    Attributes
    ----------
    address:
        Word address within the SRAM bank.
    bit:
        Bit index within the word; 0 is the least-significant bit.
    stuck_value:
        The value the cell reads as once disturbed (its preferred state).
    """

    address: int
    bit: int
    stuck_value: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.bit < 0:
            raise ValueError("bit index must be non-negative")
        if self.stuck_value not in (0, 1):
            raise ValueError("stuck_value must be 0 or 1")


class FaultMap:
    """The set of stuck bit-cells of one SRAM bank at one operating point.

    Parameters
    ----------
    num_words:
        Number of words in the bank.
    word_bits:
        Word length in bits.
    faults:
        Iterable of :class:`BitFault`; later entries for the same (address,
        bit) override earlier ones.
    """

    def __init__(
        self,
        num_words: int,
        word_bits: int,
        faults: list[BitFault] | None = None,
    ) -> None:
        if num_words <= 0 or word_bits <= 0:
            raise ValueError("num_words and word_bits must be positive")
        if word_bits > 64:
            raise ValueError("word_bits must be at most 64")
        self.num_words = int(num_words)
        self.word_bits = int(word_bits)
        self._stuck = np.zeros((self.num_words, self.word_bits), dtype=bool)
        self._values = np.zeros((self.num_words, self.word_bits), dtype=np.uint8)
        self._invalidate()
        for fault in faults or []:
            self.add(fault)

    def _invalidate(self) -> None:
        """Drop every lazily materialized view after a mutation."""
        self._masks_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._num_faults_cache: int | None = None
        self._faulty_addresses_cache: np.ndarray | None = None

    # --------------------------------------------------------------- edit

    def add(self, fault: BitFault) -> None:
        """Add (or overwrite) a stuck bit."""
        if fault.address >= self.num_words:
            raise ValueError(
                f"address {fault.address} out of range (num_words={self.num_words})"
            )
        if fault.bit >= self.word_bits:
            raise ValueError(
                f"bit {fault.bit} out of range (word_bits={self.word_bits})"
            )
        self._stuck[fault.address, fault.bit] = True
        self._values[fault.address, fault.bit] = fault.stuck_value
        self._invalidate()

    def merge(self, other: "FaultMap") -> "FaultMap":
        """Union of two fault maps over the same geometry (other wins ties)."""
        if (other.num_words, other.word_bits) != (self.num_words, self.word_bits):
            raise ValueError("fault maps cover different SRAM geometries")
        merged = FaultMap(self.num_words, self.word_bits)
        merged._stuck = self._stuck | other._stuck
        merged._values = np.where(other._stuck, other._values, self._values)
        return merged

    # ------------------------------------------------------------ queries

    @property
    def stuck_mask(self) -> np.ndarray:
        """Dense ``(num_words, word_bits)`` boolean matrix of stuck cells."""
        return self._stuck.copy()

    @property
    def stuck_values(self) -> np.ndarray:
        """Dense stuck-value matrix (entries of non-stuck cells are 0)."""
        return np.where(self._stuck, self._values, 0).astype(np.uint8)

    @property
    def faults(self) -> list[BitFault]:
        """All stuck bits, sorted by (address, bit)."""
        addresses, bits = np.nonzero(self._stuck)  # row-major: (address, bit) order
        values = self._values[addresses, bits]
        return [
            BitFault(int(address), int(bit), int(value))
            for address, bit, value in zip(addresses, bits, values)
        ]

    @property
    def num_faults(self) -> int:
        if self._num_faults_cache is None:
            self._num_faults_cache = int(np.count_nonzero(self._stuck))
        return self._num_faults_cache

    @property
    def fault_rate(self) -> float:
        """Fraction of bit-cells in the bank that are stuck."""
        return self.num_faults / float(self.num_words * self.word_bits)

    @property
    def faulty_addresses(self) -> np.ndarray:
        """Sorted unique word addresses containing at least one stuck bit."""
        if self._faulty_addresses_cache is None:
            self._faulty_addresses_cache = np.flatnonzero(self._stuck.any(axis=1))
        return self._faulty_addresses_cache.copy()

    def faults_at(self, address: int) -> list[BitFault]:
        """Stuck bits within one word (O(word_bits), not O(num_faults))."""
        if not 0 <= address < self.num_words:
            return []
        bits = np.flatnonzero(self._stuck[address])
        return [
            BitFault(int(address), int(bit), int(self._values[address, bit]))
            for bit in bits
        ]

    def __contains__(self, key: tuple[int, int]) -> bool:
        try:
            address, bit = key
            address = operator.index(address)  # ints only: 0.7 must not round to 0
            bit = operator.index(bit)
        except (TypeError, ValueError):
            # malformed keys test False; intentionally stricter than the old
            # dict core for floats ((0.0, 0) matched (0, 0) by hash-equality
            # there) — a non-index key never answers True here
            return False
        if not (0 <= address < self.num_words and 0 <= bit < self.word_bits):
            return False
        return bool(self._stuck[address, bit])

    def __len__(self) -> int:
        return self.num_faults

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultMap):
            return NotImplemented
        return (
            self.num_words == other.num_words
            and self.word_bits == other.word_bits
            and bool(np.array_equal(self._stuck, other._stuck))
            and bool(np.all(self._values[self._stuck] == other._values[other._stuck]))
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"FaultMap({self.num_faults} faults / "
            f"{self.num_words}x{self.word_bits} bits, "
            f"rate={self.fault_rate:.4f})"
        )

    # ------------------------------------------- clustering diagnostics

    def fault_run_lengths(self, axis: str = "row") -> np.ndarray:
        """Lengths of contiguous stuck-cell runs along words or bit columns.

        ``axis="row"`` scans each word left to right (runs of adjacent stuck
        bits within a word); ``axis="column"`` scans each bit position down
        the address space.  Under i.i.d. faults runs are geometrically short;
        shared-peripheral (correlated) failures produce long runs, which is
        what the scenario sweeps and tests use as a clustering signal.
        """
        if axis == "row":
            grid = self._stuck
        elif axis == "column":
            grid = self._stuck.T
        else:
            raise ValueError("axis must be 'row' or 'column'")
        # pad each line with False so runs never join across line boundaries,
        # then diff the flattened sequence: +1 marks run starts, -1 run ends
        padded = np.zeros((grid.shape[0], grid.shape[1] + 1), dtype=np.int8)
        padded[:, :-1] = grid
        flat = np.concatenate([[0], padded.ravel()])
        edges = np.diff(flat)
        starts = np.flatnonzero(edges == 1)
        ends = np.flatnonzero(edges == -1)
        return ends - starts

    def spatial_autocorrelation(self, axis: str = "row") -> float:
        """Pearson correlation of adjacent-cell stuck indicators.

        ``axis="row"`` correlates horizontally adjacent cells (within a
        word), ``axis="column"`` vertically adjacent ones (same bit, next
        address).  Returns 0.0 for degenerate maps (no faults, all faults,
        or a single-line geometry along the chosen axis).
        """
        if axis == "row":
            a = self._stuck[:, :-1].ravel()
            b = self._stuck[:, 1:].ravel()
        elif axis == "column":
            a = self._stuck[:-1, :].ravel()
            b = self._stuck[1:, :].ravel()
        else:
            raise ValueError("axis must be 'row' or 'column'")
        if a.size == 0:
            return 0.0
        a = a.astype(float)
        b = b.astype(float)
        var_a = a.var()
        var_b = b.var()
        if var_a == 0.0 or var_b == 0.0:
            return 0.0
        covariance = ((a - a.mean()) * (b - b.mean())).mean()
        return float(covariance / np.sqrt(var_a * var_b))

    def clustering_summary(self) -> dict:
        """Compact clustering diagnostics for reporting and sweep rows."""
        row_runs = self.fault_run_lengths("row")
        column_runs = self.fault_run_lengths("column")
        return {
            "fault_rate": self.fault_rate,
            "mean_row_run": float(row_runs.mean()) if row_runs.size else 0.0,
            "max_row_run": int(row_runs.max()) if row_runs.size else 0,
            "mean_column_run": float(column_runs.mean()) if column_runs.size else 0.0,
            "max_column_run": int(column_runs.max()) if column_runs.size else 0,
            "row_autocorrelation": self.spatial_autocorrelation("row"),
            "column_autocorrelation": self.spatial_autocorrelation("column"),
        }

    # -------------------------------------------------------------- masks

    def _mask_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The cached, read-only (and_mask, or_mask) pair."""
        if self._masks_cache is None:
            and_masks, or_masks = masks_from_arrays(self._stuck, self._values)
            and_masks.flags.writeable = False
            or_masks.flags.writeable = False
            self._masks_cache = (and_masks, or_masks)
        return self._masks_cache

    def mask_views(self) -> tuple[np.ndarray, np.ndarray]:
        """Read-only views of the cached masks — :meth:`masks` without the copy."""
        return self._mask_arrays()

    def masks(self) -> tuple[np.ndarray, np.ndarray]:
        """Return per-word ``(and_mask, or_mask)`` arrays (uint64).

        Applying a fault map to a stored word ``w`` is
        ``(w & and_mask) | or_mask``:

        * bits stuck at 0 are cleared by a 0 in the AND mask, and
        * bits stuck at 1 are set by a 1 in the OR mask,

        exactly the injection-masking operation of Fig. 4.  The arrays are
        materialized once per mutation and cached; each call hands back
        fresh copies the caller may freely modify.
        """
        and_masks, or_masks = self._mask_arrays()
        return and_masks.copy(), or_masks.copy()

    def apply(self, words: np.ndarray) -> np.ndarray:
        """Corrupt an array of stored words according to the fault map.

        ``words`` must have length ``num_words`` (element ``i`` is the word
        at address ``i``); a corrupted copy is returned.
        """
        words = np.asarray(words, dtype=np.uint64)
        if words.shape != (self.num_words,):
            raise ValueError(
                f"expected {self.num_words} words, got shape {words.shape}"
            )
        and_masks, or_masks = self._mask_arrays()
        return (words & and_masks) | or_masks

    # ------------------------------------------------------- constructors

    @classmethod
    def from_arrays(
        cls,
        stuck_mask: np.ndarray,
        stuck_values: np.ndarray,
    ) -> "FaultMap":
        """Build a fault map from boolean/value bit matrices.

        ``stuck_mask`` is a boolean array of shape ``(num_words, word_bits)``
        marking stuck cells; ``stuck_values`` holds the stuck value for every
        cell (values of non-stuck cells are ignored).
        """
        stuck_mask = np.asarray(stuck_mask, dtype=bool)
        stuck_values = np.asarray(stuck_values)
        if stuck_mask.ndim != 2 or stuck_mask.shape != stuck_values.shape:
            raise ValueError("stuck_mask and stuck_values must be equal 2-D shapes")
        num_words, word_bits = stuck_mask.shape
        invalid = stuck_mask & (stuck_values != 0) & (stuck_values != 1)
        if np.any(invalid):
            raise ValueError("stuck_value must be 0 or 1")
        fault_map = cls(num_words, word_bits)
        fault_map._stuck = stuck_mask.copy()
        fault_map._values = np.where(stuck_mask, stuck_values, 0).astype(np.uint8)
        return fault_map

    @classmethod
    def random(
        cls,
        num_words: int,
        word_bits: int,
        fault_rate: float,
        rng: np.random.Generator | int | None = None,
        stuck_one_probability: float = 0.5,
    ) -> "FaultMap":
        """Generate a random fault map with the given bit-level fault rate.

        This is the model used for the paper's simulated-fault study (Fig. 5)
        where "a proportion of randomly selected weight bits are statically
        flipped", with the stuck polarity drawn uniformly by default.
        """
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if not 0.0 <= stuck_one_probability <= 1.0:
            raise ValueError("stuck_one_probability must be in [0, 1]")
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        stuck = rng.random((num_words, word_bits)) < fault_rate
        values = (rng.random((num_words, word_bits)) < stuck_one_probability).astype(int)
        return cls.from_arrays(stuck, values)
