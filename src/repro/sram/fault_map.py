"""Fault maps: the profiled description of SRAM read-stability failures.

A fault map records, for one SRAM bank, every bit-cell that fails reads at a
given operating point: its word address, bit index, and *polarity* (the value
the cell is stuck at — its preferred state).  The map is the single artifact
shared between:

* the memory-adaptive trainer, which converts it to AND/OR injection masks
  (Fig. 4 of the paper),
* the SRAM array model, which uses it to corrupt reads, and
* canary selection, which needs to know which cells are marginal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BitFault", "FaultMap"]


@dataclass(frozen=True)
class BitFault:
    """A single stuck bit-cell.

    Attributes
    ----------
    address:
        Word address within the SRAM bank.
    bit:
        Bit index within the word; 0 is the least-significant bit.
    stuck_value:
        The value the cell reads as once disturbed (its preferred state).
    """

    address: int
    bit: int
    stuck_value: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.bit < 0:
            raise ValueError("bit index must be non-negative")
        if self.stuck_value not in (0, 1):
            raise ValueError("stuck_value must be 0 or 1")


class FaultMap:
    """The set of stuck bit-cells of one SRAM bank at one operating point.

    Parameters
    ----------
    num_words:
        Number of words in the bank.
    word_bits:
        Word length in bits.
    faults:
        Iterable of :class:`BitFault`; later entries for the same (address,
        bit) override earlier ones.
    """

    def __init__(
        self,
        num_words: int,
        word_bits: int,
        faults: list[BitFault] | None = None,
    ) -> None:
        if num_words <= 0 or word_bits <= 0:
            raise ValueError("num_words and word_bits must be positive")
        if word_bits > 64:
            raise ValueError("word_bits must be at most 64")
        self.num_words = int(num_words)
        self.word_bits = int(word_bits)
        self._faults: dict[tuple[int, int], int] = {}
        for fault in faults or []:
            self.add(fault)

    # --------------------------------------------------------------- edit

    def add(self, fault: BitFault) -> None:
        """Add (or overwrite) a stuck bit."""
        if fault.address >= self.num_words:
            raise ValueError(
                f"address {fault.address} out of range (num_words={self.num_words})"
            )
        if fault.bit >= self.word_bits:
            raise ValueError(
                f"bit {fault.bit} out of range (word_bits={self.word_bits})"
            )
        self._faults[(fault.address, fault.bit)] = fault.stuck_value

    def merge(self, other: "FaultMap") -> "FaultMap":
        """Union of two fault maps over the same geometry (other wins ties)."""
        if (other.num_words, other.word_bits) != (self.num_words, self.word_bits):
            raise ValueError("fault maps cover different SRAM geometries")
        merged = FaultMap(self.num_words, self.word_bits, self.faults)
        for fault in other.faults:
            merged.add(fault)
        return merged

    # ------------------------------------------------------------ queries

    @property
    def faults(self) -> list[BitFault]:
        """All stuck bits, sorted by (address, bit)."""
        return [
            BitFault(address, bit, value)
            for (address, bit), value in sorted(self._faults.items())
        ]

    @property
    def num_faults(self) -> int:
        return len(self._faults)

    @property
    def fault_rate(self) -> float:
        """Fraction of bit-cells in the bank that are stuck."""
        return self.num_faults / float(self.num_words * self.word_bits)

    @property
    def faulty_addresses(self) -> np.ndarray:
        """Sorted unique word addresses containing at least one stuck bit."""
        return np.unique([address for address, _ in self._faults])

    def faults_at(self, address: int) -> list[BitFault]:
        """Stuck bits within one word."""
        return [f for f in self.faults if f.address == address]

    def __contains__(self, key: tuple[int, int]) -> bool:
        return tuple(key) in self._faults

    def __len__(self) -> int:
        return self.num_faults

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultMap):
            return NotImplemented
        return (
            self.num_words == other.num_words
            and self.word_bits == other.word_bits
            and self._faults == other._faults
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"FaultMap({self.num_faults} faults / "
            f"{self.num_words}x{self.word_bits} bits, "
            f"rate={self.fault_rate:.4f})"
        )

    # -------------------------------------------------------------- masks

    def masks(self) -> tuple[np.ndarray, np.ndarray]:
        """Return per-word ``(and_mask, or_mask)`` arrays (uint64).

        Applying a fault map to a stored word ``w`` is
        ``(w & and_mask) | or_mask``:

        * bits stuck at 0 are cleared by a 0 in the AND mask, and
        * bits stuck at 1 are set by a 1 in the OR mask,

        exactly the injection-masking operation of Fig. 4.
        """
        and_masks = np.full(self.num_words, (1 << self.word_bits) - 1, dtype=np.uint64)
        or_masks = np.zeros(self.num_words, dtype=np.uint64)
        for (address, bit), value in self._faults.items():
            if value == 0:
                and_masks[address] &= np.uint64(~(1 << bit) & ((1 << self.word_bits) - 1))
            else:
                or_masks[address] |= np.uint64(1 << bit)
        return and_masks, or_masks

    def apply(self, words: np.ndarray) -> np.ndarray:
        """Corrupt an array of stored words according to the fault map.

        ``words`` must have length ``num_words`` (element ``i`` is the word
        at address ``i``); a corrupted copy is returned.
        """
        words = np.asarray(words, dtype=np.uint64)
        if words.shape != (self.num_words,):
            raise ValueError(
                f"expected {self.num_words} words, got shape {words.shape}"
            )
        and_masks, or_masks = self.masks()
        return (words & and_masks) | or_masks

    # ------------------------------------------------------- constructors

    @classmethod
    def from_arrays(
        cls,
        stuck_mask: np.ndarray,
        stuck_values: np.ndarray,
    ) -> "FaultMap":
        """Build a fault map from boolean/value bit matrices.

        ``stuck_mask`` is a boolean array of shape ``(num_words, word_bits)``
        marking stuck cells; ``stuck_values`` holds the stuck value for every
        cell (values of non-stuck cells are ignored).
        """
        stuck_mask = np.asarray(stuck_mask, dtype=bool)
        stuck_values = np.asarray(stuck_values)
        if stuck_mask.ndim != 2 or stuck_mask.shape != stuck_values.shape:
            raise ValueError("stuck_mask and stuck_values must be equal 2-D shapes")
        num_words, word_bits = stuck_mask.shape
        fault_map = cls(num_words, word_bits)
        for address, bit in zip(*np.nonzero(stuck_mask)):
            fault_map.add(BitFault(int(address), int(bit), int(stuck_values[address, bit])))
        return fault_map

    @classmethod
    def random(
        cls,
        num_words: int,
        word_bits: int,
        fault_rate: float,
        rng: np.random.Generator | int | None = None,
        stuck_one_probability: float = 0.5,
    ) -> "FaultMap":
        """Generate a random fault map with the given bit-level fault rate.

        This is the model used for the paper's simulated-fault study (Fig. 5)
        where "a proportion of randomly selected weight bits are statically
        flipped", with the stuck polarity drawn uniformly by default.
        """
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if not 0.0 <= stuck_one_probability <= 1.0:
            raise ValueError("stuck_one_probability must be in [0, 1]")
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        stuck = rng.random((num_words, word_bits)) < fault_rate
        values = (rng.random((num_words, word_bits)) < stuck_one_probability).astype(int)
        return cls.from_arrays(stuck, values)
