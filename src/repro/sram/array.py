"""Behavioural model of a voltage-scalable 6T SRAM bank.

The model captures the read-stability failure mechanism MATIC is built
around:

* every bit-cell has a sampled V_min,read and a preferred state,
* a read performed below a cell's (temperature-shifted) V_min,read
  flips the cell to its preferred state — the read returns the corrupted
  value and the corruption *persists* for subsequent reads, and
* a write refreshes the cell contents (until the next low-voltage read).

Access-time failures are out of scope, exactly as in the paper ("read
failures ... are distinct from bit-line access-time failures, which can be
corrected with ample timing margin").

Operating-point-resident read path
----------------------------------
Storage is word-resident: the bank keeps its contents as a ``uint64`` word
vector, and for every distinct ``(voltage, temperature)`` operating point it
caches the word-level AND/OR corruption masks derived from the sampled cell
population (the same derivation :meth:`SramBank.fault_map_at` exposes as a
:class:`~repro.sram.fault_map.FaultMap`).  A read is then a single
``(words & and_mask) | or_mask`` over the addressed words, with the
persistent corruption written back in the same operation — no per-read
bit unpack/compare/repack round-trip.  The mask cache is invalidated when
the cell population changes (:attr:`SramBank.cells` assignment or
:meth:`SramBank.resample_cells`); writes never invalidate it because the
masks depend only on cell physics, not on stored contents.  Content changes
are tracked by :attr:`SramBank.content_epoch`, which bumps on every write or
corrupting read that actually changes stored words — consumers (the NPU's
decoded-weight memoization) use it to skip re-decoding unchanged words.
"""

from __future__ import annotations

import hashlib

import numpy as np

from . import calibration
from .bitcell import BitcellPopulation, BitcellVariationModel, EmpiricalVminModel
from .bitops import popcount, unpack_words
from .fault_map import BitFault, FaultMap, masks_from_arrays
from .variation import VariationScenario

__all__ = ["SramBank", "WeightMemorySystem"]

#: Retain masks for at most this many distinct operating points per bank
#: (a temperature-chamber walk visits many points; old ones age out FIFO).
_POINT_CACHE_LIMIT = 64


class SramBank:
    """A single voltage-scalable SRAM bank (one per SNNAC processing element).

    Parameters
    ----------
    num_words:
        Number of addressable words.
    word_bits:
        Word length in bits (8–22 for SNNAC weight memories).
    variation_model:
        Bit-cell variation model used to sample per-cell parameters
        (defaults to the empirical model calibrated to the paper's measured
        failure curve, Fig. 9a).
    rng / seed:
        Randomness for the variation sampling.
    name:
        Identifier used in profiling reports (e.g. ``"pe0.weights"``).
    """

    def __init__(
        self,
        num_words: int,
        word_bits: int,
        variation_model: BitcellVariationModel | None = None,
        seed: int | np.random.Generator | None = None,
        name: str = "sram",
        temperature_coefficient: float = calibration.TEMPERATURE_COEFFICIENT,
        scenario: VariationScenario | None = None,
    ) -> None:
        if num_words <= 0 or word_bits <= 0:
            raise ValueError("num_words and word_bits must be positive")
        if word_bits > 64:
            raise ValueError("word_bits must be at most 64")
        self.num_words = int(num_words)
        self.word_bits = int(word_bits)
        self.name = name
        self.temperature_coefficient = float(temperature_coefficient)
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        #: the variation scenario this bank was built under (None = legacy
        #: i.i.d./typical-corner behaviour); folded into cache keys
        self.scenario = scenario
        if variation_model is not None:
            model = variation_model
        elif scenario is not None:
            model = scenario.variation_model()
        else:
            model = EmpiricalVminModel()
        self.variation_model = model
        #: additive V_min,read shift applied by :meth:`effective_vmin` —
        #: process-corner skew plus environment/aging drift.  Part of the
        #: operating-point mask cache key, so it may be reassigned freely
        #: (a trajectory walk) without invalidating cached points.
        self.vmin_offset = (
            float(scenario.corner.vmin_shift) if scenario is not None else 0.0
        )
        self._cells: BitcellPopulation = model.sample(self.num_words, self.word_bits, rng)
        #: stored contents, one uint64 word per address (word-resident storage)
        self._words = np.zeros(self.num_words, dtype=np.uint64)
        #: counters useful for energy accounting and tests
        self.read_count = 0
        self.write_count = 0
        #: bumped whenever stored words actually change (write or corrupting
        #: read); lets consumers cheaply detect "contents unchanged"
        self.content_epoch = 0
        # per-(voltage, temperature, vmin_offset) corruption masks + digests
        self._point_masks: dict[
            tuple[float, float, float], tuple[np.ndarray, np.ndarray, bool]
        ] = {}
        self._point_digests: dict[tuple[float, float, float], bytes] = {}

    # ---------------------------------------------------------- population

    @property
    def cells(self) -> BitcellPopulation:
        """The sampled per-cell parameters (V_min,read, preferred state).

        Assigning a new population invalidates the cached operating-point
        masks.  Mutating the arrays *in place* does not — call
        :meth:`invalidate_operating_point_cache` afterwards (or simply mutate
        before the first read at the affected operating points, as the test
        fixtures do).
        """
        return self._cells

    @cells.setter
    def cells(self, population: BitcellPopulation) -> None:
        self._cells = population
        self.invalidate_operating_point_cache()

    def resample_cells(self, seed: int | np.random.Generator | None = None) -> None:
        """Draw a fresh cell population (a new die) and drop cached masks.

        Stored contents are untouched — resampling changes the physics, not
        the data — but every cached ``(voltage, temperature)`` mask pair is
        invalidated because the new cells fail at different voltages.
        """
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self.cells = self.variation_model.sample(self.num_words, self.word_bits, rng)

    def invalidate_operating_point_cache(self) -> None:
        """Drop every cached per-operating-point corruption mask."""
        self._point_masks.clear()
        self._point_digests.clear()

    @property
    def data_bits(self) -> np.ndarray:
        """Stored bits as a ``(num_words, word_bits)`` matrix (LSB at index 0).

        A compatibility *view* unpacked on demand from the word-resident
        storage.  The array is read-only (mutating it could never reach the
        bank) — change contents through :meth:`write`.
        """
        bits = unpack_words(self._words, self.word_bits)
        bits.flags.writeable = False
        return bits

    # ----------------------------------------------------------- geometry

    @property
    def size_bits(self) -> int:
        return self.num_words * self.word_bits

    @property
    def size_bytes(self) -> float:
        return self.size_bits / 8.0

    @property
    def word_mask(self) -> int:
        return (1 << self.word_bits) - 1

    # ------------------------------------------------------------ helpers

    def _check_addresses(self, addresses: np.ndarray) -> np.ndarray:
        addresses = np.atleast_1d(np.asarray(addresses, dtype=int))
        if addresses.size and (addresses.min() < 0 or addresses.max() >= self.num_words):
            raise IndexError("address out of range")
        return addresses

    def effective_vmin(self, temperature: float) -> np.ndarray:
        """Per-cell V_min,read shifted for temperature, corner, and drift."""
        shifted = BitcellVariationModel.effective_vmin(
            self.cells.vmin_read,
            temperature,
            temperature_coefficient=self.temperature_coefficient,
        )
        if self.vmin_offset:
            shifted = shifted + self.vmin_offset
        return shifted

    def scenario_key(self) -> dict:
        """Content key describing the bank's variation provenance.

        Folded into fault-map / profile cache keys so populations sampled
        under different scenarios (i.i.d. vs correlated, different corners)
        can never collide in the :class:`ArtifactCache` even if their
        sampled arrays happened to coincide.
        """
        try:
            model_key = self.variation_model.spec_key()
        except (NotImplementedError, AttributeError):
            model_key = repr(self.variation_model)
        return {
            "scenario": None if self.scenario is None else self.scenario.spec_key(),
            "model": model_key,
            "vmin_offset": float(self.vmin_offset),
        }

    # ----------------------------------------------- operating-point masks

    def corruption_masks(
        self,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cached word-level ``(and_mask, or_mask)`` at an operating point.

        The masks encode exactly the corruption a read at ``voltage`` /
        ``temperature`` inflicts (cells whose effective V_min,read exceeds
        the voltage read as their preferred state):
        ``corrupted = (word & and_mask) | or_mask``.  Derived once per
        distinct operating point from the sampled cell population and reused
        by every subsequent read; the returned arrays are read-only views of
        the cache.
        """
        return self._point_entry(voltage, temperature)[:2]

    def _point_entry(
        self, voltage: float, temperature: float
    ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Cached ``(and_mask, or_mask, identity)`` for an operating point.

        ``identity`` flags a fault-free point (masks corrupt nothing), which
        lets the read hot path skip the corruption/compare/write-back work
        entirely — the overwhelmingly common case at nominal voltage.
        """
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        key = (float(voltage), float(temperature), float(self.vmin_offset))
        cached = self._point_masks.get(key)
        if cached is None:
            stuck = self.effective_vmin(temperature) > float(voltage)
            and_masks, or_masks = masks_from_arrays(
                stuck, self._cells.preferred_state
            )
            and_masks.flags.writeable = False
            or_masks.flags.writeable = False
            identity = not bool(stuck.any())
            cached = (and_masks, or_masks, identity)
            self._point_masks[key] = cached
            while len(self._point_masks) > _POINT_CACHE_LIMIT:
                evicted = next(iter(self._point_masks))
                del self._point_masks[evicted]
                self._point_digests.pop(evicted, None)
        return cached

    def mask_digest(
        self,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> bytes:
        """Content digest of the corruption masks at an operating point.

        Two operating points with equal digests corrupt reads identically,
        so batched sweeps (:meth:`repro.accelerator.npu.Npu.run_sweep`) can
        share decoded weight images between them.
        """
        key = (float(voltage), float(temperature), float(self.vmin_offset))
        digest = self._point_digests.get(key)
        if digest is None:
            and_masks, or_masks = self.corruption_masks(voltage, temperature)
            digest = hashlib.blake2b(
                and_masks.tobytes() + or_masks.tobytes(), digest_size=16
            ).digest()
            self._point_digests[key] = digest
        return digest

    # ------------------------------------------------------------- access

    def write(self, addresses: int | np.ndarray, words: int | np.ndarray) -> None:
        """Write words at the given addresses (refreshes any disturbed cells).

        Writes are modelled as always succeeding: the paper scales only the
        read path into failure and profiles read-after-write behaviour, with
        write-assist assumed at the margins considered.
        """
        addresses = self._check_addresses(addresses)
        words = np.atleast_1d(np.asarray(words, dtype=np.uint64)) & np.uint64(self.word_mask)
        if words.shape != addresses.shape:
            if words.size == 1:
                words = np.full(addresses.shape, words[0], dtype=np.uint64)
            else:
                raise ValueError("addresses and words must have matching lengths")
        self.write_planned(addresses, words)

    def write_planned(self, addresses: np.ndarray, words: np.ndarray) -> None:
        """:meth:`write` minus validation/broadcast (compiled write plans).

        ``addresses`` and ``words`` must be equal-length arrays with the
        words already masked to the word length — exactly what a compiled
        refresh plan stores.  Semantics are identical to :meth:`write`:
        content-identical writes refresh cells without bumping
        :attr:`content_epoch`.
        """
        if (self._words[addresses] != words).any():
            self._words[addresses] = words
            self.content_epoch += 1
        self.write_count += int(addresses.size)

    def read(
        self,
        addresses: int | np.ndarray,
        voltage: float = calibration.NOMINAL_VOLTAGE,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> np.ndarray:
        """Read words at the given addresses under a supply voltage.

        Cells whose effective V_min,read exceeds ``voltage`` are
        flipped to their preferred state *in storage* (destructive read) and
        the returned words reflect the corruption.  The corruption is applied
        word-at-a-time through the cached operating-point masks
        (:meth:`corruption_masks`); the result is bit-identical to the
        bit-domain reference path (per-cell V_min compare + flip).
        """
        addresses = self._check_addresses(addresses)
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        return self.read_planned(addresses, voltage, temperature)

    def read_planned(
        self,
        addresses: np.ndarray,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> np.ndarray:
        """:meth:`read` minus per-call address validation (compiled plans).

        For the inference hot loop: callers pass integer index arrays built
        once by a compiled access plan (already bounded by the bank
        geometry), so re-validating them on every fetch is pure overhead.
        Out-of-range indices from a stale plan still raise ``IndexError``
        from NumPy itself.  Semantics are identical to :meth:`read`.
        """
        and_masks, or_masks, identity = self._point_entry(voltage, temperature)
        words = self._words[addresses]
        if not identity:
            corrupted = (words & and_masks[addresses]) | or_masks[addresses]
            if (corrupted != words).any():
                self._words[addresses] = corrupted
                self.content_epoch += 1
            words = corrupted
        self.read_count += int(addresses.size)
        return words

    def read_all(
        self,
        voltage: float = calibration.NOMINAL_VOLTAGE,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> np.ndarray:
        """Read every word in address order."""
        return self.read(np.arange(self.num_words), voltage, temperature)

    def write_all(self, words: np.ndarray) -> None:
        """Write the full bank contents in address order."""
        words = np.asarray(words, dtype=np.uint64)
        if words.shape != (self.num_words,):
            raise ValueError(f"expected {self.num_words} words, got {words.shape}")
        self.write(np.arange(self.num_words), words)

    # ---------------------------------------------------------- analysis

    def stored_words(self) -> np.ndarray:
        """Current storage contents without performing (destructive) reads."""
        return self._words.copy()

    def fault_map_at(
        self,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> FaultMap:
        """Ground-truth fault map at an operating point.

        A cell appears in the map when a read at ``voltage`` would disturb it,
        regardless of what it currently stores; the stuck value is its
        preferred state.  The profiler (:mod:`repro.sram.profiler`) recovers
        the same map through read-after-write/read-after-read measurements.
        """
        vmin = self.effective_vmin(temperature)
        stuck = vmin > float(voltage)
        return FaultMap.from_arrays(stuck, self.cells.preferred_state)

    def marginal_cells(
        self,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
        count: int = 8,
    ) -> list[BitFault]:
        """The ``count`` cells closest to failure *above* the operating voltage.

        These are the candidates for in-situ canaries: they still read
        correctly at ``voltage`` but will be the first to fail if the voltage
        drops further.  Returned in order of increasing margin, encoded as
        :class:`BitFault` records whose ``stuck_value`` is the preferred state
        the cell would flip to.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        vmin = self.effective_vmin(temperature)
        margin = vmin - float(voltage)
        safe = margin <= 0.0  # cells that still read correctly at `voltage`
        candidates = np.argwhere(safe)
        if candidates.size == 0:
            return []
        flat_margin = -margin[safe.nonzero()]  # positive margins, smaller = more marginal
        # deterministic selection under ties: sort by (margin, address, bit)
        # so canary choice does not depend on the platform's argsort internals
        order = np.lexsort((candidates[:, 1], candidates[:, 0], flat_margin))
        selected = candidates[order[:count]]
        return [
            BitFault(
                int(address),
                int(bit),
                int(self.cells.preferred_state[address, bit]),
            )
            for address, bit in selected
        ]

    def bit_error_count(self, reference_words: np.ndarray) -> int:
        """Number of stored bits that differ from ``reference_words``."""
        reference_words = np.asarray(reference_words, dtype=np.uint64)
        if reference_words.shape != (self.num_words,):
            raise ValueError(f"expected {self.num_words} words, got {reference_words.shape}")
        mask = np.uint64(self.word_mask)
        return popcount((reference_words & mask) ^ self._words)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SramBank({self.name!r}, {self.num_words}x{self.word_bits} bits, "
            f"{self.size_bytes:.0f} B)"
        )


class WeightMemorySystem:
    """The set of per-PE weight SRAM banks of an accelerator.

    SNNAC has eight processing elements, each with a dedicated
    voltage-scalable weight bank; all banks share one SRAM supply rail, so
    the memory system exposes bank-level access plus system-level operations
    (profiling every bank, total capacity, aggregate fault statistics).
    """

    def __init__(self, banks: list[SramBank]) -> None:
        if not banks:
            raise ValueError("at least one bank is required")
        word_bits = {bank.word_bits for bank in banks}
        if len(word_bits) != 1:
            raise ValueError("all banks must share the same word length")
        self.banks = list(banks)

    @classmethod
    def build(
        cls,
        num_banks: int,
        words_per_bank: int,
        word_bits: int,
        variation_model: BitcellVariationModel | None = None,
        seed: int | np.random.SeedSequence | None = None,
        name_prefix: str = "pe",
        scenario: VariationScenario | None = None,
    ) -> "WeightMemorySystem":
        """Construct ``num_banks`` banks with independent variation samples.

        Per-bank generators are derived with :meth:`numpy.random.SeedSequence.spawn`,
        which guarantees statistically independent streams (drawing integer
        seeds from a root generator does not, and ``integers(0, 2**63 - 1)``
        silently excluded one seed value).  ``scenario`` threads a
        :class:`VariationScenario` into every bank (correlated sampling +
        corner V_min shift); an explicit ``variation_model`` still wins.
        """
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        if variation_model is None and scenario is not None:
            variation_model = scenario.variation_model()
        root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        banks = [
            SramBank(
                words_per_bank,
                word_bits,
                variation_model=variation_model,
                seed=np.random.default_rng(child),
                name=f"{name_prefix}{index}.weights",
                scenario=scenario,
            )
            for index, child in enumerate(root.spawn(num_banks))
        ]
        return cls(banks)

    def __len__(self) -> int:
        return len(self.banks)

    def __getitem__(self, index: int) -> SramBank:
        return self.banks[index]

    def __iter__(self):
        return iter(self.banks)

    @property
    def word_bits(self) -> int:
        return self.banks[0].word_bits

    @property
    def total_words(self) -> int:
        return sum(bank.num_words for bank in self.banks)

    @property
    def total_bits(self) -> int:
        return sum(bank.size_bits for bank in self.banks)

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0

    def fault_maps_at(
        self,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> list[FaultMap]:
        """Ground-truth fault maps for every bank at an operating point."""
        return [bank.fault_map_at(voltage, temperature) for bank in self.banks]

    def fault_rate_at(
        self,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> float:
        """Aggregate bit-level fault rate across all banks."""
        faults = sum(m.num_faults for m in self.fault_maps_at(voltage, temperature))
        return faults / float(self.total_bits)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"WeightMemorySystem({len(self.banks)} banks, "
            f"{self.total_bytes / 1024:.1f} KiB total)"
        )
