"""Behavioural model of a voltage-scalable 6T SRAM bank.

The model captures the read-stability failure mechanism MATIC is built
around:

* every bit-cell has a sampled V_min,read and a preferred state,
* a read performed below a cell's (temperature-shifted) V_min,read
  flips the cell to its preferred state — the read returns the corrupted
  value and the corruption *persists* for subsequent reads, and
* a write refreshes the cell contents (until the next low-voltage read).

Access-time failures are out of scope, exactly as in the paper ("read
failures ... are distinct from bit-line access-time failures, which can be
corrected with ample timing margin").
"""

from __future__ import annotations

import numpy as np

from . import calibration
from .bitcell import BitcellPopulation, BitcellVariationModel, EmpiricalVminModel
from .bitops import pack_bits, unpack_words
from .fault_map import BitFault, FaultMap

__all__ = ["SramBank", "WeightMemorySystem"]


class SramBank:
    """A single voltage-scalable SRAM bank (one per SNNAC processing element).

    Parameters
    ----------
    num_words:
        Number of addressable words.
    word_bits:
        Word length in bits (8–22 for SNNAC weight memories).
    variation_model:
        Bit-cell variation model used to sample per-cell parameters
        (defaults to the empirical model calibrated to the paper's measured
        failure curve, Fig. 9a).
    rng / seed:
        Randomness for the variation sampling.
    name:
        Identifier used in profiling reports (e.g. ``"pe0.weights"``).
    """

    def __init__(
        self,
        num_words: int,
        word_bits: int,
        variation_model: BitcellVariationModel | None = None,
        seed: int | np.random.Generator | None = None,
        name: str = "sram",
        temperature_coefficient: float = calibration.TEMPERATURE_COEFFICIENT,
    ) -> None:
        if num_words <= 0 or word_bits <= 0:
            raise ValueError("num_words and word_bits must be positive")
        if word_bits > 64:
            raise ValueError("word_bits must be at most 64")
        self.num_words = int(num_words)
        self.word_bits = int(word_bits)
        self.name = name
        self.temperature_coefficient = float(temperature_coefficient)
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        model = variation_model if variation_model is not None else EmpiricalVminModel()
        self.variation_model = model
        self.cells: BitcellPopulation = model.sample(self.num_words, self.word_bits, rng)
        #: stored bit values, shape (num_words, word_bits), LSB at index 0
        self.data_bits = np.zeros((self.num_words, self.word_bits), dtype=np.uint8)
        #: counters useful for energy accounting and tests
        self.read_count = 0
        self.write_count = 0

    # ----------------------------------------------------------- geometry

    @property
    def size_bits(self) -> int:
        return self.num_words * self.word_bits

    @property
    def size_bytes(self) -> float:
        return self.size_bits / 8.0

    @property
    def word_mask(self) -> int:
        return (1 << self.word_bits) - 1

    # ------------------------------------------------------------ helpers

    def _check_addresses(self, addresses: np.ndarray) -> np.ndarray:
        addresses = np.atleast_1d(np.asarray(addresses, dtype=int))
        if addresses.size and (addresses.min() < 0 or addresses.max() >= self.num_words):
            raise IndexError("address out of range")
        return addresses

    def _words_to_bits(self, words: np.ndarray) -> np.ndarray:
        return unpack_words(words, self.word_bits)

    def _bits_to_words(self, bits: np.ndarray) -> np.ndarray:
        return pack_bits(bits)

    def effective_vmin(self, temperature: float) -> np.ndarray:
        """Per-cell V_min,read shifted to the given temperature."""
        return BitcellVariationModel.effective_vmin(
            self.cells.vmin_read,
            temperature,
            temperature_coefficient=self.temperature_coefficient,
        )

    # ------------------------------------------------------------- access

    def write(self, addresses: int | np.ndarray, words: int | np.ndarray) -> None:
        """Write words at the given addresses (refreshes any disturbed cells).

        Writes are modelled as always succeeding: the paper scales only the
        read path into failure and profiles read-after-write behaviour, with
        write-assist assumed at the margins considered.
        """
        addresses = self._check_addresses(addresses)
        words = np.atleast_1d(np.asarray(words, dtype=np.uint64)) & np.uint64(self.word_mask)
        if words.shape != addresses.shape:
            if words.size == 1:
                words = np.full(addresses.shape, words[0], dtype=np.uint64)
            else:
                raise ValueError("addresses and words must have matching lengths")
        self.data_bits[addresses] = self._words_to_bits(words)
        self.write_count += int(addresses.size)

    def read(
        self,
        addresses: int | np.ndarray,
        voltage: float = calibration.NOMINAL_VOLTAGE,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> np.ndarray:
        """Read words at the given addresses under a supply voltage.

        Cells whose effective V_min,read exceeds ``voltage`` are
        flipped to their preferred state *in storage* (destructive read) and
        the returned words reflect the corruption.
        """
        addresses = self._check_addresses(addresses)
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        vmin = self.effective_vmin(temperature)[addresses]
        disturbed = vmin > float(voltage)
        bits = self.data_bits[addresses]
        preferred = self.cells.preferred_state[addresses]
        new_bits = np.where(disturbed, preferred, bits)
        self.data_bits[addresses] = new_bits
        self.read_count += int(addresses.size)
        return self._bits_to_words(new_bits)

    def read_all(
        self,
        voltage: float = calibration.NOMINAL_VOLTAGE,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> np.ndarray:
        """Read every word in address order."""
        return self.read(np.arange(self.num_words), voltage, temperature)

    def write_all(self, words: np.ndarray) -> None:
        """Write the full bank contents in address order."""
        words = np.asarray(words, dtype=np.uint64)
        if words.shape != (self.num_words,):
            raise ValueError(f"expected {self.num_words} words, got {words.shape}")
        self.write(np.arange(self.num_words), words)

    # ---------------------------------------------------------- analysis

    def stored_words(self) -> np.ndarray:
        """Current storage contents without performing (destructive) reads."""
        return self._bits_to_words(self.data_bits)

    def fault_map_at(
        self,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> FaultMap:
        """Ground-truth fault map at an operating point.

        A cell appears in the map when a read at ``voltage`` would disturb it,
        regardless of what it currently stores; the stuck value is its
        preferred state.  The profiler (:mod:`repro.sram.profiler`) recovers
        the same map through read-after-write/read-after-read measurements.
        """
        vmin = self.effective_vmin(temperature)
        stuck = vmin > float(voltage)
        return FaultMap.from_arrays(stuck, self.cells.preferred_state)

    def marginal_cells(
        self,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
        count: int = 8,
    ) -> list[BitFault]:
        """The ``count`` cells closest to failure *above* the operating voltage.

        These are the candidates for in-situ canaries: they still read
        correctly at ``voltage`` but will be the first to fail if the voltage
        drops further.  Returned in order of increasing margin, encoded as
        :class:`BitFault` records whose ``stuck_value`` is the preferred state
        the cell would flip to.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        vmin = self.effective_vmin(temperature)
        margin = vmin - float(voltage)
        safe = margin <= 0.0  # cells that still read correctly at `voltage`
        candidates = np.argwhere(safe)
        if candidates.size == 0:
            return []
        flat_margin = -margin[safe.nonzero()]  # positive margins, smaller = more marginal
        # deterministic selection under ties: sort by (margin, address, bit)
        # so canary choice does not depend on the platform's argsort internals
        order = np.lexsort((candidates[:, 1], candidates[:, 0], flat_margin))
        selected = candidates[order[:count]]
        return [
            BitFault(
                int(address),
                int(bit),
                int(self.cells.preferred_state[address, bit]),
            )
            for address, bit in selected
        ]

    def bit_error_count(self, reference_words: np.ndarray) -> int:
        """Number of stored bits that differ from ``reference_words``."""
        reference_words = np.asarray(reference_words, dtype=np.uint64)
        if reference_words.shape != (self.num_words,):
            raise ValueError(f"expected {self.num_words} words, got {reference_words.shape}")
        reference_bits = self._words_to_bits(reference_words)
        return int(np.sum(reference_bits != self.data_bits))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SramBank({self.name!r}, {self.num_words}x{self.word_bits} bits, "
            f"{self.size_bytes:.0f} B)"
        )


class WeightMemorySystem:
    """The set of per-PE weight SRAM banks of an accelerator.

    SNNAC has eight processing elements, each with a dedicated
    voltage-scalable weight bank; all banks share one SRAM supply rail, so
    the memory system exposes bank-level access plus system-level operations
    (profiling every bank, total capacity, aggregate fault statistics).
    """

    def __init__(self, banks: list[SramBank]) -> None:
        if not banks:
            raise ValueError("at least one bank is required")
        word_bits = {bank.word_bits for bank in banks}
        if len(word_bits) != 1:
            raise ValueError("all banks must share the same word length")
        self.banks = list(banks)

    @classmethod
    def build(
        cls,
        num_banks: int,
        words_per_bank: int,
        word_bits: int,
        variation_model: BitcellVariationModel | None = None,
        seed: int | np.random.SeedSequence | None = None,
        name_prefix: str = "pe",
    ) -> "WeightMemorySystem":
        """Construct ``num_banks`` banks with independent variation samples.

        Per-bank generators are derived with :meth:`numpy.random.SeedSequence.spawn`,
        which guarantees statistically independent streams (drawing integer
        seeds from a root generator does not, and ``integers(0, 2**63 - 1)``
        silently excluded one seed value).
        """
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        banks = [
            SramBank(
                words_per_bank,
                word_bits,
                variation_model=variation_model,
                seed=np.random.default_rng(child),
                name=f"{name_prefix}{index}.weights",
            )
            for index, child in enumerate(root.spawn(num_banks))
        ]
        return cls(banks)

    def __len__(self) -> int:
        return len(self.banks)

    def __getitem__(self, index: int) -> SramBank:
        return self.banks[index]

    def __iter__(self):
        return iter(self.banks)

    @property
    def word_bits(self) -> int:
        return self.banks[0].word_bits

    @property
    def total_words(self) -> int:
        return sum(bank.num_words for bank in self.banks)

    @property
    def total_bits(self) -> int:
        return sum(bank.size_bits for bank in self.banks)

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0

    def fault_maps_at(
        self,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> list[FaultMap]:
        """Ground-truth fault maps for every bank at an operating point."""
        return [bank.fault_map_at(voltage, temperature) for bank in self.banks]

    def fault_rate_at(
        self,
        voltage: float,
        temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> float:
        """Aggregate bit-level fault rate across all banks."""
        faults = sum(m.num_faults for m in self.fault_maps_at(voltage, temperature))
        return faults / float(self.total_bits)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"WeightMemorySystem({len(self.banks)} banks, "
            f"{self.total_bytes / 1024:.1f} KiB total)"
        )
