"""Digitally-programmable voltage regulator model.

The test chip's SRAM supply is driven by external digitally-programmable
regulators; the in-situ canary controller (Algorithm 1) adjusts the SRAM rail
in fixed ``Δv`` steps through this interface.  The model quantizes requested
voltages to the regulator's step size and clamps to its output range, and
keeps a history of programmed values so experiments (e.g. the Fig. 12
temperature-tracking run) can plot the control trajectory.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VoltageRegulator"]


class VoltageRegulator:
    """A programmable supply-rail regulator with a fixed step size.

    Parameters
    ----------
    initial_voltage:
        Output voltage at power-up, volts.
    step:
        Programming resolution (``delta-v`` in Algorithm 1), volts.
    min_voltage / max_voltage:
        Output range; requests outside the range are clamped.
    """

    def __init__(
        self,
        initial_voltage: float = 0.9,
        step: float = 0.005,
        min_voltage: float = 0.3,
        max_voltage: float = 1.2,
    ) -> None:
        if step <= 0:
            raise ValueError("step must be positive")
        if min_voltage <= 0 or max_voltage <= min_voltage:
            raise ValueError("voltage range must satisfy 0 < min < max")
        self.step = float(step)
        self.min_voltage = float(min_voltage)
        self.max_voltage = float(max_voltage)
        self._voltage = self._quantize(initial_voltage)
        self.history: list[float] = [self._voltage]

    # ------------------------------------------------------------------

    def _quantize(self, voltage: float) -> float:
        voltage = float(np.clip(voltage, self.min_voltage, self.max_voltage))
        steps = round(voltage / self.step)
        return float(np.clip(steps * self.step, self.min_voltage, self.max_voltage))

    @property
    def voltage(self) -> float:
        """Current output voltage."""
        return self._voltage

    def set_voltage(self, voltage: float) -> float:
        """Program a new output voltage; returns the quantized value applied."""
        self._voltage = self._quantize(voltage)
        self.history.append(self._voltage)
        return self._voltage

    def adjust(self, delta: float) -> float:
        """Move the output voltage by ``delta`` volts (positive or negative)."""
        return self.set_voltage(self._voltage + float(delta))

    def step_down(self) -> float:
        """Lower the output by one programming step."""
        return self.adjust(-self.step)

    def step_up(self) -> float:
        """Raise the output by one programming step."""
        return self.adjust(self.step)

    def reset_history(self) -> None:
        """Clear the programming history (keeps the current voltage)."""
        self.history = [self._voltage]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"VoltageRegulator({self._voltage:.3f} V, step={self.step * 1e3:.1f} mV, "
            f"range=[{self.min_voltage}, {self.max_voltage}] V)"
        )
