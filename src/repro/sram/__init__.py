"""Voltage-scalable SRAM substrate: bit-cell variation, arrays, fault maps,
profiling, regulators, and environmental variation models."""

from . import calibration
from .array import SramBank, WeightMemorySystem
from .bitcell import (
    BitcellPopulation,
    BitcellVariationModel,
    CorrelatedVminModel,
    EmpiricalVminModel,
    GaussianVminModel,
)
from .bitops import pack_bits, popcount, unpack_words
from .fault_map import BitFault, FaultMap, masks_from_arrays
from .profiler import ProfileReport, SramProfiler
from .regulator import VoltageRegulator
from .variation import (
    FAST_CORNER,
    SLOW_CORNER,
    TYPICAL_CORNER,
    CorrelationSpec,
    EnvironmentalConditions,
    EnvironmentTrajectory,
    ProcessCorner,
    TemperatureChamber,
    TrajectoryStep,
    VariationScenario,
)

__all__ = [
    "calibration",
    "SramBank",
    "WeightMemorySystem",
    "BitcellPopulation",
    "BitcellVariationModel",
    "GaussianVminModel",
    "EmpiricalVminModel",
    "CorrelatedVminModel",
    "BitFault",
    "FaultMap",
    "masks_from_arrays",
    "pack_bits",
    "popcount",
    "unpack_words",
    "ProfileReport",
    "SramProfiler",
    "VoltageRegulator",
    "EnvironmentalConditions",
    "EnvironmentTrajectory",
    "TrajectoryStep",
    "CorrelationSpec",
    "VariationScenario",
    "ProcessCorner",
    "TemperatureChamber",
    "TYPICAL_CORNER",
    "SLOW_CORNER",
    "FAST_CORNER",
]
