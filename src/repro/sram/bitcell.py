"""6T SRAM bit-cell variation models.

Each 6T bit-cell has a mismatch-induced static offset that gives it a
"preferred state"; when the supply voltage drops below the cell's
V_min,read, a read flips the cell to that preferred state and the
(now incorrect) value persists across subsequent reads.  MATIC exploits
exactly this behaviour: the failures are random in space but *stable* in
value, so they can be profiled once and trained around.

Two interchangeable models are provided:

:class:`GaussianVminModel`
    V_min,read is Gaussian across cells — the standard outcome of a
    SPICE Monte-Carlo with Gaussian threshold-voltage mismatch, and the model used
    by the paper's simulated-fault study (Fig. 5).

:class:`EmpiricalVminModel`
    V_min,read is drawn by inverse-transform sampling from a
    measured/bench-marked failure-rate-vs-voltage curve (the Fig. 9a anchor
    points by default), so the population statistics reproduce the measured
    curve by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import calibration

__all__ = [
    "BitcellVariationModel",
    "GaussianVminModel",
    "EmpiricalVminModel",
    "CorrelatedVminModel",
    "BitcellPopulation",
]


@dataclass
class BitcellPopulation:
    """Sampled per-cell parameters for an array of bit-cells.

    Attributes
    ----------
    vmin_read:
        Per-cell read-stability failure voltage at the reference temperature,
        shape ``(num_words, word_bits)``.
    preferred_state:
        Per-cell preferred storage state (0 or 1), the value the cell flips
        to when disturbed, same shape.
    """

    vmin_read: np.ndarray
    preferred_state: np.ndarray

    def __post_init__(self) -> None:
        self.vmin_read = np.asarray(self.vmin_read, dtype=float)
        self.preferred_state = np.asarray(self.preferred_state, dtype=np.uint8)
        if self.vmin_read.shape != self.preferred_state.shape:
            raise ValueError("vmin_read and preferred_state shapes must match")
        if np.any((self.preferred_state != 0) & (self.preferred_state != 1)):
            raise ValueError("preferred_state must contain only 0/1")

    @property
    def shape(self) -> tuple[int, ...]:
        return self.vmin_read.shape

    @property
    def num_cells(self) -> int:
        return int(self.vmin_read.size)


class BitcellVariationModel:
    """Base class for bit-cell V_min,read variation models."""

    def sample(
        self, num_words: int, word_bits: int, rng: np.random.Generator
    ) -> BitcellPopulation:
        """Sample per-cell parameters for an array of the given geometry."""
        raise NotImplementedError

    def failure_probability(self, voltage: float | np.ndarray) -> np.ndarray:
        """Probability that a random cell fails a read at ``voltage`` (25 °C)."""
        raise NotImplementedError

    def vmin_from_normal_scores(self, scores: np.ndarray) -> np.ndarray:
        """Map standard-normal scores to V_min,read with this model's marginal.

        This is the Gaussian-copula hook used by :class:`CorrelatedVminModel`:
        the copula builds a correlated standard-normal field and each model
        maps it through its own marginal distribution, so correlation
        redistributes variance across shared components without changing any
        cell's marginal law.
        """
        raise NotImplementedError

    def spec_key(self) -> dict:
        """Content key describing the model's parameters, for cache digests."""
        raise NotImplementedError

    # ------------------------------------------------------------------

    @staticmethod
    def effective_vmin(
        vmin_read: np.ndarray,
        temperature: float,
        temperature_coefficient: float = calibration.TEMPERATURE_COEFFICIENT,
        reference_temperature: float = calibration.NOMINAL_TEMPERATURE,
    ) -> np.ndarray:
        """Shift V_min,read for ambient temperature.

        Below the temperature-inversion point of the 65 nm process, higher
        temperature improves transistor drive and *lowers* the failure
        voltage; the coefficient is negative so the shift follows the inverse
        voltage/temperature relationship seen in Fig. 12.
        """
        delta = temperature_coefficient * (float(temperature) - reference_temperature)
        return np.asarray(vmin_read, dtype=float) + delta


class GaussianVminModel(BitcellVariationModel):
    """Gaussian V_min,read across the cell population.

    Parameters default to the calibration in :mod:`repro.sram.calibration`,
    which reproduces the qualitative shape of the paper's measured failure
    curve (first failures ≈0.53 V, ~half the cells failed at 0.46 V, nearly
    all failed at 0.40 V).
    """

    def __init__(
        self,
        mean: float = calibration.VMIN_READ_MEAN,
        sigma: float = calibration.VMIN_READ_SIGMA,
        preferred_one_probability: float = 0.5,
    ) -> None:
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if not 0.0 <= preferred_one_probability <= 1.0:
            raise ValueError("preferred_one_probability must be in [0, 1]")
        self.mean = float(mean)
        self.sigma = float(sigma)
        self.preferred_one_probability = float(preferred_one_probability)

    def sample(
        self, num_words: int, word_bits: int, rng: np.random.Generator
    ) -> BitcellPopulation:
        if num_words <= 0 or word_bits <= 0:
            raise ValueError("array geometry must be positive")
        vmin = rng.normal(self.mean, self.sigma, size=(num_words, word_bits))
        preferred = (
            rng.random(size=(num_words, word_bits)) < self.preferred_one_probability
        ).astype(np.uint8)
        return BitcellPopulation(vmin_read=vmin, preferred_state=preferred)

    def failure_probability(self, voltage: float | np.ndarray) -> np.ndarray:
        voltage = np.asarray(voltage, dtype=float)
        z = (self.mean - voltage) / (self.sigma * np.sqrt(2.0))
        return 0.5 * (1.0 + _erf(z))

    def vmin_from_normal_scores(self, scores: np.ndarray) -> np.ndarray:
        return self.mean + self.sigma * np.asarray(scores, dtype=float)

    def spec_key(self) -> dict:
        return {
            "model": "gaussian",
            "mean": self.mean,
            "sigma": self.sigma,
            "preferred_one_probability": self.preferred_one_probability,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GaussianVminModel(mean={self.mean}, sigma={self.sigma})"


class EmpiricalVminModel(BitcellVariationModel):
    """V_min,read sampled to match an empirical failure-rate curve.

    ``anchors`` is a sequence of ``(voltage, failure_rate)`` pairs; the
    failure rate must decrease with voltage.  Cells are sampled by
    inverse-transform sampling of that curve (log-linear interpolation in the
    rate axis), so the population's failure-rate-vs-voltage statistics match
    the anchors by construction.
    """

    def __init__(
        self,
        anchors: tuple[tuple[float, float], ...] = calibration.FIG9A_ANCHORS,
        preferred_one_probability: float = 0.5,
    ) -> None:
        pairs = sorted((float(v), float(r)) for v, r in anchors)
        if len(pairs) < 2:
            raise ValueError("at least two anchor points are required")
        voltages = np.array([p[0] for p in pairs])
        rates = np.array([p[1] for p in pairs])
        if np.any(rates <= 0.0) or np.any(rates > 1.0):
            raise ValueError("failure rates must be in (0, 1]")
        if np.any(np.diff(rates) >= 0):
            raise ValueError("failure rate must strictly decrease with voltage")
        self.voltages = voltages
        self.rates = rates
        self.preferred_one_probability = float(preferred_one_probability)

    def failure_probability(self, voltage: float | np.ndarray) -> np.ndarray:
        voltage = np.asarray(voltage, dtype=float)
        log_rates = np.log10(self.rates)
        interp = np.interp(voltage, self.voltages, log_rates)
        result = 10.0**interp
        # outside the anchored range, clamp to the extreme anchor rates
        result = np.where(voltage <= self.voltages[0], self.rates[0], result)
        result = np.where(voltage >= self.voltages[-1], self.rates[-1], result)
        return result

    def sample(
        self, num_words: int, word_bits: int, rng: np.random.Generator
    ) -> BitcellPopulation:
        if num_words <= 0 or word_bits <= 0:
            raise ValueError("array geometry must be positive")
        # Inverse-transform sampling: failure_probability(V) is the CDF of
        # Vmin evaluated "from above" (a cell fails at V when Vmin > V), i.e.
        # P(Vmin > V) = rate(V).  So Vmin = rate^{-1}(u) for u ~ U(0, 1].
        u = rng.random(size=(num_words, word_bits))
        u = np.clip(u, self.rates[-1], self.rates[0])
        # interpolate voltage as a function of log-rate (monotone decreasing)
        log_rates = np.log10(self.rates)
        vmin = np.interp(np.log10(u), log_rates[::-1], self.voltages[::-1])
        preferred = (
            rng.random(size=(num_words, word_bits)) < self.preferred_one_probability
        ).astype(np.uint8)
        return BitcellPopulation(vmin_read=vmin, preferred_state=preferred)

    def vmin_from_normal_scores(self, scores: np.ndarray) -> np.ndarray:
        # A cell fails at V when Vmin > V, so the survival transform
        # u = P(Z > z) = Φ(−z) maps a standard-normal score to the uniform
        # that the i.i.d. sampler would have drawn, then the same clipped
        # log-rate inverse transform recovers Vmin with identical marginals.
        scores = np.asarray(scores, dtype=float)
        u = 0.5 * (1.0 + _erf(-scores / np.sqrt(2.0)))
        u = np.clip(u, self.rates[-1], self.rates[0])
        log_rates = np.log10(self.rates)
        return np.interp(np.log10(u), log_rates[::-1], self.voltages[::-1])

    def spec_key(self) -> dict:
        return {
            "model": "empirical",
            "anchors": tuple(
                (float(v), float(r)) for v, r in zip(self.voltages, self.rates)
            ),
            "preferred_one_probability": self.preferred_one_probability,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"EmpiricalVminModel({len(self.voltages)} anchors)"


class CorrelatedVminModel(BitcellVariationModel):
    """Spatially correlated V_min,read via a Gaussian-copula decomposition.

    Real banks share peripherals — wordline drivers per row, sense amps and
    write drivers per column group, and die-level gradients — so cell
    failures cluster.  This model decomposes each cell's standard-normal
    score into shared components plus an i.i.d. residual:

        z = √row·Z_row + √column_group·Z_group + √region·Z_region
            + √(1 − row − column_group − region)·Z_cell

    Each component is standard normal and independent, so ``z`` is exactly
    standard normal and the marginal V_min distribution (mapped through
    ``base.vmin_from_normal_scores``) matches the i.i.d. ``base`` model for
    any strengths — correlation redistributes variance, it never inflates it.

    With all strengths zero, :meth:`sample` delegates verbatim to
    ``base.sample`` so the output is bit-identical to the legacy models.
    Components draw from independent child generators obtained via
    ``rng.spawn``, so samples are reproducible and geometry-stable per
    component.
    """

    def __init__(
        self,
        base: BitcellVariationModel | None = None,
        row: float = 0.0,
        column_group: float = 0.0,
        region: float = 0.0,
        column_group_size: int = 4,
        num_regions: int = 4,
    ) -> None:
        self.base = base if base is not None else EmpiricalVminModel()
        for name, value in (
            ("row", row), ("column_group", column_group), ("region", region)
        ):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} strength must be in [0, 1)")
        if row + column_group + region >= 1.0:
            raise ValueError("correlation strengths must sum to less than 1")
        if column_group_size <= 0:
            raise ValueError("column_group_size must be positive")
        if num_regions <= 0:
            raise ValueError("num_regions must be positive")
        self.row = float(row)
        self.column_group = float(column_group)
        self.region = float(region)
        self.column_group_size = int(column_group_size)
        self.num_regions = int(num_regions)

    @property
    def is_iid(self) -> bool:
        return self.row == 0.0 and self.column_group == 0.0 and self.region == 0.0

    def sample(
        self, num_words: int, word_bits: int, rng: np.random.Generator
    ) -> BitcellPopulation:
        if num_words <= 0 or word_bits <= 0:
            raise ValueError("array geometry must be positive")
        if self.is_iid:
            # bit-identical to the legacy i.i.d. path: same generator, same
            # draw order, no spawned children
            return self.base.sample(num_words, word_bits, rng)
        row_rng, group_rng, region_rng, cell_rng, preferred_rng = rng.spawn(5)
        num_groups = -(-word_bits // self.column_group_size)
        regions = min(self.num_regions, num_words)
        residual = 1.0 - self.row - self.column_group - self.region
        scores = np.sqrt(residual) * cell_rng.standard_normal(
            size=(num_words, word_bits)
        )
        if self.row > 0.0:
            scores += np.sqrt(self.row) * row_rng.standard_normal(
                size=(num_words, 1)
            )
        if self.column_group > 0.0:
            group_scores = group_rng.standard_normal(size=num_groups)
            group_of_bit = np.arange(word_bits) // self.column_group_size
            scores += np.sqrt(self.column_group) * group_scores[group_of_bit]
        if self.region > 0.0:
            region_scores = region_rng.standard_normal(size=regions)
            # contiguous word-address blocks
            region_of_word = np.minimum(
                np.arange(num_words) * regions // num_words, regions - 1
            )
            scores += np.sqrt(self.region) * region_scores[region_of_word][:, None]
        vmin = self.base.vmin_from_normal_scores(scores)
        preferred_p = getattr(self.base, "preferred_one_probability", 0.5)
        preferred = (
            preferred_rng.random(size=(num_words, word_bits)) < preferred_p
        ).astype(np.uint8)
        return BitcellPopulation(vmin_read=vmin, preferred_state=preferred)

    def failure_probability(self, voltage: float | np.ndarray) -> np.ndarray:
        # the copula preserves marginals exactly, so the population failure
        # rate at any voltage is the base model's
        return self.base.failure_probability(voltage)

    def spec_key(self) -> dict:
        return {
            "model": "correlated",
            "base": self.base.spec_key(),
            "row": self.row,
            "column_group": self.column_group,
            "region": self.region,
            "column_group_size": self.column_group_size,
            "num_regions": self.num_regions,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CorrelatedVminModel(row={self.row}, column_group={self.column_group}, "
            f"region={self.region}, base={self.base!r})"
        )


def _erf(x: np.ndarray) -> np.ndarray:
    """Vectorized error function (Abramowitz & Stegun 7.1.26 approximation).

    Avoids a scipy dependency in the core library; max absolute error is
    below 1.5e-7, far tighter than the calibration accuracy of the model.
    """
    x = np.asarray(x, dtype=float)
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-ax * ax))
