"""SNNAC accelerator simulator: PEs, systolic ring, AFU, microcode compiler,
NPU, SoC wrapper, and the calibrated energy/frequency models."""

from .afu import ActivationFunctionUnit, PiecewiseLinearFunction
from .energy import (
    NOMINAL_OPERATING_POINT,
    PAPER_LOGIC_ANCHORS,
    PAPER_SRAM_ANCHORS,
    EnergyBreakdown,
    FrequencyModel,
    LogicEnergyModel,
    OperatingPoint,
    SnnacEnergyModel,
    SramEnergyModel,
)
from .microcode import (
    CapacityReport,
    LayerPlacement,
    LayerProgram,
    MicrocodeCompiler,
    NeuronPlacement,
    NpuProgram,
    PlacementSegment,
    WeightPlacement,
    plan_capacity,
)
from .npu import InferenceStats, Npu
from .pe import ProcessingElement
from .soc import (
    CHIP_CHARACTERISTICS,
    Microcontroller,
    Snnac,
    SnnacConfig,
    chip_characteristics,
)
from .systolic import LayerExecutionStats, SystolicRing, evaluate_layer_words

__all__ = [
    "ActivationFunctionUnit",
    "PiecewiseLinearFunction",
    "EnergyBreakdown",
    "FrequencyModel",
    "LogicEnergyModel",
    "SramEnergyModel",
    "SnnacEnergyModel",
    "OperatingPoint",
    "NOMINAL_OPERATING_POINT",
    "PAPER_LOGIC_ANCHORS",
    "PAPER_SRAM_ANCHORS",
    "PlacementSegment",
    "NeuronPlacement",
    "LayerPlacement",
    "WeightPlacement",
    "CapacityReport",
    "plan_capacity",
    "LayerProgram",
    "NpuProgram",
    "MicrocodeCompiler",
    "InferenceStats",
    "Npu",
    "ProcessingElement",
    "SystolicRing",
    "LayerExecutionStats",
    "evaluate_layer_words",
    "Microcontroller",
    "Snnac",
    "SnnacConfig",
    "CHIP_CHARACTERISTICS",
    "chip_characteristics",
]
