"""SNNAC accelerator simulator: PEs, systolic ring, AFU, microcode compiler,
NPU, SoC wrapper, and the calibrated energy/frequency models."""

from .afu import ActivationFunctionUnit, PiecewiseLinearFunction
from .energy import (
    NOMINAL_OPERATING_POINT,
    PAPER_LOGIC_ANCHORS,
    PAPER_SRAM_ANCHORS,
    EnergyBreakdown,
    FrequencyModel,
    LogicEnergyModel,
    OperatingPoint,
    SnnacEnergyModel,
    SramEnergyModel,
)
from .microcode import (
    LayerPlacement,
    LayerProgram,
    MicrocodeCompiler,
    NeuronPlacement,
    NpuProgram,
    WeightPlacement,
)
from .npu import InferenceStats, Npu
from .pe import ProcessingElement
from .soc import CHIP_CHARACTERISTICS, Microcontroller, Snnac, SnnacConfig
from .systolic import LayerExecutionStats, SystolicRing

__all__ = [
    "ActivationFunctionUnit",
    "PiecewiseLinearFunction",
    "EnergyBreakdown",
    "FrequencyModel",
    "LogicEnergyModel",
    "SramEnergyModel",
    "SnnacEnergyModel",
    "OperatingPoint",
    "NOMINAL_OPERATING_POINT",
    "PAPER_LOGIC_ANCHORS",
    "PAPER_SRAM_ANCHORS",
    "NeuronPlacement",
    "LayerPlacement",
    "WeightPlacement",
    "LayerProgram",
    "NpuProgram",
    "MicrocodeCompiler",
    "InferenceStats",
    "Npu",
    "ProcessingElement",
    "SystolicRing",
    "LayerExecutionStats",
    "Microcontroller",
    "Snnac",
    "SnnacConfig",
    "CHIP_CHARACTERISTICS",
]
