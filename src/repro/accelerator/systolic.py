"""1-D systolic ring of processing elements.

SNNAC's eight PEs form a one-dimensional systolic ring: input activations
stream past the PEs, each PE accumulating the inner product for the output
neuron currently assigned to it.  Layers wider than the ring are
time-multiplexed over multiple passes, with partial results collected by an
accumulator.

The model executes the same arithmetic pass structure (and counts the same
work) without simulating individual pipeline registers; accuracy-relevant
behaviour — which SRAM words are read, in which order, with what fixed-point
semantics — matches the real dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quant.fixed_point import FixedPointFormat
from ..sram.array import WeightMemorySystem
from .microcode import LayerProgram, WeightPlacement
from .pe import ProcessingElement

__all__ = ["LayerExecutionStats", "SystolicRing"]


@dataclass
class LayerExecutionStats:
    """Work performed while executing one layer on one input batch."""

    layer_index: int
    batch_size: int
    passes: int
    cycles: int
    macs: int
    sram_reads: int


class SystolicRing:
    """The PE ring plus its accumulator.

    Parameters
    ----------
    memory:
        Per-PE weight banks (one bank per PE).
    data_format:
        Fixed-point format of the activation datapath.
    pipeline_overhead:
        Per-pass overhead cycles (must match the compiler's assumption for
        the cycle accounting to line up).
    """

    def __init__(
        self,
        memory: WeightMemorySystem,
        data_format: FixedPointFormat | None = None,
        pipeline_overhead: int = 4,
    ) -> None:
        self.memory = memory
        self.data_format = data_format or FixedPointFormat(16, 12)
        self.pipeline_overhead = int(pipeline_overhead)
        self.pes = [
            ProcessingElement(index, bank, data_format=self.data_format)
            for index, bank in enumerate(memory)
        ]

    @property
    def num_pes(self) -> int:
        return len(self.pes)

    # ------------------------------------------------------------------

    def compute_layer(
        self,
        inputs: np.ndarray,
        program: LayerProgram,
        placement: WeightPlacement,
        voltage: float,
        temperature: float = 25.0,
    ) -> tuple[np.ndarray, LayerExecutionStats]:
        """Execute one layer on a batch of inputs.

        Returns the pre-activation outputs, shape ``(batch, out_features)``,
        plus execution statistics.  Weight words are fetched from the per-PE
        SRAM banks at the requested operating point, so voltage overscaling
        corrupts exactly the weights the fault map predicts.
        """
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim == 1:
            inputs = inputs.reshape(1, -1)
        if inputs.shape[1] != program.in_features:
            raise ValueError(
                f"layer expects {program.in_features} inputs, got {inputs.shape[1]}"
            )
        layer_placement = placement.layers[program.layer_index]
        batch = inputs.shape[0]
        outputs = np.zeros((batch, program.out_features), dtype=float)
        reads_before = sum(bank.read_count for bank in self.memory)

        weight_format = program.quantization.weight_format
        bias_format = program.quantization.bias_format

        # One SRAM read pass and one matmul per PE: all neurons a PE hosts
        # for this layer are fetched and evaluated together.  Read-disturb
        # corruption is per-cell and order-independent, so the fetched words
        # (and the persisted corruption) are bit-identical to walking the
        # ring neuron by neuron; the MAC sums share the same operands but a
        # BLAS gemm may reduce in a different order than per-neuron gemv, so
        # accumulations agree only to the last ulp on some builds.  The
        # cycle accounting below still reflects the pass structure.
        for pe_index, pe in enumerate(self.pes):
            assigned = [
                neuron for neuron in layer_placement.neurons if neuron.pe == pe_index
            ]
            if not assigned:
                continue
            base_addresses = np.array([neuron.base_address for neuron in assigned])
            weights, biases = pe.fetch_neuron_block(
                base_addresses,
                program.in_features,
                weight_format,
                bias_format,
                voltage=voltage,
                temperature=temperature,
            )
            columns = [neuron.neuron for neuron in assigned]
            outputs[:, columns] = pe.mac_matrix(inputs, weights, biases)

        passes = int(np.ceil(program.out_features / self.num_pes))
        sram_reads = sum(bank.read_count for bank in self.memory) - reads_before
        cycles = passes * (program.in_features + 1 + self.pipeline_overhead)
        stats = LayerExecutionStats(
            layer_index=program.layer_index,
            batch_size=batch,
            passes=passes,
            cycles=cycles,
            macs=program.in_features * program.out_features * batch,
            sram_reads=sram_reads,
        )
        return outputs, stats

    def reset_counters(self) -> None:
        for pe in self.pes:
            pe.reset_counters()
