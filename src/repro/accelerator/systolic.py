"""1-D systolic ring of processing elements.

SNNAC's PEs form a one-dimensional systolic ring: input activations stream
past the PEs, each PE accumulating inner products for the output neurons
whose weights live in its bank.  Layers wider than the ring are
time-multiplexed over multiple passes, with partial results collected by an
accumulator; a *spilled* neuron (its parameter block split across several
address segments by a capacity-constrained placement) contributes one
partial inner product per segment, accumulated exactly like an extra pass.

The model executes the same arithmetic pass structure (and counts the same
work) without simulating individual pipeline registers; accuracy-relevant
behaviour — which SRAM words are read, with what fixed-point semantics —
matches the real dataflow.  The layer's MAC reduction is performed once over
the assembled full weight matrix, so the computed floats are **independent
of the chip geometry**: any ``(num_pes, words_per_bank)`` that fits the
model produces bit-identical outputs from the same stored words (see
:func:`evaluate_layer_words`, which the NPU's software reference path shares).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quant.fixed_point import FixedPointFormat
from ..sram.array import WeightMemorySystem
from .microcode import LayerProgram, WeightPlacement
from .pe import ProcessingElement

__all__ = [
    "LayerExecutionStats",
    "SystolicRing",
    "decode_layer_words",
    "evaluate_decoded",
    "evaluate_layer_words",
]


@dataclass
class LayerExecutionStats:
    """Work performed while executing one layer on one input batch."""

    layer_index: int
    batch_size: int
    passes: int
    cycles: int
    macs: int
    sram_reads: int


def decode_layer_words(
    word_matrix: np.ndarray, program: LayerProgram
) -> tuple[np.ndarray, np.ndarray]:
    """Decode a layer's raw SRAM word image into float ``(biases, weights)``.

    ``word_matrix`` has shape ``(out_features, fan_in + 1)`` — column 0 is
    the bias word, column ``1 + i`` the weight word from input ``i``.  The
    decode is the ``word_to_float`` cost the NPU memoizes per content epoch
    (:class:`~repro.accelerator.npu.Npu`), so it lives in its own function
    the memo can wrap.
    """
    biases = program.quantization.bias_format.word_to_float(word_matrix[:, 0])
    weights = program.quantization.weight_format.word_to_float(word_matrix[:, 1:])
    return biases, weights


def evaluate_decoded(
    inputs: np.ndarray,
    biases: np.ndarray,
    weights: np.ndarray,
    data_format: FixedPointFormat,
    inputs_quantized: bool = False,
) -> np.ndarray:
    """Pre-activation outputs from an already-decoded float weight image.

    ``inputs_quantized=True`` promises the inputs already sit on the data
    format's grid (quantization is idempotent, so this only skips a
    redundant re-quantization — the NPU quantizes activations at the layer
    boundaries already).
    """
    inputs = np.asarray(inputs, dtype=float)
    if inputs.ndim == 1:
        inputs = inputs.reshape(1, -1)
    if inputs.shape[1] != weights.shape[1]:
        raise ValueError(
            f"layer expects {weights.shape[1]} inputs, got {inputs.shape[1]}"
        )
    quantized_inputs = inputs if inputs_quantized else data_format.quantize(inputs)
    return quantized_inputs @ weights.T + biases


def evaluate_layer_words(
    inputs: np.ndarray,
    word_matrix: np.ndarray,
    program: LayerProgram,
    data_format: FixedPointFormat,
) -> np.ndarray:
    """Pre-activation outputs of one layer from its raw SRAM word image.

    This is the single arithmetic path shared by the hardware ring (which
    fills the matrix from per-PE SRAM reads) and the NPU's software reference
    (which fills it from the pristine quantized words), so the two are
    bit-identical by construction whenever the words agree.  Composed of
    :func:`decode_layer_words` and :func:`evaluate_decoded` so the NPU can
    memoize the decode while keeping this oracle intact.
    """
    inputs = np.asarray(inputs, dtype=float)
    if inputs.ndim == 1:
        inputs = inputs.reshape(1, -1)
    if inputs.shape[1] != program.in_features:
        raise ValueError(
            f"layer expects {program.in_features} inputs, got {inputs.shape[1]}"
        )
    biases, weights = decode_layer_words(word_matrix, program)
    return evaluate_decoded(inputs, biases, weights, data_format)


class SystolicRing:
    """The PE ring plus its accumulator.

    Parameters
    ----------
    memory:
        Per-PE weight banks (one bank per PE).
    data_format:
        Fixed-point format of the activation datapath.
    pipeline_overhead:
        Per-pass overhead cycles (must match the compiler's assumption for
        the cycle accounting to line up).
    """

    def __init__(
        self,
        memory: WeightMemorySystem,
        data_format: FixedPointFormat | None = None,
        pipeline_overhead: int = 4,
    ) -> None:
        self.memory = memory
        self.data_format = data_format or FixedPointFormat(16, 12)
        self.pipeline_overhead = int(pipeline_overhead)
        self.pes = [
            ProcessingElement(index, bank, data_format=self.data_format)
            for index, bank in enumerate(memory)
        ]

    @property
    def num_pes(self) -> int:
        return len(self.pes)

    # ------------------------------------------------------------------

    def compute_layer(
        self,
        inputs: np.ndarray,
        program: LayerProgram,
        placement: WeightPlacement,
        voltage: float,
        temperature: float = 25.0,
        decoder=None,
        inputs_quantized: bool = False,
    ) -> tuple[np.ndarray, LayerExecutionStats]:
        """Execute one layer on a batch of inputs.

        Returns the pre-activation outputs, shape ``(batch, out_features)``,
        plus execution statistics.  Weight words are fetched from the per-PE
        SRAM banks at the requested operating point, so voltage overscaling
        corrupts exactly the weights the fault map predicts.

        ``decoder`` optionally replaces the raw ``word_to_float`` decode: a
        callable ``decoder(program, word_matrix, epochs) -> (biases,
        weights)`` where ``epochs`` are the hosting banks' content epochs
        *after* the fetch (the NPU passes its memoizing decoder here; the
        default decodes unconditionally).
        """
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim == 1:
            inputs = inputs.reshape(1, -1)
        if inputs.shape[1] != program.in_features:
            raise ValueError(
                f"layer expects {program.in_features} inputs, got {inputs.shape[1]}"
            )
        batch = inputs.shape[0]
        reads_before = sum(bank.read_count for bank in self.memory)

        # Plan-compiled fetch: one vectorized SRAM read plus one fancy-indexed
        # scatter per hosting PE (read-disturb corruption is per-cell and
        # order-independent, so the fetched words — and the persisted
        # corruption — are bit-identical to walking the ring segment by
        # segment).  The scatter fills the layer's full (out, fan_in + 1)
        # word image, which is reduced once, so the float outputs do not
        # depend on which PE hosts which words.
        plan = placement.gather_plan(program.layer_index)
        flat = np.zeros(
            program.out_features * (program.in_features + 1), dtype=np.uint64
        )
        for pe_index, addresses, scatter, weight_words in plan.per_pe():
            pe = self.pes[pe_index]
            flat[scatter] = pe.weight_bank.read_planned(
                addresses, voltage, temperature
            )
            pe.mac_count += batch * weight_words
        word_matrix = flat.reshape(program.out_features, program.in_features + 1)

        epochs = tuple(
            self.pes[pe_index].weight_bank.content_epoch
            for pe_index in plan.pe_indices
        )
        if decoder is not None:
            biases, weights = decoder(program, word_matrix, epochs)
        else:
            biases, weights = decode_layer_words(word_matrix, program)
        outputs = evaluate_decoded(
            inputs, biases, weights, self.data_format, inputs_quantized=inputs_quantized
        )

        passes = plan.passes
        sram_reads = sum(bank.read_count for bank in self.memory) - reads_before
        cycles = passes * (program.in_features + 1 + self.pipeline_overhead)
        stats = LayerExecutionStats(
            layer_index=program.layer_index,
            batch_size=batch,
            passes=passes,
            cycles=cycles,
            macs=program.in_features * program.out_features * batch,
            sram_reads=sram_reads,
        )
        return outputs, stats

    def reset_counters(self) -> None:
        for pe in self.pes:
            pe.reset_counters()
