"""1-D systolic ring of processing elements.

SNNAC's eight PEs form a one-dimensional systolic ring: input activations
stream past the PEs, each PE accumulating the inner product for the output
neuron currently assigned to it.  Layers wider than the ring are
time-multiplexed over multiple passes, with partial results collected by an
accumulator.

The model executes the same arithmetic pass structure (and counts the same
work) without simulating individual pipeline registers; accuracy-relevant
behaviour — which SRAM words are read, in which order, with what fixed-point
semantics — matches the real dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quant.fixed_point import FixedPointFormat
from ..sram.array import WeightMemorySystem
from .microcode import LayerProgram, WeightPlacement
from .pe import ProcessingElement

__all__ = ["LayerExecutionStats", "SystolicRing"]


@dataclass
class LayerExecutionStats:
    """Work performed while executing one layer on one input batch."""

    layer_index: int
    batch_size: int
    passes: int
    cycles: int
    macs: int
    sram_reads: int


class SystolicRing:
    """The PE ring plus its accumulator.

    Parameters
    ----------
    memory:
        Per-PE weight banks (one bank per PE).
    data_format:
        Fixed-point format of the activation datapath.
    pipeline_overhead:
        Per-pass overhead cycles (must match the compiler's assumption for
        the cycle accounting to line up).
    """

    def __init__(
        self,
        memory: WeightMemorySystem,
        data_format: FixedPointFormat | None = None,
        pipeline_overhead: int = 4,
    ) -> None:
        self.memory = memory
        self.data_format = data_format or FixedPointFormat(16, 12)
        self.pipeline_overhead = int(pipeline_overhead)
        self.pes = [
            ProcessingElement(index, bank, data_format=self.data_format)
            for index, bank in enumerate(memory)
        ]

    @property
    def num_pes(self) -> int:
        return len(self.pes)

    # ------------------------------------------------------------------

    def compute_layer(
        self,
        inputs: np.ndarray,
        program: LayerProgram,
        placement: WeightPlacement,
        voltage: float,
        temperature: float = 25.0,
    ) -> tuple[np.ndarray, LayerExecutionStats]:
        """Execute one layer on a batch of inputs.

        Returns the pre-activation outputs, shape ``(batch, out_features)``,
        plus execution statistics.  Weight words are fetched from the per-PE
        SRAM banks at the requested operating point, so voltage overscaling
        corrupts exactly the weights the fault map predicts.
        """
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim == 1:
            inputs = inputs.reshape(1, -1)
        if inputs.shape[1] != program.in_features:
            raise ValueError(
                f"layer expects {program.in_features} inputs, got {inputs.shape[1]}"
            )
        layer_placement = placement.layers[program.layer_index]
        batch = inputs.shape[0]
        outputs = np.zeros((batch, program.out_features), dtype=float)
        reads_before = sum(bank.read_count for bank in self.memory)

        weight_format = program.quantization.weight_format
        bias_format = program.quantization.bias_format

        passes = 0
        for pass_start in range(0, program.out_features, self.num_pes):
            passes += 1
            pass_neurons = range(
                pass_start, min(pass_start + self.num_pes, program.out_features)
            )
            for neuron_index in pass_neurons:
                neuron = layer_placement.neuron(neuron_index)
                pe = self.pes[neuron.pe]
                weights, bias = pe.fetch_neuron_parameters(
                    neuron.base_address,
                    neuron.fan_in,
                    weight_format,
                    bias_format,
                    voltage=voltage,
                    temperature=temperature,
                )
                outputs[:, neuron_index] = pe.mac_batch(inputs, weights, bias)

        sram_reads = sum(bank.read_count for bank in self.memory) - reads_before
        cycles = passes * (program.in_features + 1 + self.pipeline_overhead)
        stats = LayerExecutionStats(
            layer_index=program.layer_index,
            batch_size=batch,
            passes=passes,
            cycles=cycles,
            macs=program.in_features * program.out_features * batch,
            sram_reads=sram_reads,
        )
        return outputs, stats

    def reset_counters(self) -> None:
        for pe in self.pes:
            pe.reset_counters()
