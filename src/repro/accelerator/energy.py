"""Energy, power, and frequency models for the SNNAC test chip.

The paper reports per-cycle energy measurements from test-chip current
measurements (Fig. 11, Table II).  We model each voltage domain (logic and
weight SRAM) as a dynamic switching term plus a leakage term:

``E_cycle(V, f) = E_dyn(V) + P_leak(V) / f``

* Logic dynamic energy follows the usual ``C_eff · V²`` law; the SRAM dynamic
  energy is interpolated (log–log) through the paper's measured anchor
  points, because the measured SRAM scaling is steeper than V² at low voltage
  (bit-line swing and periphery effects the paper does not decompose).
* Leakage power follows ``P_leak(V) = P₀ · (V / V_nom) · exp((V − V_nom)/v₀)``
  — the standard DIBL-driven exponential reduction with voltage.
* Maximum operating frequency follows an alpha-power-law delay model
  calibrated to the chip's two reported (voltage, frequency) points
  (0.9 V / 250 MHz and 0.55 V / 17.8 MHz).

All model constants are calibrated from the paper's measurements (the anchor
tables below); the Table II / Fig. 11 benchmarks *recompute* the scenario
energies from this model rather than echoing the paper's numbers.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

__all__ = [
    "OperatingPoint",
    "EnergyBreakdown",
    "FrequencyModel",
    "LogicEnergyModel",
    "SramEnergyModel",
    "SnnacEnergyModel",
    "PAPER_LOGIC_ANCHORS",
    "PAPER_SRAM_ANCHORS",
    "NOMINAL_OPERATING_POINT",
    "REFERENCE_NUM_PES",
    "REFERENCE_WEIGHT_SRAM_BITS",
]

# --------------------------------------------------------------------------
# Paper-reported anchor measurements (voltage [V], frequency [Hz], pJ/cycle).
# --------------------------------------------------------------------------

#: Logic energy anchors from Table II.
PAPER_LOGIC_ANCHORS: tuple[tuple[float, float, float], ...] = (
    (0.90, 250.0e6, 30.58),
    (0.55, 17.8e6, 12.73),
)

#: SRAM energy anchors from Table II (HighPerf, EnOpt_split, EnOpt_joint and
#: the nominal column).
PAPER_SRAM_ANCHORS: tuple[tuple[float, float, float], ...] = (
    (0.50, 17.8e6, 7.24),
    (0.55, 17.8e6, 7.86),
    (0.65, 250.0e6, 18.37),
    (0.90, 250.0e6, 36.50),
)

#: Nominal SRAM leakage power (W) implied by the anchor decomposition.
_SRAM_LEAKAGE_NOMINAL = 5.0e-5


@dataclass(frozen=True)
class OperatingPoint:
    """A (logic voltage, SRAM voltage, clock frequency) setting."""

    logic_voltage: float
    sram_voltage: float
    frequency: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.logic_voltage <= 0 or self.sram_voltage <= 0:
            raise ValueError("voltages must be positive")
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")


#: Nominal chip operating point (0.9 V unified, 250 MHz).
NOMINAL_OPERATING_POINT = OperatingPoint(0.9, 0.9, 250.0e6, name="nominal")


# --------------------------------------------------------------------------
# Fabricated reference geometry the anchors were measured at: 8 PEs, each
# with a 512x16-bit weight bank.  Geometry-parametric models scale the
# calibrated constants linearly from this point (see
# ``SnnacEnergyModel.for_geometry``).
# --------------------------------------------------------------------------

REFERENCE_NUM_PES = 8
REFERENCE_WEIGHT_SRAM_BITS = 8 * 512 * 16


@dataclass
class EnergyBreakdown:
    """Per-cycle energy decomposition, all values in picojoules."""

    logic_dynamic: float
    logic_leakage: float
    sram_dynamic: float
    sram_leakage: float

    @property
    def logic_total(self) -> float:
        return self.logic_dynamic + self.logic_leakage

    @property
    def sram_total(self) -> float:
        return self.sram_dynamic + self.sram_leakage

    @property
    def total(self) -> float:
        return self.logic_total + self.sram_total

    @property
    def leakage_total(self) -> float:
        return self.logic_leakage + self.sram_leakage

    @property
    def dynamic_total(self) -> float:
        return self.logic_dynamic + self.sram_dynamic


class FrequencyModel:
    """Alpha-power-law maximum-frequency model ``f_max ∝ (V − V_th)^α / V``."""

    def __init__(self, scale: float, threshold: float, alpha: float = 2.0) -> None:
        if scale <= 0 or alpha <= 0:
            raise ValueError("scale and alpha must be positive")
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.scale = float(scale)
        self.threshold = float(threshold)
        self.alpha = float(alpha)

    def fmax(self, voltage: float | np.ndarray) -> np.ndarray:
        """Maximum clock frequency at a given supply voltage (Hz)."""
        voltage = np.asarray(voltage, dtype=float)
        overdrive = np.maximum(voltage - self.threshold, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            freq = self.scale * overdrive**self.alpha / voltage
        return np.where(overdrive > 0, freq, 0.0)

    def min_voltage_for(self, frequency: float, tolerance: float = 1e-4) -> float:
        """Smallest voltage that sustains ``frequency`` (bisection search)."""
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        low, high = self.threshold + 1e-6, 2.0
        if self.fmax(high) < frequency:
            raise ValueError("frequency unreachable within the modelled voltage range")
        while high - low > tolerance:
            mid = 0.5 * (low + high)
            if self.fmax(mid) >= frequency:
                high = mid
            else:
                low = mid
        return high

    @classmethod
    def calibrate(
        cls,
        anchor_a: tuple[float, float],
        anchor_b: tuple[float, float],
        alpha: float = 2.0,
    ) -> "FrequencyModel":
        """Fit the threshold and scale to two (voltage, frequency) anchors."""
        (v_a, f_a), (v_b, f_b) = anchor_a, anchor_b
        if v_a == v_b:
            raise ValueError("anchors must use distinct voltages")
        # Solve (v_a - t)^alpha / v_a * s = f_a and likewise for b, for t by
        # bisection on the ratio equation, then recover s.
        target = (f_b * v_b) / (f_a * v_a)

        def ratio(threshold: float) -> float:
            return ((v_b - threshold) / (v_a - threshold)) ** alpha

        low, high = 0.0, min(v_a, v_b) - 1e-6
        for _ in range(200):
            mid = 0.5 * (low + high)
            if ratio(mid) > target:
                low = mid
            else:
                high = mid
        threshold = 0.5 * (low + high)
        scale = f_a * v_a / (v_a - threshold) ** alpha
        return cls(scale=scale, threshold=threshold, alpha=alpha)


class _LeakageModel:
    """Exponential leakage-power model ``P(V) = P₀ (V/V_nom) exp((V−V_nom)/v₀)``."""

    def __init__(self, nominal_power: float, nominal_voltage: float = 0.9, v0: float = 0.25):
        if nominal_power < 0 or nominal_voltage <= 0 or v0 <= 0:
            raise ValueError("invalid leakage parameters")
        self.nominal_power = float(nominal_power)
        self.nominal_voltage = float(nominal_voltage)
        self.v0 = float(v0)

    def power(self, voltage: float | np.ndarray) -> np.ndarray:
        voltage = np.asarray(voltage, dtype=float)
        return (
            self.nominal_power
            * (voltage / self.nominal_voltage)
            * np.exp((voltage - self.nominal_voltage) / self.v0)
        )

    def energy_per_cycle(self, voltage: float | np.ndarray, frequency: float) -> np.ndarray:
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        return self.power(voltage) / float(frequency)


class LogicEnergyModel:
    """Logic-domain energy: ``C_eff V²`` dynamic term plus leakage.

    The default constants are the closed-form calibration to the two logic
    anchors in Table II (see :func:`LogicEnergyModel.calibrate`).
    """

    def __init__(
        self,
        effective_capacitance: float = 36.83e-12,
        leakage_power_nominal: float = 2.087e-4,
        leakage_v0: float = 0.25,
        nominal_voltage: float = 0.9,
    ) -> None:
        if effective_capacitance <= 0:
            raise ValueError("effective_capacitance must be positive")
        self.effective_capacitance = float(effective_capacitance)
        self.leakage = _LeakageModel(leakage_power_nominal, nominal_voltage, leakage_v0)

    def dynamic_energy(self, voltage: float | np.ndarray) -> np.ndarray:
        """Dynamic energy per cycle, joules."""
        voltage = np.asarray(voltage, dtype=float)
        return self.effective_capacitance * voltage**2

    def leakage_energy(self, voltage: float | np.ndarray, frequency: float) -> np.ndarray:
        """Leakage energy per cycle, joules."""
        return self.leakage.energy_per_cycle(voltage, frequency)

    def energy_per_cycle(self, voltage: float | np.ndarray, frequency: float) -> np.ndarray:
        return self.dynamic_energy(voltage) + self.leakage_energy(voltage, frequency)

    @classmethod
    def calibrate(
        cls,
        anchors: tuple[tuple[float, float, float], ...] = PAPER_LOGIC_ANCHORS,
        leakage_v0: float = 0.25,
        nominal_voltage: float = 0.9,
    ) -> "LogicEnergyModel":
        """Solve the two-anchor linear system for C_eff and nominal leakage."""
        if len(anchors) != 2:
            raise ValueError("logic calibration expects exactly two anchors")
        rows = []
        rhs = []
        for voltage, frequency, picojoules in anchors:
            leak_shape = (voltage / nominal_voltage) * np.exp(
                (voltage - nominal_voltage) / leakage_v0
            )
            rows.append([voltage**2, leak_shape / frequency])
            rhs.append(picojoules * 1e-12)
        solution = np.linalg.solve(np.asarray(rows), np.asarray(rhs))
        capacitance, leakage_nominal = float(solution[0]), float(solution[1])
        if capacitance <= 0 or leakage_nominal < 0:
            raise ValueError("calibration produced non-physical constants")
        return cls(capacitance, leakage_nominal, leakage_v0, nominal_voltage)


class SramEnergyModel:
    """Weight-SRAM energy: measured-anchor interpolation plus leakage.

    Dynamic (access) energy is interpolated log–log through the paper's
    measured per-cycle energies after subtracting the modelled leakage
    contribution at each anchor's operating point, so the model reproduces
    the anchors exactly while remaining monotone in voltage.
    """

    def __init__(
        self,
        anchors: tuple[tuple[float, float, float], ...] = PAPER_SRAM_ANCHORS,
        leakage_power_nominal: float = _SRAM_LEAKAGE_NOMINAL,
        leakage_v0: float = 0.25,
        nominal_voltage: float = 0.9,
    ) -> None:
        if len(anchors) < 2:
            raise ValueError("at least two SRAM anchors are required")
        self.leakage = _LeakageModel(leakage_power_nominal, nominal_voltage, leakage_v0)
        points = []
        for voltage, frequency, picojoules in sorted(anchors):
            total = picojoules * 1e-12
            dynamic = total - float(self.leakage.energy_per_cycle(voltage, frequency))
            if dynamic <= 0:
                raise ValueError("leakage model exceeds measured anchor energy")
            points.append((float(voltage), dynamic))
        self._log_voltages = np.log(np.array([p[0] for p in points]))
        self._log_energies = np.log(np.array([p[1] for p in points]))

    def dynamic_energy(self, voltage: float | np.ndarray) -> np.ndarray:
        """Dynamic (access) energy per cycle, joules; log–log interpolation."""
        voltage = np.asarray(voltage, dtype=float)
        log_v = np.log(voltage)
        # linear interpolation in log-log space with slope-preserving
        # extrapolation beyond the anchored range
        slope_low = (self._log_energies[1] - self._log_energies[0]) / (
            self._log_voltages[1] - self._log_voltages[0]
        )
        slope_high = (self._log_energies[-1] - self._log_energies[-2]) / (
            self._log_voltages[-1] - self._log_voltages[-2]
        )
        interp = np.interp(log_v, self._log_voltages, self._log_energies)
        below = log_v < self._log_voltages[0]
        above = log_v > self._log_voltages[-1]
        interp = np.where(
            below, self._log_energies[0] + slope_low * (log_v - self._log_voltages[0]), interp
        )
        interp = np.where(
            above,
            self._log_energies[-1] + slope_high * (log_v - self._log_voltages[-1]),
            interp,
        )
        return np.exp(interp)

    def leakage_energy(self, voltage: float | np.ndarray, frequency: float) -> np.ndarray:
        return self.leakage.energy_per_cycle(voltage, frequency)

    def energy_per_cycle(self, voltage: float | np.ndarray, frequency: float) -> np.ndarray:
        return self.dynamic_energy(voltage) + self.leakage_energy(voltage, frequency)


class SnnacEnergyModel:
    """Combined chip-level energy/frequency model.

    Parameters default to the calibration against the paper's test-chip
    measurements; pass custom component models to explore other technologies
    (the voltage-savings discussion in Section V expects larger gains in more
    advanced nodes).
    """

    def __init__(
        self,
        logic: LogicEnergyModel | None = None,
        sram: SramEnergyModel | None = None,
        logic_frequency: FrequencyModel | None = None,
        sram_frequency: FrequencyModel | None = None,
    ) -> None:
        self.logic = logic or LogicEnergyModel.calibrate()
        self.sram = sram or SramEnergyModel()
        # logic timing calibrated to (0.9 V, 250 MHz) and (0.55 V, 17.8 MHz);
        # SRAM periphery timing calibrated so 0.65 V sustains 250 MHz (the
        # HighPerf scenario's "timing requirements in the SRAM periphery
        # prevent further scaling") with the same shape at low voltage.
        self.logic_frequency = logic_frequency or FrequencyModel.calibrate(
            (0.9, 250.0e6), (0.55, 17.8e6)
        )
        self.sram_frequency = sram_frequency or FrequencyModel.calibrate(
            (0.65, 250.0e6), (0.45, 17.8e6)
        )

    @classmethod
    def for_geometry(
        cls,
        num_pes: int = REFERENCE_NUM_PES,
        words_per_bank: int = 512,
        word_bits: int = 16,
        logic_frequency: FrequencyModel | None = None,
        sram_frequency: FrequencyModel | None = None,
    ) -> "SnnacEnergyModel":
        """Analytically scale the calibrated chip model to another geometry.

        First-order scaling from the fabricated 65 nm anchors: per-PE logic
        energy is geometry-invariant, so the logic effective capacitance and
        leakage scale with ``num_pes``; per-bit SRAM array energy is
        geometry-invariant, so the SRAM anchor energies and leakage scale
        with the total weight-SRAM bit count.  Timing closure is assumed
        unchanged (the critical paths — the MAC datapath and the SRAM
        periphery — do not lengthen with more parallel PEs or deeper banks
        in this first-order model), so the frequency models keep the chip
        calibration unless overridden.

        At the fabricated reference geometry (8 PEs, 512x16-bit banks) the
        scale factors are exactly 1.0 and the model reproduces the test-chip
        calibration bit-for-bit.  Away from it, treat results as analytic
        extrapolation, not measurement — see ``docs/workloads.md`` for the
        caveats.
        """
        if num_pes <= 0 or words_per_bank <= 0 or word_bits <= 0:
            raise ValueError("geometry parameters must be positive")
        pe_ratio = num_pes / REFERENCE_NUM_PES
        bit_ratio = (num_pes * words_per_bank * word_bits) / REFERENCE_WEIGHT_SRAM_BITS
        base_logic = LogicEnergyModel.calibrate()
        logic = LogicEnergyModel(
            effective_capacitance=base_logic.effective_capacitance * pe_ratio,
            leakage_power_nominal=base_logic.leakage.nominal_power * pe_ratio,
            leakage_v0=base_logic.leakage.v0,
            nominal_voltage=base_logic.leakage.nominal_voltage,
        )
        sram = SramEnergyModel(
            anchors=tuple(
                (voltage, frequency, picojoules * bit_ratio)
                for voltage, frequency, picojoules in PAPER_SRAM_ANCHORS
            ),
            leakage_power_nominal=_SRAM_LEAKAGE_NOMINAL * bit_ratio,
        )
        return cls(
            logic=logic,
            sram=sram,
            logic_frequency=logic_frequency,
            sram_frequency=sram_frequency,
        )

    def with_leakage_scale(self, scale: float) -> "SnnacEnergyModel":
        """A copy of this model with both domains' leakage power scaled.

        Realizes a :class:`~repro.sram.variation.ProcessCorner`'s
        ``leakage_scale`` without re-calibrating: the scale is applied to the
        already-decomposed ``_LeakageModel`` nominal powers on deep copies,
        so the SRAM dynamic table (anchors minus the *calibration* leakage)
        is left exactly as constructed.  ``scale == 1.0`` returns ``self``.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        if scale == 1.0:
            return self
        scaled = copy.deepcopy(self)
        scaled.logic.leakage.nominal_power *= float(scale)
        scaled.sram.leakage.nominal_power *= float(scale)
        return scaled

    # ------------------------------------------------------------------

    def breakdown(self, point: OperatingPoint) -> EnergyBreakdown:
        """Per-cycle energy decomposition at an operating point (picojoules)."""
        return EnergyBreakdown(
            logic_dynamic=float(self.logic.dynamic_energy(point.logic_voltage)) * 1e12,
            logic_leakage=float(
                self.logic.leakage_energy(point.logic_voltage, point.frequency)
            )
            * 1e12,
            sram_dynamic=float(self.sram.dynamic_energy(point.sram_voltage)) * 1e12,
            sram_leakage=float(
                self.sram.leakage_energy(point.sram_voltage, point.frequency)
            )
            * 1e12,
        )

    def energy_per_cycle(self, point: OperatingPoint) -> float:
        """Total energy per cycle in picojoules."""
        return self.breakdown(point).total

    def power(self, point: OperatingPoint) -> float:
        """Total power in watts at the operating point."""
        return self.energy_per_cycle(point) * 1e-12 * point.frequency

    def is_feasible(self, point: OperatingPoint) -> bool:
        """Check that both voltage domains meet timing at the target frequency."""
        return bool(
            self.logic_frequency.fmax(point.logic_voltage) >= point.frequency
            and self.sram_frequency.fmax(point.sram_voltage) >= point.frequency
        )

    # ---------------------------------------------------------- searches

    def logic_minimum_energy_point(
        self,
        voltages: np.ndarray | None = None,
    ) -> tuple[float, float]:
        """Logic voltage (and implied fmax) minimizing logic energy per cycle.

        The search assumes the chip runs at the maximum frequency the logic
        voltage allows (the standard minimum-energy-point condition where
        leakage per cycle balances the dynamic savings).
        """
        if voltages is None:
            voltages = np.arange(0.46, 0.91, 0.005)
        best_voltage, best_energy = None, np.inf
        for voltage in voltages:
            frequency = float(self.logic_frequency.fmax(voltage))
            if frequency <= 0:
                continue
            energy = float(self.logic.energy_per_cycle(voltage, frequency))
            if energy < best_energy:
                best_voltage, best_energy = float(voltage), energy
        if best_voltage is None:
            raise ValueError("no feasible voltage in the search range")
        return best_voltage, float(self.logic_frequency.fmax(best_voltage))

    def joint_minimum_energy_point(
        self,
        min_sram_voltage: float,
        voltages: np.ndarray | None = None,
    ) -> tuple[float, float]:
        """Unified-rail voltage minimizing total energy per cycle.

        ``min_sram_voltage`` is the accuracy-constrained floor on the SRAM
        voltage (the lowest voltage at which the deployed memory-adaptive
        model still meets its error target); the unified rail cannot go
        below it.
        """
        if voltages is None:
            voltages = np.arange(0.46, 0.91, 0.005)
        best_voltage, best_energy = None, np.inf
        for voltage in voltages:
            if voltage < min_sram_voltage:
                continue
            frequency = float(self.logic_frequency.fmax(voltage))
            if frequency <= 0:
                continue
            point = OperatingPoint(voltage, voltage, frequency)
            energy = self.energy_per_cycle(point)
            if energy < best_energy:
                best_voltage, best_energy = float(voltage), energy
        if best_voltage is None:
            raise ValueError("no feasible voltage in the search range")
        return best_voltage, float(self.logic_frequency.fmax(best_voltage))
