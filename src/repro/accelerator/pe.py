"""Processing element (PE) model.

Each SNNAC PE is a fixed-point multiply-accumulate unit with a dedicated,
voltage-scalable weight SRAM bank.  The model keeps the datapath semantics
that matter for accuracy studies:

* weights arrive as two's-complement SRAM words and are decoded with the
  layer's fixed-point format (so SRAM bit errors translate to the exact
  weight perturbation the hardware would see),
* input activations are quantized to the data fixed-point format before the
  multiply, and
* accumulation happens in a wide accumulator that does not overflow for the
  layer sizes the paper evaluates (modelled as exact accumulation).

:meth:`ProcessingElement.fetch_neuron_parameters` and
:meth:`ProcessingElement.mac_batch` are the behavioural definition of one
PE; the systolic ring (:mod:`repro.accelerator.systolic`) performs the
equivalent work vectorized across the whole layer, reading through
``weight_bank`` with the placement's compiled gather plan
(:class:`~repro.accelerator.microcode.LayerGatherPlan`) and crediting
:attr:`ProcessingElement.mac_count` for the weight words each PE hosts —
the per-PE counts sum to ``in_features * out_features * batch`` for every
layer, spilled placements included (the plan asserts it at compile time).
"""

from __future__ import annotations

import numpy as np

from ..quant.fixed_point import FixedPointFormat
from ..sram.array import SramBank

__all__ = ["ProcessingElement"]


class ProcessingElement:
    """One MAC-based processing element with its local weight bank."""

    def __init__(
        self,
        index: int,
        weight_bank: SramBank,
        data_format: FixedPointFormat | None = None,
    ) -> None:
        if index < 0:
            raise ValueError("index must be non-negative")
        self.index = int(index)
        self.weight_bank = weight_bank
        self.data_format = data_format or FixedPointFormat(16, 12)
        #: running MAC-operation count (for utilization / energy accounting)
        self.mac_count = 0

    # ------------------------------------------------------------------

    def fetch_neuron_parameters(
        self,
        base_address: int,
        fan_in: int,
        weight_format: FixedPointFormat,
        bias_format: FixedPointFormat,
        voltage: float,
        temperature: float = 25.0,
    ) -> tuple[np.ndarray, float]:
        """Read one neuron's bias and weight row from the local SRAM bank.

        Returns the decoded float ``(weights, bias)``; reads are performed at
        the requested operating point so read-disturb corruption is applied
        by the SRAM model.
        """
        addresses = np.arange(base_address, base_address + fan_in + 1)
        words = self.weight_bank.read(addresses, voltage=voltage, temperature=temperature)
        bias = float(bias_format.word_to_float(words[:1])[0])
        weights = weight_format.word_to_float(words[1:])
        return weights, bias

    def mac_batch(
        self,
        inputs: np.ndarray,
        weights: np.ndarray,
        bias: float,
    ) -> np.ndarray:
        """Inner product of a batch of input vectors with one weight row.

        ``inputs`` has shape ``(batch, fan_in)`` and is quantized to the data
        format before the multiply; returns the pre-activation accumulator
        values, shape ``(batch,)``.
        """
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim == 1:
            inputs = inputs.reshape(1, -1)
        if inputs.shape[1] != weights.shape[0]:
            raise ValueError(
                f"fan-in mismatch: inputs have {inputs.shape[1]}, weights {weights.shape[0]}"
            )
        quantized_inputs = self.data_format.quantize(inputs)
        self.mac_count += inputs.shape[0] * inputs.shape[1]
        return quantized_inputs @ weights + bias

    def reset_counters(self) -> None:
        self.mac_count = 0

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ProcessingElement({self.index}, bank={self.weight_bank.name!r})"
