"""Model compilation: mapping a DNN onto SNNAC's PEs and weight SRAMs.

SNNAC executes statically compiled microcode: each DNN layer becomes a
sequence of time-multiplexed inner-product passes over the eight processing
elements, and every synaptic weight is assigned a home location (PE index,
SRAM word address) in one of the per-PE weight banks.

The :class:`MicrocodeCompiler` performs that mapping for the pure-numpy
:class:`~repro.nn.network.Network` models used in this reproduction:

* output neurons of a layer are distributed round-robin across PEs (neuron
  ``k`` lives on PE ``k mod 8``), and
* each neuron's parameters occupy a contiguous address range in its PE's
  bank: the bias word followed by the ``fan_in`` weight words.

The resulting :class:`WeightPlacement` is shared by the accelerator (to load
and read weights) and by MATIC (to translate per-bank SRAM fault maps into
per-layer injection masks aligned with the weight matrices).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.network import Network
from ..quant.quantizer import LayerQuantization, QuantizedWeights, WeightQuantizer
from ..sram.array import WeightMemorySystem
from ..sram.fault_map import FaultMap

__all__ = [
    "NeuronPlacement",
    "LayerPlacement",
    "WeightPlacement",
    "LayerProgram",
    "NpuProgram",
    "MicrocodeCompiler",
]


@dataclass(frozen=True)
class NeuronPlacement:
    """Home location of one output neuron's parameters."""

    layer: int
    neuron: int
    pe: int
    #: SRAM address of the bias word; weights follow at base+1 .. base+fan_in
    base_address: int
    fan_in: int

    @property
    def bias_address(self) -> int:
        return self.base_address

    def weight_address(self, input_index: int) -> int:
        """Address of the weight from ``input_index`` to this neuron."""
        if not 0 <= input_index < self.fan_in:
            raise IndexError("input index out of range")
        return self.base_address + 1 + input_index


@dataclass
class LayerPlacement:
    """Placement of all neurons of one layer."""

    layer: int
    in_features: int
    out_features: int
    neurons: list[NeuronPlacement] = field(default_factory=list)

    def neuron(self, index: int) -> NeuronPlacement:
        return self.neurons[index]


class WeightPlacement:
    """Mapping between network parameters and weight-SRAM locations."""

    def __init__(
        self,
        widths: tuple[int, ...],
        num_pes: int,
        words_per_bank: int,
    ) -> None:
        if num_pes <= 0 or words_per_bank <= 0:
            raise ValueError("num_pes and words_per_bank must be positive")
        self.widths = tuple(int(w) for w in widths)
        self.num_pes = int(num_pes)
        self.words_per_bank = int(words_per_bank)
        self.layers: list[LayerPlacement] = []
        self._allocate()

    def _allocate(self) -> None:
        next_free = [0] * self.num_pes
        for layer_index, (fan_in, fan_out) in enumerate(
            zip(self.widths[:-1], self.widths[1:])
        ):
            layer = LayerPlacement(layer_index, fan_in, fan_out)
            for neuron in range(fan_out):
                pe = neuron % self.num_pes
                base = next_free[pe]
                required = fan_in + 1  # bias + weights
                if base + required > self.words_per_bank:
                    raise ValueError(
                        f"model does not fit: PE {pe} needs {base + required} words, "
                        f"bank holds {self.words_per_bank}"
                    )
                layer.neurons.append(
                    NeuronPlacement(layer_index, neuron, pe, base, fan_in)
                )
                next_free[pe] = base + required
            self.layers.append(layer)
        self.words_used_per_pe = list(next_free)

    # ------------------------------------------------------------ storage

    def store(self, memory: WeightMemorySystem, quantized: QuantizedWeights) -> None:
        """Write a quantized model into the per-PE weight banks."""
        self._check_memory(memory)
        if len(quantized.weight_words) != len(self.layers):
            raise ValueError("quantized model has a different number of layers")
        for layer, weight_words, bias_words in zip(
            self.layers, quantized.weight_words, quantized.bias_words
        ):
            if weight_words.shape != (layer.in_features, layer.out_features):
                raise ValueError("quantized weight shape does not match placement")
            for placement in layer.neurons:
                bank = memory[placement.pe]
                addresses = np.arange(
                    placement.base_address, placement.base_address + placement.fan_in + 1
                )
                words = np.concatenate(
                    [
                        [bias_words[placement.neuron]],
                        weight_words[:, placement.neuron],
                    ]
                ).astype(np.uint64)
                bank.write(addresses, words)

    def load_layer_words(
        self,
        memory: WeightMemorySystem,
        layer_index: int,
        voltage: float,
        temperature: float = 25.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Read one layer's parameters back from SRAM at an operating point.

        Returns ``(weight_words, bias_words)`` shaped like the layer's weight
        matrix and bias vector.  Reads go through the behavioural SRAM model,
        so voltage-overscaled reads return (and persist) corrupted words.
        """
        self._check_memory(memory)
        layer = self.layers[layer_index]
        weight_words = np.zeros((layer.in_features, layer.out_features), dtype=np.uint64)
        bias_words = np.zeros(layer.out_features, dtype=np.uint64)
        for placement in layer.neurons:
            bank = memory[placement.pe]
            addresses = np.arange(
                placement.base_address, placement.base_address + placement.fan_in + 1
            )
            words = bank.read(addresses, voltage=voltage, temperature=temperature)
            bias_words[placement.neuron] = words[0]
            weight_words[:, placement.neuron] = words[1:]
        return weight_words, bias_words

    def _check_memory(self, memory: WeightMemorySystem) -> None:
        if len(memory) < self.num_pes:
            raise ValueError(
                f"placement expects {self.num_pes} banks, memory has {len(memory)}"
            )
        for pe, used in enumerate(self.words_used_per_pe):
            if used > memory[pe].num_words:
                raise ValueError(
                    f"PE {pe} bank too small: needs {used} words, has {memory[pe].num_words}"
                )

    # -------------------------------------------------------- fault masks

    def layer_fault_masks(
        self, fault_maps: list[FaultMap], layer_index: int, word_bits: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Translate per-bank fault maps into per-layer injection masks.

        Returns ``(weight_and, weight_or, bias_and, bias_or)`` where the
        weight masks have the layer's ``(in_features, out_features)`` shape
        and the bias masks have shape ``(out_features,)``.  Applying
        ``(word & and) | or`` reproduces exactly the corruption the SRAM
        would inflict at the profiled operating point.
        """
        if len(fault_maps) < self.num_pes:
            raise ValueError(
                f"expected {self.num_pes} fault maps, got {len(fault_maps)}"
            )
        full = np.uint64((1 << word_bits) - 1)
        layer = self.layers[layer_index]

        # One gather resolves every neuron at once: stack the per-bank mask
        # arrays into a (num_banks, max_words) matrix (identity-padded where a
        # bank is shorter) and index it with the per-neuron (pe, address)
        # coordinates of the placement.
        pes = np.array([p.pe for p in layer.neurons], dtype=np.intp)
        bases = np.array([p.base_address for p in layer.neurons], dtype=np.intp)
        neurons = np.array([p.neuron for p in layer.neurons], dtype=np.intp)
        words_per_bank = np.array([fault_map.num_words for fault_map in fault_maps])
        needed = bases + layer.in_features + 1
        if pes.size and np.any(needed > words_per_bank[pes]):
            worst = int(np.argmax(needed - words_per_bank[pes]))
            raise IndexError(
                f"placement needs {int(needed[worst])} words in bank {int(pes[worst])}, "
                f"fault map covers {int(words_per_bank[pes[worst]])}"
            )
        max_words = max(fault_map.num_words for fault_map in fault_maps)
        bank_and = np.full((len(fault_maps), max_words), full, dtype=np.uint64)
        bank_or = np.zeros((len(fault_maps), max_words), dtype=np.uint64)
        for index, fault_map in enumerate(fault_maps):
            and_masks, or_masks = fault_map.mask_views()
            bank_and[index, : fault_map.num_words] = and_masks & full
            bank_or[index, : fault_map.num_words] = or_masks & full

        # scatter through the neuron index rather than list position, so the
        # result does not depend on the ordering of layer.neurons
        bias_and = np.full(layer.out_features, full, dtype=np.uint64)
        bias_or = np.zeros(layer.out_features, dtype=np.uint64)
        bias_and[neurons] = bank_and[pes, bases]
        bias_or[neurons] = bank_or[pes, bases]
        addresses = bases[None, :] + np.arange(1, layer.in_features + 1)[:, None]
        weight_and = np.full((layer.in_features, layer.out_features), full, dtype=np.uint64)
        weight_or = np.zeros((layer.in_features, layer.out_features), dtype=np.uint64)
        weight_and[:, neurons] = bank_and[pes[None, :], addresses]
        weight_or[:, neurons] = bank_or[pes[None, :], addresses]
        return weight_and, weight_or, bias_and, bias_or


@dataclass
class LayerProgram:
    """Executable description of one layer on the NPU."""

    layer_index: int
    in_features: int
    out_features: int
    activation: str
    quantization: LayerQuantization
    #: number of time-multiplexed passes over the PE ring
    passes: int
    #: estimated cycles to execute the layer once (see MicrocodeCompiler)
    cycles: int
    #: multiply-accumulate operations in the layer
    macs: int


@dataclass
class NpuProgram:
    """A compiled model: placement plus the per-layer execution schedule."""

    topology: tuple[int, ...]
    placement: WeightPlacement
    layers: list[LayerProgram]
    word_bits: int

    @property
    def total_cycles_per_inference(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_macs_per_inference(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weight_words(self) -> int:
        return sum((l.in_features + 1) * l.out_features for l in self.layers)


class MicrocodeCompiler:
    """Compile a :class:`~repro.nn.network.Network` into an NPU program.

    Parameters
    ----------
    num_pes:
        Number of processing elements in the systolic ring (8 for SNNAC).
    words_per_bank:
        Capacity of each PE's weight SRAM, in words.
    pipeline_overhead:
        Fixed per-pass cycle overhead (weight fetch setup, accumulator
        drain, AFU latency).
    """

    def __init__(
        self,
        num_pes: int = 8,
        words_per_bank: int = 512,
        pipeline_overhead: int = 4,
    ) -> None:
        if num_pes <= 0:
            raise ValueError("num_pes must be positive")
        if words_per_bank <= 0:
            raise ValueError("words_per_bank must be positive")
        if pipeline_overhead < 0:
            raise ValueError("pipeline_overhead must be non-negative")
        self.num_pes = int(num_pes)
        self.words_per_bank = int(words_per_bank)
        self.pipeline_overhead = int(pipeline_overhead)

    def compile(self, network: Network, quantizer: WeightQuantizer) -> NpuProgram:
        """Produce placement, per-layer formats, and the execution schedule."""
        placement = WeightPlacement(network.widths, self.num_pes, self.words_per_bank)
        formats = quantizer.layer_formats(network)
        layers: list[LayerProgram] = []
        for index, (layer, fmt) in enumerate(zip(network.layers, formats)):
            in_features = layer.in_features
            out_features = layer.out_features
            passes = int(np.ceil(out_features / self.num_pes))
            # each pass streams the input vector through the ring once; every
            # cycle each active PE performs one MAC
            cycles = passes * (in_features + 1 + self.pipeline_overhead)
            macs = in_features * out_features
            layers.append(
                LayerProgram(
                    layer_index=index,
                    in_features=in_features,
                    out_features=out_features,
                    activation=layer.activation.name,
                    quantization=fmt,
                    passes=passes,
                    cycles=cycles,
                    macs=macs,
                )
            )
        return NpuProgram(
            topology=network.widths,
            placement=placement,
            layers=layers,
            word_bits=quantizer.total_bits,
        )
