"""Model compilation: mapping a DNN onto SNNAC's PEs and weight SRAMs.

SNNAC executes statically compiled microcode: each DNN layer becomes a
sequence of time-multiplexed inner-product passes over the processing
elements, and every synaptic weight is assigned a home location (PE index,
SRAM word address) in one of the per-PE weight banks.

The :class:`MicrocodeCompiler` performs that mapping for the pure-numpy
:class:`~repro.nn.network.Network` models used in this reproduction:

* output neurons of a layer are distributed round-robin across PEs (neuron
  ``k`` prefers PE ``k mod num_pes``), and
* each neuron's parameters — the bias word followed by ``fan_in`` weight
  words — occupy one or more contiguous address *segments*
  (:class:`PlacementSegment`).  In the common case a neuron is a single
  segment in its preferred PE's bank, exactly the fabricated chip's layout;
  when a bank runs out of words the allocator **spills** the remainder into
  the next bank with free space instead of failing, modelling the extra
  passes a capacity-constrained geometry needs.  A model only fails to
  compile when the *total* weight-SRAM capacity is exceeded — use
  :func:`plan_capacity` / :meth:`MicrocodeCompiler.capacity_report` to check
  without raising.

The resulting :class:`WeightPlacement` is shared by the accelerator (to load
and read weights) and by MATIC (to translate per-bank SRAM fault maps into
per-layer injection masks aligned with the weight matrices).

Cycle model
-----------
Each layer executes as *passes* over the ring: the input vector (plus the
bias slot) streams past every PE once per pass, and in one pass each PE
works through at most one segment out of its bank.  The layer's cycle count
is therefore::

    passes = max_pe(segments hosted by the PE)
    cycles = passes * (fan_in + 1 + pipeline_overhead)

which reduces to the historical ``ceil(out/num_pes)`` passes for an
unspilled round-robin placement — and makes placement spill cost whole
extra passes, because a pass is paced by the input stream, not by how many
words the busiest PE happens to host.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.network import Network
from ..quant.quantizer import LayerQuantization, QuantizedWeights, WeightQuantizer
from ..sram.array import WeightMemorySystem
from ..sram.fault_map import FaultMap

__all__ = [
    "PlacementSegment",
    "NeuronPlacement",
    "LayerPlacement",
    "LayerGatherPlan",
    "WeightPlacement",
    "CapacityReport",
    "plan_capacity",
    "LayerProgram",
    "NpuProgram",
    "MicrocodeCompiler",
]


@dataclass(frozen=True)
class PlacementSegment:
    """One contiguous SRAM address range holding part of a neuron's block.

    The neuron's parameter block is ``fan_in + 1`` words (word 0 is the
    bias, word ``1 + i`` the weight from input ``i``); this segment stores
    block words ``[word_offset, word_offset + length)`` at bank addresses
    ``[base_address, base_address + length)`` of PE ``pe``.
    """

    pe: int
    base_address: int
    word_offset: int
    length: int

    @property
    def end_address(self) -> int:
        return self.base_address + self.length


@dataclass(frozen=True)
class NeuronPlacement:
    """Home location(s) of one output neuron's parameters."""

    layer: int
    neuron: int
    fan_in: int
    segments: tuple[PlacementSegment, ...]

    @property
    def pe(self) -> int:
        """The neuron's home PE — the one hosting its bias word."""
        return self.segments[0].pe

    @property
    def base_address(self) -> int:
        """Bank address of the bias word (start of the first segment)."""
        return self.segments[0].base_address

    @property
    def bias_address(self) -> int:
        return self.segments[0].base_address

    @property
    def spilled(self) -> bool:
        """Whether the block needed more than one segment."""
        return len(self.segments) > 1

    def locate(self, word_index: int) -> tuple[int, int]:
        """Resolve block word ``word_index`` to its ``(pe, address)`` home."""
        if not 0 <= word_index <= self.fan_in:
            raise IndexError("word index out of range")
        for segment in self.segments:
            if segment.word_offset <= word_index < segment.word_offset + segment.length:
                return segment.pe, segment.base_address + (
                    word_index - segment.word_offset
                )
        raise IndexError("placement segments do not cover the block")  # pragma: no cover

    def weight_address(self, input_index: int) -> int:
        """Address of the weight from ``input_index`` to this neuron.

        For spilled neurons the word may live in a different bank than the
        bias; use :meth:`locate` to obtain the hosting PE as well.
        """
        if not 0 <= input_index < self.fan_in:
            raise IndexError("input index out of range")
        return self.locate(1 + input_index)[1]


@dataclass
class LayerPlacement:
    """Placement of all neurons of one layer."""

    layer: int
    in_features: int
    out_features: int
    neurons: list[NeuronPlacement] = field(default_factory=list)

    def neuron(self, index: int) -> NeuronPlacement:
        return self.neurons[index]

    def segments_on(
        self, pe: int
    ) -> list[tuple[NeuronPlacement, PlacementSegment]]:
        """This layer's segments hosted by ``pe``, in neuron order."""
        return [
            (placement, segment)
            for placement in self.neurons
            for segment in placement.segments
            if segment.pe == pe
        ]

    def passes_required(self, num_pes: int) -> int:
        """Time-multiplexed passes the layer needs on a ``num_pes`` ring.

        Each pass streams the input vector past the ring once, with every
        PE working through at most one of its segments — so the pass count
        is the maximum number of segments any single PE hosts (at least 1).
        """
        segment_counts = [0] * num_pes
        for placement in self.neurons:
            for segment in placement.segments:
                segment_counts[segment.pe] += 1
        return max(1, max(segment_counts, default=0))

    @property
    def spilled_neurons(self) -> int:
        return sum(1 for placement in self.neurons if placement.spilled)

    @property
    def num_segments(self) -> int:
        return sum(len(placement.segments) for placement in self.neurons)


@dataclass(frozen=True)
class LayerGatherPlan:
    """Compiled per-PE access plan for one layer's SRAM word image.

    The layer's parameters live in a flat ``(out_features, fan_in + 1)``
    word image (column 0 the bias, column ``1 + i`` the weight from input
    ``i``).  For every PE hosting at least one word the plan precomputes:

    * ``addresses[k]`` — the PE's hosted bank addresses, every segment
      concatenated into one vector (the read order the ring used when it
      walked segments one by one; read-disturb corruption is per-cell and
      order-independent, so order only fixes determinism, not semantics),
    * ``scatter[k]`` — the matching flat indices into the word image, and
    * ``weight_words[k]`` — how many of those words are MAC operands
      (hosted words minus the bias words, which are add-only).

    Compiled once per placement and layer, so executing a layer is one
    vectorized bank read plus one fancy-indexed scatter per hosting PE —
    no per-segment Python loop at any geometry, spilled placements included.
    """

    layer_index: int
    in_features: int
    out_features: int
    #: PEs hosting at least one of the layer's words, ascending
    pe_indices: tuple[int, ...]
    addresses: tuple[np.ndarray, ...]
    scatter: tuple[np.ndarray, ...]
    weight_words: tuple[int, ...]
    #: time-multiplexed ring passes (== LayerPlacement.passes_required for
    #: any ring at least as wide as the placement)
    passes: int

    def per_pe(self):
        """Iterate ``(pe, addresses, scatter, weight_words)`` tuples."""
        return zip(self.pe_indices, self.addresses, self.scatter, self.weight_words)


class WeightPlacement:
    """Mapping between network parameters and weight-SRAM locations."""

    def __init__(
        self,
        widths: tuple[int, ...],
        num_pes: int,
        words_per_bank: int,
    ) -> None:
        if num_pes <= 0 or words_per_bank <= 0:
            raise ValueError("num_pes and words_per_bank must be positive")
        self.widths = tuple(int(w) for w in widths)
        self.num_pes = int(num_pes)
        self.words_per_bank = int(words_per_bank)
        self.layers: list[LayerPlacement] = []
        self._gather_plans: dict[int, LayerGatherPlan] = {}
        self._allocate()

    def _allocate(self) -> None:
        next_free = [0] * self.num_pes
        for layer_index, (fan_in, fan_out) in enumerate(
            zip(self.widths[:-1], self.widths[1:])
        ):
            layer = LayerPlacement(layer_index, fan_in, fan_out)
            for neuron in range(fan_out):
                required = fan_in + 1  # bias + weights
                segments: list[PlacementSegment] = []
                word = 0
                pe = neuron % self.num_pes
                probed = 0
                while word < required:
                    free = self.words_per_bank - next_free[pe]
                    if free <= 0:
                        pe = (pe + 1) % self.num_pes
                        probed += 1
                        if probed >= self.num_pes:
                            used = sum(next_free)
                            raise ValueError(
                                f"model does not fit: needs "
                                f"{used + (required - word)}+ words, capacity is "
                                f"{self.num_pes * self.words_per_bank} "
                                f"({self.num_pes} banks x {self.words_per_bank} words)"
                            )
                        continue
                    probed = 0
                    take = min(free, required - word)
                    segments.append(
                        PlacementSegment(pe, next_free[pe], word, take)
                    )
                    next_free[pe] += take
                    word += take
                layer.neurons.append(
                    NeuronPlacement(layer_index, neuron, fan_in, tuple(segments))
                )
            self.layers.append(layer)
        self.words_used_per_pe = list(next_free)

    # ---------------------------------------------------------- capacity

    @property
    def total_words_used(self) -> int:
        return sum(self.words_used_per_pe)

    @property
    def total_capacity_words(self) -> int:
        return self.num_pes * self.words_per_bank

    @property
    def spilled_neurons(self) -> int:
        return sum(layer.spilled_neurons for layer in self.layers)

    @property
    def num_segments(self) -> int:
        return sum(layer.num_segments for layer in self.layers)

    def capacity_report(self) -> "CapacityReport":
        """Capacity accounting for this (successfully allocated) placement."""
        return CapacityReport(
            num_pes=self.num_pes,
            words_per_bank=self.words_per_bank,
            total_capacity_words=self.total_capacity_words,
            words_required=self.total_words_used,
            fits=True,
            words_used_per_pe=tuple(self.words_used_per_pe),
            per_layer_words=tuple(
                (layer.in_features + 1) * layer.out_features for layer in self.layers
            ),
            spilled_neurons=self.spilled_neurons,
            num_segments=self.num_segments,
        )

    # --------------------------------------------------------- gather plans

    def gather_plan(self, layer_index: int) -> LayerGatherPlan:
        """The compiled :class:`LayerGatherPlan` for one layer (memoized).

        A placement is immutable after allocation, so plans are compiled
        lazily on first use and cached for the placement's lifetime.
        """
        plan = self._gather_plans.get(layer_index)
        if plan is None:
            layer = self.layers[layer_index]
            width = layer.in_features + 1
            per_pe_addresses: dict[int, list[np.ndarray]] = {}
            per_pe_scatter: dict[int, list[np.ndarray]] = {}
            per_pe_weight_words: dict[int, int] = {}
            for placement in layer.neurons:
                for segment in placement.segments:
                    per_pe_addresses.setdefault(segment.pe, []).append(
                        np.arange(segment.base_address, segment.end_address, dtype=np.intp)
                    )
                    start = placement.neuron * width + segment.word_offset
                    per_pe_scatter.setdefault(segment.pe, []).append(
                        np.arange(start, start + segment.length, dtype=np.intp)
                    )
                    # the bias word (block word 0) is not a MAC operand
                    per_pe_weight_words[segment.pe] = per_pe_weight_words.get(
                        segment.pe, 0
                    ) + segment.length - (1 if segment.word_offset == 0 else 0)
            pe_indices = tuple(sorted(per_pe_addresses))
            addresses = tuple(
                np.concatenate(per_pe_addresses[pe]) for pe in pe_indices
            )
            scatter = tuple(np.concatenate(per_pe_scatter[pe]) for pe in pe_indices)
            weight_words = tuple(per_pe_weight_words[pe] for pe in pe_indices)
            for array in (*addresses, *scatter):
                array.flags.writeable = False
            # work-accounting invariant: per-PE hosted weight words sum to the
            # layer's MAC operand count, spilled placements included — so
            # crediting each PE for its hosted words reconciles exactly with
            # LayerExecutionStats.macs (in_features * out_features * batch)
            assert sum(weight_words) == layer.in_features * layer.out_features, (
                f"gather plan for layer {layer_index} hosts {sum(weight_words)} "
                f"weight words, expected {layer.in_features * layer.out_features}"
            )
            plan = LayerGatherPlan(
                layer_index=layer_index,
                in_features=layer.in_features,
                out_features=layer.out_features,
                pe_indices=pe_indices,
                addresses=addresses,
                scatter=scatter,
                weight_words=weight_words,
                passes=layer.passes_required(self.num_pes),
            )
            self._gather_plans[layer_index] = plan
        return plan

    def _layer_word_image(
        self, layer: LayerPlacement, weight_words: np.ndarray, bias_words: np.ndarray
    ) -> np.ndarray:
        """Flat ``(out * (fan_in + 1),)`` word image from quantized arrays."""
        image = np.empty((layer.out_features, layer.in_features + 1), dtype=np.uint64)
        image[:, 0] = bias_words
        image[:, 1:] = np.asarray(weight_words, dtype=np.uint64).T
        return image.reshape(-1)

    # ------------------------------------------------------------ storage

    def compile_write_plan(
        self, memory: WeightMemorySystem, quantized: QuantizedWeights
    ) -> list[tuple[int, np.ndarray, np.ndarray]]:
        """Compile a full-model store into one ``(pe, addresses, words)`` per bank.

        The words are already masked to the bank word length, and the
        address/word arrays are frozen — callers may retain the plan and
        replay it (the NPU's ``refresh_weights`` does exactly that through
        :meth:`~repro.sram.array.SramBank.write_planned`).  :meth:`store` is
        this plan executed once; both therefore write the same addresses and
        values as the historical per-neuron, per-segment walk.
        """
        self._check_memory(memory)
        if len(quantized.weight_words) != len(self.layers):
            raise ValueError("quantized model has a different number of layers")
        per_bank_addresses: dict[int, list[np.ndarray]] = {}
        per_bank_words: dict[int, list[np.ndarray]] = {}
        for layer_index, (layer, weight_words, bias_words) in enumerate(
            zip(self.layers, quantized.weight_words, quantized.bias_words)
        ):
            if weight_words.shape != (layer.in_features, layer.out_features):
                raise ValueError("quantized weight shape does not match placement")
            flat = self._layer_word_image(layer, weight_words, bias_words)
            for pe, addresses, scatter, _ in self.gather_plan(layer_index).per_pe():
                per_bank_addresses.setdefault(pe, []).append(addresses)
                per_bank_words.setdefault(pe, []).append(flat[scatter])
        plan = []
        for pe in sorted(per_bank_addresses):
            addresses = np.concatenate(per_bank_addresses[pe])
            words = np.concatenate(per_bank_words[pe]) & np.uint64(
                memory[pe].word_mask
            )
            addresses.flags.writeable = False
            words.flags.writeable = False
            plan.append((pe, addresses, words))
        return plan

    def store(self, memory: WeightMemorySystem, quantized: QuantizedWeights) -> None:
        """Write a quantized model into the per-PE weight banks."""
        for pe, addresses, words in self.compile_write_plan(memory, quantized):
            memory[pe].write(addresses, words)

    def load_layer_words(
        self,
        memory: WeightMemorySystem,
        layer_index: int,
        voltage: float,
        temperature: float = 25.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Read one layer's parameters back from SRAM at an operating point.

        Returns ``(weight_words, bias_words)`` shaped like the layer's weight
        matrix and bias vector.  Reads go through the behavioural SRAM model,
        so voltage-overscaled reads return (and persist) corrupted words.
        """
        self._check_memory(memory)
        layer = self.layers[layer_index]
        width = layer.in_features + 1
        flat = np.zeros(layer.out_features * width, dtype=np.uint64)
        for pe, addresses, scatter, _ in self.gather_plan(layer_index).per_pe():
            flat[scatter] = memory[pe].read(
                addresses, voltage=voltage, temperature=temperature
            )
        image = flat.reshape(layer.out_features, width)
        bias_words = image[:, 0].copy()
        weight_words = np.ascontiguousarray(image[:, 1:].T)
        return weight_words, bias_words

    def _check_memory(self, memory: WeightMemorySystem) -> None:
        if len(memory) < self.num_pes:
            raise ValueError(
                f"placement expects {self.num_pes} banks, memory has {len(memory)}"
            )
        for pe, used in enumerate(self.words_used_per_pe):
            if used > memory[pe].num_words:
                raise ValueError(
                    f"PE {pe} bank too small: needs {used} words, has {memory[pe].num_words}"
                )

    # -------------------------------------------------------- fault masks

    def _word_homes(self, layer: LayerPlacement) -> tuple[np.ndarray, np.ndarray]:
        """Per-word ``(pe, address)`` coordinate matrices for one layer.

        Both arrays have shape ``(fan_in + 1, out_features)``: row 0 is the
        bias word, row ``1 + i`` the weight from input ``i``, columns are
        indexed by neuron id (not list position, so the result is
        independent of ``layer.neurons`` ordering).
        """
        words = layer.in_features + 1
        pe_of = np.zeros((words, layer.out_features), dtype=np.intp)
        addr_of = np.zeros((words, layer.out_features), dtype=np.intp)
        for placement in layer.neurons:
            for segment in placement.segments:
                rows = slice(segment.word_offset, segment.word_offset + segment.length)
                pe_of[rows, placement.neuron] = segment.pe
                addr_of[rows, placement.neuron] = np.arange(
                    segment.base_address, segment.end_address
                )
        return pe_of, addr_of

    def layer_fault_masks(
        self, fault_maps: list[FaultMap], layer_index: int, word_bits: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Translate per-bank fault maps into per-layer injection masks.

        Returns ``(weight_and, weight_or, bias_and, bias_or)`` where the
        weight masks have the layer's ``(in_features, out_features)`` shape
        and the bias masks have shape ``(out_features,)``.  Applying
        ``(word & and) | or`` reproduces exactly the corruption the SRAM
        would inflict at the profiled operating point.  Spilled neurons
        gather each word's mask from the bank that actually hosts it.
        """
        if len(fault_maps) < self.num_pes:
            raise ValueError(
                f"expected {self.num_pes} fault maps, got {len(fault_maps)}"
            )
        full = np.uint64((1 << word_bits) - 1)
        layer = self.layers[layer_index]

        for placement in layer.neurons:
            for segment in placement.segments:
                covered = fault_maps[segment.pe].num_words
                if segment.end_address > covered:
                    raise IndexError(
                        f"placement needs {segment.end_address} words in bank "
                        f"{segment.pe}, fault map covers {covered}"
                    )

        # One gather resolves every word at once: stack the per-bank mask
        # arrays into a (num_banks, max_words) matrix (identity-padded where
        # a bank is shorter) and index it with the per-word (pe, address)
        # coordinates of the placement.
        max_words = max(fault_map.num_words for fault_map in fault_maps)
        bank_and = np.full((len(fault_maps), max_words), full, dtype=np.uint64)
        bank_or = np.zeros((len(fault_maps), max_words), dtype=np.uint64)
        for index, fault_map in enumerate(fault_maps):
            and_masks, or_masks = fault_map.mask_views()
            bank_and[index, : fault_map.num_words] = and_masks & full
            bank_or[index, : fault_map.num_words] = or_masks & full

        pe_of, addr_of = self._word_homes(layer)
        bias_and = bank_and[pe_of[0], addr_of[0]]
        bias_or = bank_or[pe_of[0], addr_of[0]]
        weight_and = bank_and[pe_of[1:], addr_of[1:]]
        weight_or = bank_or[pe_of[1:], addr_of[1:]]
        return weight_and, weight_or, bias_and, bias_or


# ------------------------------------------------------------------ planning


@dataclass(frozen=True)
class CapacityReport:
    """Weight-SRAM capacity accounting for one (widths, geometry) pairing."""

    num_pes: int
    words_per_bank: int
    total_capacity_words: int
    words_required: int
    fits: bool
    #: per-PE occupancy after allocation; empty when the model does not fit
    words_used_per_pe: tuple[int, ...]
    per_layer_words: tuple[int, ...]
    #: neurons whose block needed more than one segment (0 when not fits)
    spilled_neurons: int
    #: total placement segments (== total neurons when nothing spills)
    num_segments: int

    @property
    def utilization(self) -> float:
        """Fraction of the weight-SRAM capacity the model occupies."""
        if self.total_capacity_words == 0:
            return float("inf")
        return self.words_required / self.total_capacity_words

    def to_text(self) -> str:
        verdict = "fits" if self.fits else "DOES NOT FIT"
        lines = [
            f"{self.num_pes} PEs x {self.words_per_bank} words: "
            f"{self.words_required}/{self.total_capacity_words} words "
            f"({self.utilization:.1%}) — {verdict}",
        ]
        if self.fits:
            lines.append(
                f"  spilled neurons: {self.spilled_neurons}, "
                f"segments: {self.num_segments}, "
                f"per-PE occupancy: {list(self.words_used_per_pe)}"
            )
        return "\n".join(lines)


def plan_capacity(
    widths: tuple[int, ...] | list[int],
    num_pes: int,
    words_per_bank: int,
) -> CapacityReport:
    """Capacity planner: does a topology fit a geometry, and how tightly?

    Never raises on overflow — the ``fits`` flag reports it instead.  Because
    the allocator can split a block at any word boundary, a model fits
    exactly when its total word requirement is within the total capacity.
    """
    if num_pes <= 0 or words_per_bank <= 0:
        raise ValueError("num_pes and words_per_bank must be positive")
    widths = tuple(int(w) for w in widths)
    per_layer = tuple(
        (fan_in + 1) * fan_out for fan_in, fan_out in zip(widths[:-1], widths[1:])
    )
    required = sum(per_layer)
    capacity = num_pes * words_per_bank
    if required > capacity:
        return CapacityReport(
            num_pes=num_pes,
            words_per_bank=words_per_bank,
            total_capacity_words=capacity,
            words_required=required,
            fits=False,
            words_used_per_pe=(),
            per_layer_words=per_layer,
            spilled_neurons=0,
            num_segments=0,
        )
    return WeightPlacement(widths, num_pes, words_per_bank).capacity_report()


# ------------------------------------------------------------------ programs


@dataclass
class LayerProgram:
    """Executable description of one layer on the NPU."""

    layer_index: int
    in_features: int
    out_features: int
    activation: str
    quantization: LayerQuantization
    #: number of time-multiplexed passes over the PE ring
    passes: int
    #: estimated cycles to execute the layer once (see MicrocodeCompiler)
    cycles: int
    #: multiply-accumulate operations in the layer
    macs: int


@dataclass
class NpuProgram:
    """A compiled model: placement plus the per-layer execution schedule."""

    topology: tuple[int, ...]
    placement: WeightPlacement
    layers: list[LayerProgram]
    word_bits: int

    @property
    def total_cycles_per_inference(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_macs_per_inference(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weight_words(self) -> int:
        return sum((l.in_features + 1) * l.out_features for l in self.layers)


class MicrocodeCompiler:
    """Compile a :class:`~repro.nn.network.Network` into an NPU program.

    Parameters
    ----------
    num_pes:
        Number of processing elements in the systolic ring (8 for SNNAC).
    words_per_bank:
        Capacity of each PE's weight SRAM, in words.
    pipeline_overhead:
        Fixed per-pass cycle overhead (weight fetch setup, accumulator
        drain, AFU latency).
    """

    def __init__(
        self,
        num_pes: int = 8,
        words_per_bank: int = 512,
        pipeline_overhead: int = 4,
    ) -> None:
        if num_pes <= 0:
            raise ValueError("num_pes must be positive")
        if words_per_bank <= 0:
            raise ValueError("words_per_bank must be positive")
        if pipeline_overhead < 0:
            raise ValueError("pipeline_overhead must be non-negative")
        self.num_pes = int(num_pes)
        self.words_per_bank = int(words_per_bank)
        self.pipeline_overhead = int(pipeline_overhead)

    def capacity_report(self, network: Network | tuple[int, ...]) -> CapacityReport:
        """Plan whether ``network`` fits this compiler's geometry (no raise)."""
        widths = network.widths if isinstance(network, Network) else tuple(network)
        return plan_capacity(widths, self.num_pes, self.words_per_bank)

    def compile(self, network: Network, quantizer: WeightQuantizer) -> NpuProgram:
        """Produce placement, per-layer formats, and the execution schedule."""
        placement = WeightPlacement(network.widths, self.num_pes, self.words_per_bank)
        formats = quantizer.layer_formats(network)
        layers: list[LayerProgram] = []
        for index, (layer, fmt) in enumerate(zip(network.layers, formats)):
            in_features = layer.in_features
            out_features = layer.out_features
            # each pass streams the full input vector past the ring with at
            # most one segment active per PE; spilled layers therefore cost
            # whole extra passes exactly where the geometry forced extra
            # address ranges
            passes = placement.layers[index].passes_required(self.num_pes)
            cycles = passes * (in_features + 1 + self.pipeline_overhead)
            macs = in_features * out_features
            layers.append(
                LayerProgram(
                    layer_index=index,
                    in_features=in_features,
                    out_features=out_features,
                    activation=layer.activation.name,
                    quantization=fmt,
                    passes=passes,
                    cycles=cycles,
                    macs=macs,
                )
            )
        return NpuProgram(
            topology=network.widths,
            placement=placement,
            layers=layers,
            word_bits=quantizer.total_bits,
        )
