"""Activation Function Unit (AFU) with piecewise-linear approximation.

SNNAC's AFU "minimizes energy and area footprint with piecewise-linear
approximation of activation functions (e.g. sigmoid or ReLU)".  The model
implements a segment-table PWL approximator: the input range is divided into
uniform segments, each storing a slope and intercept in a small LUT, with
saturation outside the covered range.  ReLU is exact (it is already piecewise
linear); sigmoid and tanh use the LUT.
"""

from __future__ import annotations

import numpy as np

from ..nn.activations import get_activation

__all__ = ["PiecewiseLinearFunction", "ActivationFunctionUnit"]


class PiecewiseLinearFunction:
    """A uniform-segment piecewise-linear approximation of a scalar function.

    Parameters
    ----------
    function:
        Vectorized reference function to approximate.
    input_range:
        ``(low, high)`` range covered by the segment table; inputs outside
        the range saturate to the function value at the range edge.
    num_segments:
        Number of uniform segments (LUT entries).  SNNAC-class AFUs use a
        small table; 16 segments keep the sigmoid approximation error below
        ~1e-2 which is negligible next to SRAM-fault-induced error.
    """

    def __init__(
        self,
        function,
        input_range: tuple[float, float] = (-8.0, 8.0),
        num_segments: int = 16,
    ) -> None:
        low, high = float(input_range[0]), float(input_range[1])
        if not low < high:
            raise ValueError("input_range must satisfy low < high")
        if num_segments < 1:
            raise ValueError("num_segments must be >= 1")
        self.low = low
        self.high = high
        self.num_segments = int(num_segments)
        edges = np.linspace(low, high, self.num_segments + 1)
        left_values = np.asarray(function(edges[:-1]), dtype=float)
        right_values = np.asarray(function(edges[1:]), dtype=float)
        self.edges = edges
        self.slopes = (right_values - left_values) / np.diff(edges)
        self.intercepts = left_values - self.slopes * edges[:-1]
        self.saturate_low = float(function(np.array([low]))[0])
        self.saturate_high = float(function(np.array([high]))[0])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        clipped = np.clip(x, self.low, self.high)
        segment = np.minimum(
            ((clipped - self.low) / (self.high - self.low) * self.num_segments).astype(int),
            self.num_segments - 1,
        )
        result = self.slopes[segment] * clipped + self.intercepts[segment]
        result = np.where(x < self.low, self.saturate_low, result)
        result = np.where(x > self.high, self.saturate_high, result)
        return result

    def max_error(self, num_points: int = 2001, reference=None) -> float:
        """Maximum absolute approximation error over the covered range."""
        xs = np.linspace(self.low, self.high, num_points)
        approx = self(xs)
        if reference is None:
            raise ValueError("reference function required to measure error")
        return float(np.max(np.abs(approx - np.asarray(reference(xs), dtype=float))))


class ActivationFunctionUnit:
    """The accelerator's shared activation unit.

    Supports the activations used by the paper's benchmark models (sigmoid,
    tanh, ReLU, identity).  Softmax is not a hardware activation — the paper's
    classification benchmarks read out the max-scoring output — so requests
    for softmax fall back to identity (argmax is taken downstream).
    """

    #: LUT-approximated activations and the input range each table covers
    #: (tanh saturates earlier than sigmoid, so its table spans a tighter
    #: range for the same segment count).
    _LUT_ACTIVATIONS = {"sigmoid": (-8.0, 8.0), "tanh": (-4.0, 4.0)}

    def __init__(self, num_segments: int = 16, input_range: tuple[float, float] | None = None) -> None:
        self.num_segments = int(num_segments)
        self.input_range = input_range
        self._tables: dict[str, PiecewiseLinearFunction] = {}
        for name, default_range in self._LUT_ACTIVATIONS.items():
            reference = get_activation(name)
            table_range = input_range if input_range is not None else default_range
            self._tables[name] = PiecewiseLinearFunction(
                reference.forward, input_range=table_range, num_segments=self.num_segments
            )

    def supported(self) -> tuple[str, ...]:
        return ("identity", "relu", "sigmoid", "tanh", "softmax")

    def apply(self, name: str, x: np.ndarray) -> np.ndarray:
        """Apply the named activation with hardware (PWL) semantics."""
        key = str(name).lower()
        x = np.asarray(x, dtype=float)
        if key in ("identity", "softmax"):
            return x.copy()
        if key == "relu":
            return np.maximum(x, 0.0)
        if key in self._tables:
            return self._tables[key](x)
        raise ValueError(f"AFU does not implement activation {name!r}")

    def approximation_error(self, name: str) -> float:
        """Max PWL error versus the exact activation (0 for exact ones)."""
        key = str(name).lower()
        if key not in self._tables:
            return 0.0
        reference = get_activation(key)
        return self._tables[key].max_error(reference=reference.forward)
