"""SNNAC system-on-chip model.

Ties together the subsystems the test chip integrates (Fig. 8 of the paper):
the NPU (PE ring + AFU + weight SRAMs), the supply regulators for the two
voltage domains, a behavioural stand-in for the OpenMSP430 runtime
microcontroller, the environmental conditions the chip sits in, and the
calibrated energy model.  The MATIC deployment flow and the in-situ canary
controller operate on this object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.network import Network
from ..quant.fixed_point import FixedPointFormat
from ..quant.quantizer import WeightQuantizer
from ..sram import calibration
from ..sram.array import WeightMemorySystem
from ..sram.bitcell import BitcellVariationModel
from ..sram.regulator import VoltageRegulator
from ..sram.variation import EnvironmentalConditions, VariationScenario
from .afu import ActivationFunctionUnit
from .energy import NOMINAL_OPERATING_POINT, OperatingPoint, SnnacEnergyModel
from .npu import InferenceStats, Npu

__all__ = [
    "SnnacConfig",
    "Microcontroller",
    "Snnac",
    "CHIP_CHARACTERISTICS",
    "chip_characteristics",
]


@dataclass
class SnnacConfig:
    """Configuration of the modelled accelerator instance."""

    num_pes: int = 8
    words_per_bank: int = 512
    word_bits: int = 16
    data_frac_bits: int = 12
    pipeline_overhead: int = 4
    seed: int | None = 0

    @property
    def weight_sram_bits(self) -> int:
        """Total weight-SRAM capacity in bits."""
        return self.num_pes * self.words_per_bank * self.word_bits


# --------------------------------------------------------------------------
# Fabricated test-chip anchors (Fig. 7b / Table II): measured at the default
# SnnacConfig geometry, scaled analytically away from it.
# --------------------------------------------------------------------------

#: Measured per-cycle energy split at nominal (Table II, 0.9 V): used to
#: weight the measured chip-level power/energy between the PE logic (scales
#: with PE count) and the weight SRAM (scales with bit count).
_NOMINAL_LOGIC_PJ = 30.58
_NOMINAL_SRAM_PJ = 36.50

#: SRAM capacity the fabricated chip integrates beyond the weight banks
#: (IO/activation buffers and the microcontroller memories): 9 KB total
#: minus the 8 KB of weight banks.
_NON_WEIGHT_SRAM_KB = 1.0

#: Rough die-area split between PE logic (+ periphery) and the weight SRAM
#: macros, used to scale the measured core area with the geometry.
_LOGIC_AREA_FRACTION = 0.7
_SRAM_AREA_FRACTION = 0.3


def chip_characteristics(config: SnnacConfig | None = None) -> dict:
    """Chip characteristics derived from one geometry source of truth.

    For the default :class:`SnnacConfig` this reproduces the fabricated
    test chip's reported numbers exactly (the scale factors are 1.0); for
    any other geometry the measured anchors are scaled analytically — PE
    logic with the PE count, SRAM with the weight-bank bit count — so a
    report can never mix a non-default geometry with the 8-PE silicon
    numbers.
    """
    config = config if config is not None else SnnacConfig()
    reference = SnnacConfig()
    pe_ratio = config.num_pes / reference.num_pes
    bit_ratio = config.weight_sram_bits / reference.weight_sram_bits
    energy_scale = (_NOMINAL_LOGIC_PJ * pe_ratio + _NOMINAL_SRAM_PJ * bit_ratio) / (
        _NOMINAL_LOGIC_PJ + _NOMINAL_SRAM_PJ
    )
    return {
        "technology": "TSMC GP 65 nm",
        "core_area_mm2": 1.15
        * 1.2
        * (_LOGIC_AREA_FRACTION * pe_ratio + _SRAM_AREA_FRACTION * bit_ratio),
        "sram_kb": config.weight_sram_bits / 8192 + _NON_WEIGHT_SRAM_KB,
        "nominal_voltage": 0.9,
        "nominal_frequency_hz": 250.0e6,
        "nominal_power_w": 16.8e-3 * energy_scale,
        "nominal_energy_per_cycle_pj": 67.1 * energy_scale,
        "num_pes": config.num_pes,
        "words_per_bank": config.words_per_bank,
        "word_bits": config.word_bits,
    }


#: Nominal characteristics of the fabricated SNNAC test chip (Fig. 7b),
#: used by the Table III comparison benchmark.  Derived from the default
#: :class:`SnnacConfig` so the geometry appears in exactly one place.
CHIP_CHARACTERISTICS = chip_characteristics()


@dataclass
class Microcontroller:
    """Behavioural stand-in for the on-chip OpenMSP430 runtime controller.

    The real core runs control firmware: it moves inference inputs/outputs
    through memory-mapped buffers, sleeps between inferences, and wakes
    periodically to execute the canary-based voltage-control routine.  Only
    that scheduling behaviour matters to the methodology, so the model tracks
    wake/sleep state and counts control invocations.
    """

    asleep: bool = True
    wake_count: int = 0
    control_routine_runs: int = 0
    inference_requests: int = 0
    log: list[str] = field(default_factory=list)

    def wake(self, reason: str = "") -> None:
        self.asleep = False
        self.wake_count += 1
        if reason:
            self.log.append(f"wake: {reason}")

    def sleep(self) -> None:
        self.asleep = True

    def record_control_run(self) -> None:
        self.control_routine_runs += 1

    def record_inference(self, count: int = 1) -> None:
        self.inference_requests += int(count)


class Snnac:
    """The SNNAC accelerator SoC.

    Parameters
    ----------
    config:
        Geometry / datapath configuration.
    variation_model:
        Bit-cell variation model used to instantiate the weight SRAMs; each
        constructed ``Snnac`` is one "chip instance" with its own sampled
        variation (different seeds model different dies).
    energy_model:
        Calibrated chip energy model (defaults to the paper calibration).
    environment:
        Ambient conditions; mutable via :meth:`set_environment`.
    scenario:
        Optional :class:`~repro.sram.variation.VariationScenario` threading
        correlated sampling, the process corner (V_min shift + leakage
        scale), and trajectory context through the chip.  Defaults preserve
        the legacy i.i.d./typical-corner behaviour exactly.
    """

    def __init__(
        self,
        config: SnnacConfig | None = None,
        variation_model: BitcellVariationModel | None = None,
        energy_model: SnnacEnergyModel | None = None,
        environment: EnvironmentalConditions | None = None,
        scenario: VariationScenario | None = None,
    ) -> None:
        self.config = config or SnnacConfig()
        self.scenario = scenario
        self.memory = WeightMemorySystem.build(
            num_banks=self.config.num_pes,
            words_per_bank=self.config.words_per_bank,
            word_bits=self.config.word_bits,
            variation_model=variation_model,
            seed=self.config.seed,
            scenario=scenario,
        )
        data_format = FixedPointFormat(self.config.word_bits, self.config.data_frac_bits)
        self.npu = Npu(
            self.memory,
            afu=ActivationFunctionUnit(),
            data_format=data_format,
            pipeline_overhead=self.config.pipeline_overhead,
        )
        # geometry-parametric default: scaled from the calibrated 65 nm
        # anchors, bit-exact to the test-chip calibration at the default
        # SnnacConfig (scale factors 1.0)
        self.energy_model = energy_model or SnnacEnergyModel.for_geometry(
            num_pes=self.config.num_pes,
            words_per_bank=self.config.words_per_bank,
            word_bits=self.config.word_bits,
        )
        if scenario is not None:
            self.energy_model = self.energy_model.with_leakage_scale(
                scenario.corner.leakage_scale
            )
        self.environment = environment or EnvironmentalConditions()
        self._apply_vmin_offsets()
        self.logic_regulator = VoltageRegulator(initial_voltage=0.9)
        self.sram_regulator = VoltageRegulator(initial_voltage=0.9)
        self.frequency = NOMINAL_OPERATING_POINT.frequency
        self.mcu = Microcontroller()

    def characteristics(self) -> dict:
        """Reported chip characteristics for *this* instance's geometry.

        Derived from ``self.config`` through :func:`chip_characteristics`,
        so a non-default geometry can never silently report the fabricated
        8-PE chip's numbers.
        """
        return chip_characteristics(self.config)

    # --------------------------------------------------------- deployment

    def deploy(self, network: Network, quantizer: WeightQuantizer | None = None):
        """Compile and load a model into the weight SRAMs at nominal voltage."""
        quantizer = quantizer or WeightQuantizer(total_bits=self.config.word_bits)
        self.mcu.wake("deploy model")
        program = self.npu.deploy(network, quantizer)
        self.mcu.sleep()
        return program

    def deploy_quantized(self, program, quantized):
        """Load pre-quantized weights against a pre-compiled program.

        Behaviourally identical to :meth:`deploy` (same MCU wake/sleep
        bracket, same storage path) for a caller that already compiled the
        program and quantized the network — the voltage-axis-batched MATIC
        flow compiles once per sweep and re-deploys each operating point's
        retrained weights through this entry point.
        """
        self.mcu.wake("deploy model")
        self.npu.deploy_quantized(program, quantized)
        self.mcu.sleep()
        return program

    # -------------------------------------------------------- environment

    def set_environment(self, environment: EnvironmentalConditions) -> None:
        """Change the ambient conditions (e.g. a temperature-chamber or
        trajectory step); aging/drift ``vmin_shift`` is pushed into every
        weight bank on top of the process-corner skew."""
        self.environment = environment
        self._apply_vmin_offsets()

    def _apply_vmin_offsets(self) -> None:
        corner_shift = (
            float(self.scenario.corner.vmin_shift) if self.scenario is not None else 0.0
        )
        offset = corner_shift + float(self.environment.vmin_shift)
        for bank in self.memory:
            bank.vmin_offset = offset

    @property
    def temperature(self) -> float:
        return self.environment.temperature

    # ----------------------------------------------------- operating point

    def set_operating_point(self, point: OperatingPoint) -> None:
        """Program both supply rails and the clock to an operating point."""
        self.logic_regulator.set_voltage(point.logic_voltage)
        self.sram_regulator.set_voltage(point.sram_voltage)
        self.frequency = point.frequency

    @property
    def operating_point(self) -> OperatingPoint:
        return OperatingPoint(
            logic_voltage=self.logic_regulator.voltage,
            sram_voltage=self.sram_regulator.voltage,
            frequency=self.frequency,
        )

    @property
    def effective_sram_voltage(self) -> float:
        """SRAM rail voltage including any static supply noise/IR drop."""
        return self.sram_regulator.voltage + self.environment.supply_noise

    # ---------------------------------------------------------- inference

    def run_inference(self, inputs: np.ndarray) -> tuple[np.ndarray, InferenceStats]:
        """Run a batch of inferences at the current operating point."""
        self.mcu.wake("inference")
        outputs, stats = self.npu.run(
            inputs,
            sram_voltage=self.effective_sram_voltage,
            temperature=self.environment.temperature,
        )
        self.mcu.record_inference(stats.batch_size)
        self.mcu.sleep()
        return outputs, stats

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        outputs, _ = self.run_inference(inputs)
        return outputs

    def run_voltage_sweep(
        self, inputs: np.ndarray, sram_voltages
    ) -> list[tuple[np.ndarray, InferenceStats]]:
        """Run one refreshed inference batch at each SRAM rail voltage.

        The batched equivalent of programming the SRAM regulator to each
        voltage in turn, refreshing the deployed weights, and calling
        :meth:`run_inference` — each requested voltage is programmed through
        the regulator (quantized to its step, clamped to its range) and each
        measurement sees exactly the corruption its own operating point
        inflicts (supply noise and ambient temperature from the current
        environment included), but the NPU is free to order the points so
        that ones with identical corruption masks share decoded weight
        images (:meth:`~repro.accelerator.npu.Npu.run_sweep`).  The
        regulator is left programmed at the last requested voltage.  Results
        are in ``sram_voltages`` order.
        """
        # program every point through the regulator so its quantization and
        # clamping apply exactly as in sequential operation; the rail ends
        # at the last requested voltage
        programmed = [
            self.sram_regulator.set_voltage(float(v)) for v in sram_voltages
        ]
        self.mcu.wake("voltage sweep")
        noise = self.environment.supply_noise
        results = self.npu.run_sweep(
            inputs,
            [v + noise for v in programmed],
            temperature=self.environment.temperature,
        )
        for _, stats in results:
            self.mcu.record_inference(stats.batch_size)
        self.mcu.sleep()
        return results

    def refresh_weights(self) -> None:
        """Rewrite the deployed model into SRAM (used when changing operating points)."""
        self.npu.refresh_weights()

    # ------------------------------------------------------------- energy

    def energy_per_inference(self, point: OperatingPoint | None = None) -> float:
        """Energy per single inference in picojoules at an operating point."""
        if self.npu.program is None:
            raise RuntimeError("no model deployed")
        point = point or self.operating_point
        cycles = self.npu.program.total_cycles_per_inference
        return cycles * self.energy_model.energy_per_cycle(point)

    def throughput_gops(self, point: OperatingPoint | None = None) -> float:
        """Throughput in GOPS (two ops per MAC) at an operating point."""
        if self.npu.program is None:
            raise RuntimeError("no model deployed")
        point = point or self.operating_point
        program = self.npu.program
        ops_per_cycle = 2.0 * program.total_macs_per_inference / program.total_cycles_per_inference
        return ops_per_cycle * point.frequency / 1e9

    def efficiency_gops_per_watt(self, point: OperatingPoint | None = None) -> float:
        """Energy efficiency in GOPS/W at an operating point (Table III metric)."""
        point = point or self.operating_point
        power = self.energy_model.power(point)
        return self.throughput_gops(point) / power

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Snnac({self.config.num_pes} PEs, "
            f"{self.memory.total_bytes / 1024:.1f} KiB weight SRAM, "
            f"logic={self.logic_regulator.voltage:.2f} V, "
            f"sram={self.sram_regulator.voltage:.2f} V)"
        )
