"""The Neural Processing Unit: compiled-model execution on the PE ring.

The NPU owns a compiled :class:`~repro.accelerator.microcode.NpuProgram`,
the per-PE weight memory system, the systolic ring, and the activation
function unit.  Its :meth:`run` method performs end-to-end inference at a
requested SRAM operating point, which is the accelerator-side primitive every
application-error experiment in the paper is built from.

Decode memoization
------------------
Decoding a layer's SRAM words into float weights (``word_to_float``) is pure
in the words, and across a voltage sweep the words barely change: a bank's
:attr:`~repro.sram.array.SramBank.content_epoch` bumps only when a write or a
corrupting read actually changes stored words.  The NPU therefore memoizes
the decoded ``(biases, weights)`` per layer, keyed first on the hosting
banks' content epochs (the no-change fast path — no hashing at all) and then
on a digest of the word image (so re-reads at an operating point whose
corruption masks are identical reuse the decode even across weight
refreshes).  :meth:`Npu.run_sweep` builds on this: it groups the requested
voltages by their banks' cached corruption-mask digests and runs
identical-mask points back to back, so a fig10-style multi-voltage sweep
decodes each distinct corruption pattern once.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..nn.network import Network
from ..quant.fixed_point import FixedPointFormat
from ..quant.quantizer import QuantizedWeights, WeightQuantizer
from ..sram.array import WeightMemorySystem
from .afu import ActivationFunctionUnit
from .microcode import LayerProgram, MicrocodeCompiler, NpuProgram
from .systolic import (
    LayerExecutionStats,
    SystolicRing,
    decode_layer_words,
    evaluate_layer_words,
)

__all__ = ["InferenceStats", "Npu"]

#: Decoded weight images retained per layer (distinct corruption patterns
#: seen across a sweep; FIFO eviction beyond this).
_DECODE_CACHE_LIMIT = 32


class _LayerDecodeMemo:
    """Per-layer memo of decoded float weights (epoch fast path + digests)."""

    __slots__ = ("epochs", "decoded", "by_digest")

    def __init__(self) -> None:
        self.epochs: tuple[int, ...] | None = None
        self.decoded: tuple[np.ndarray, np.ndarray] | None = None
        self.by_digest: dict[bytes, tuple[np.ndarray, np.ndarray]] = {}


@dataclass
class InferenceStats:
    """Aggregate execution statistics for one :meth:`Npu.run` call."""

    batch_size: int = 0
    cycles: int = 0
    macs: int = 0
    sram_reads: int = 0
    layer_stats: list[LayerExecutionStats] = field(default_factory=list)

    @property
    def cycles_per_inference(self) -> float:
        return self.cycles / self.batch_size if self.batch_size else 0.0


class Npu:
    """SNNAC's neural processing unit.

    Parameters
    ----------
    memory:
        Per-PE weight SRAM banks.
    afu:
        Activation function unit (piecewise-linear approximations).
    data_format:
        Fixed-point format of the activation datapath.
    pipeline_overhead:
        Per-pass cycle overhead, forwarded to the compiler and the ring.
    """

    def __init__(
        self,
        memory: WeightMemorySystem,
        afu: ActivationFunctionUnit | None = None,
        data_format: FixedPointFormat | None = None,
        pipeline_overhead: int = 4,
    ) -> None:
        self.memory = memory
        self.afu = afu or ActivationFunctionUnit()
        self.data_format = data_format or FixedPointFormat(16, 12)
        self.pipeline_overhead = int(pipeline_overhead)
        self.ring = SystolicRing(
            memory, data_format=self.data_format, pipeline_overhead=self.pipeline_overhead
        )
        self.program: NpuProgram | None = None
        self._stored_words: QuantizedWeights | None = None
        self._decode_memo: dict[int, _LayerDecodeMemo] = {}
        # compiled per-bank (addresses, words) write plan for refresh_weights
        self._refresh_plan: list[tuple[int, np.ndarray, np.ndarray]] = []

    # --------------------------------------------------------- deployment

    def deploy(self, network: Network, quantizer: WeightQuantizer) -> NpuProgram:
        """Compile ``network`` and load its quantized weights into SRAM."""
        compiler = MicrocodeCompiler(
            num_pes=len(self.memory),
            words_per_bank=min(bank.num_words for bank in self.memory),
            pipeline_overhead=self.pipeline_overhead,
        )
        program = compiler.compile(network, quantizer)
        quantized = quantizer.quantize_network(network)
        self._store_and_plan(program, quantized)
        return program

    def deploy_quantized(self, program: NpuProgram, quantized: QuantizedWeights) -> None:
        """Load an already-compiled program and quantized weights."""
        self._store_and_plan(program, quantized)

    def _store_and_plan(self, program: NpuProgram, quantized: QuantizedWeights) -> None:
        """Write the model into SRAM and retain the write plan for refreshes.

        Compiles the placement's full-model write plan once: executing it is
        exactly ``placement.store``, and keeping it makes every subsequent
        :meth:`refresh_weights` one planned write per bank.
        """
        plan = program.placement.compile_write_plan(self.memory, quantized)
        for pe, addresses, words in plan:
            self.memory[pe].write(addresses, words)
        self.program = program
        self._stored_words = quantized
        self._decode_memo.clear()
        self._refresh_plan = plan

    def refresh_weights(self) -> None:
        """Rewrite the deployed weights into SRAM.

        Models the runtime controller restoring weight state (for instance
        after an aggressive voltage excursion disturbed cells that the
        deployed fault map did not account for).  Executes the compiled
        per-bank write plan; content-identical refreshes leave each bank's
        :attr:`~repro.sram.array.SramBank.content_epoch` untouched, so the
        decoded-weight memo survives them.
        """
        if self.program is None or self._stored_words is None:
            raise RuntimeError("no model deployed")
        for pe, addresses, words in self._refresh_plan:
            self.memory[pe].write_planned(addresses, words)

    # ------------------------------------------------- decode memoization

    def _decode_memoized(
        self,
        program: LayerProgram,
        word_matrix: np.ndarray,
        epochs: tuple[int, ...],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode a layer's word image, reusing cached floats when possible.

        ``epochs`` are the hosting banks' content epochs after the SRAM
        fetch: equal epochs mean no stored word changed since the previous
        call, so the word image — and its decode — are identical (no hashing
        needed).  On an epoch miss the word image's digest is looked up, so
        operating points that corrupt identically (or a refresh back to
        pristine words) still reuse the decode.
        """
        memo = self._decode_memo.get(program.layer_index)
        if memo is None:
            memo = _LayerDecodeMemo()
            self._decode_memo[program.layer_index] = memo
        if memo.epochs == epochs and memo.decoded is not None:
            return memo.decoded
        digest = hashlib.blake2b(word_matrix.tobytes(), digest_size=16).digest()
        decoded = memo.by_digest.get(digest)
        if decoded is None:
            decoded = decode_layer_words(word_matrix, program)
            memo.by_digest[digest] = decoded
            while len(memo.by_digest) > _DECODE_CACHE_LIMIT:
                memo.by_digest.pop(next(iter(memo.by_digest)))
        memo.epochs = epochs
        memo.decoded = decoded
        return decoded

    # ---------------------------------------------------------- inference

    def run(
        self,
        inputs: np.ndarray,
        sram_voltage: float = 0.9,
        temperature: float = 25.0,
        collect_stats: bool = True,
    ) -> tuple[np.ndarray, InferenceStats]:
        """Run inference on a batch at the given SRAM operating point.

        Returns ``(outputs, stats)``.  The input batch is quantized to the
        data format at the NPU boundary (the paper's µC writes fixed-point
        inputs into memory-mapped buffers).
        """
        if self.program is None:
            raise RuntimeError("no model deployed; call deploy() first")
        activations = self.data_format.quantize(np.asarray(inputs, dtype=float))
        if activations.ndim == 1:
            activations = activations.reshape(1, -1)
        stats = InferenceStats(batch_size=activations.shape[0])

        for layer_program in self.program.layers:
            pre_activation, layer_stats = self.ring.compute_layer(
                activations,
                layer_program,
                self.program.placement,
                voltage=sram_voltage,
                temperature=temperature,
                decoder=self._decode_memoized,
                # activations are quantized at the NPU boundary and after
                # every AFU application, so the layer need not re-quantize
                inputs_quantized=True,
            )
            activations = self.afu.apply(layer_program.activation, pre_activation)
            activations = self.data_format.quantize(activations)
            if collect_stats:
                stats.layer_stats.append(layer_stats)
                stats.cycles += layer_stats.cycles
                stats.macs += layer_stats.macs
                stats.sram_reads += layer_stats.sram_reads

        return activations, stats

    def run_sweep(
        self,
        inputs: np.ndarray,
        voltages,
        temperature: float = 25.0,
        collect_stats: bool = True,
        refresh: bool = True,
    ) -> list[tuple[np.ndarray, InferenceStats]]:
        """Batched inference across SRAM voltages (one refreshed run each).

        For every voltage the deployed weights are rewritten first (as
        :meth:`refresh_weights` — so corruption from one operating point
        never leaks into another's measurement) and a full :meth:`run` is
        performed at that voltage.  Results are returned in the order of
        ``voltages``.

        Execution order is an internal detail the refresh makes observable
        only through performance: voltages whose cached corruption-mask
        digests (:meth:`~repro.sram.array.SramBank.mask_digest`) agree across
        every bank corrupt reads identically, so they are run back to back
        and share the memoized decoded weight images.  With
        ``refresh=False`` no reordering happens (corruption then persists
        point to point, so order is semantics) and each point runs on
        whatever the previous one left in storage.

        Under ``refresh=True``, *exact-duplicate* voltage entries are
        provably identical runs — same corruption-mask signature over the
        same freshly-rewritten weights on the same inputs — so only the
        first occurrence executes and later occurrences return the memoized
        ``(outputs, stats)`` pair.  Duplicate positions alias the first
        occurrence's arrays rather than copying them; treat sweep outputs as
        read-only (every in-tree caller does).  With ``refresh=False``
        duplicates still execute, because each run inherits whatever
        corruption the previous point left behind.
        """
        if self.program is None:
            raise RuntimeError("no model deployed; call deploy() first")
        voltages = [float(v) for v in voltages]
        order = list(range(len(voltages)))
        duplicate_of: dict[int, int] = {}
        if refresh:
            first_at: dict[float, int] = {}
            for index, voltage in enumerate(voltages):
                canonical = first_at.setdefault(voltage, index)
                if canonical != index:
                    duplicate_of[index] = canonical
            group_rank: dict[tuple[bytes, ...], int] = {}
            ranks = []
            for voltage in voltages:
                signature = tuple(
                    bank.mask_digest(voltage, temperature) for bank in self.memory
                )
                ranks.append(group_rank.setdefault(signature, len(group_rank)))
            order = [index for index in order if index not in duplicate_of]
            order.sort(key=lambda index: (ranks[index], index))
        results: list[tuple[np.ndarray, InferenceStats] | None] = [None] * len(voltages)
        for index in order:
            if refresh:
                self.refresh_weights()
            results[index] = self.run(
                inputs,
                sram_voltage=voltages[index],
                temperature=temperature,
                collect_stats=collect_stats,
            )
        for index, canonical in duplicate_of.items():
            results[index] = results[canonical]
        return results

    def predict(
        self,
        inputs: np.ndarray,
        sram_voltage: float = 0.9,
        temperature: float = 25.0,
    ) -> np.ndarray:
        """Inference returning outputs only."""
        outputs, _ = self.run(
            inputs, sram_voltage=sram_voltage, temperature=temperature, collect_stats=False
        )
        return outputs

    def reference_forward(self, inputs: np.ndarray) -> np.ndarray:
        """Software evaluation of the deployed program from pristine words.

        Shares the arithmetic path of the hardware ring
        (:func:`~repro.accelerator.systolic.evaluate_layer_words`) but feeds
        it the stored quantized words directly instead of SRAM reads, so it
        is bit-identical to :meth:`run` under faultless SRAM — for *any*
        chip geometry, spilled placements included.  This is the oracle the
        geometry-invariance tests compare the hardware path against.
        """
        if self.program is None or self._stored_words is None:
            raise RuntimeError("no model deployed; call deploy() first")
        activations = self.data_format.quantize(np.asarray(inputs, dtype=float))
        if activations.ndim == 1:
            activations = activations.reshape(1, -1)
        for layer_program, weight_words, bias_words in zip(
            self.program.layers,
            self._stored_words.weight_words,
            self._stored_words.bias_words,
        ):
            word_matrix = np.zeros(
                (layer_program.out_features, layer_program.in_features + 1),
                dtype=np.uint64,
            )
            word_matrix[:, 0] = bias_words
            word_matrix[:, 1:] = weight_words.T
            pre_activation = evaluate_layer_words(
                activations, word_matrix, layer_program, self.data_format
            )
            activations = self.afu.apply(layer_program.activation, pre_activation)
            activations = self.data_format.quantize(activations)
        return activations
