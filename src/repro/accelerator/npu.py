"""The Neural Processing Unit: compiled-model execution on the PE ring.

The NPU owns a compiled :class:`~repro.accelerator.microcode.NpuProgram`,
the per-PE weight memory system, the systolic ring, and the activation
function unit.  Its :meth:`run` method performs end-to-end inference at a
requested SRAM operating point, which is the accelerator-side primitive every
application-error experiment in the paper is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.network import Network
from ..quant.fixed_point import FixedPointFormat
from ..quant.quantizer import QuantizedWeights, WeightQuantizer
from ..sram.array import WeightMemorySystem
from .afu import ActivationFunctionUnit
from .microcode import MicrocodeCompiler, NpuProgram
from .systolic import LayerExecutionStats, SystolicRing, evaluate_layer_words

__all__ = ["InferenceStats", "Npu"]


@dataclass
class InferenceStats:
    """Aggregate execution statistics for one :meth:`Npu.run` call."""

    batch_size: int = 0
    cycles: int = 0
    macs: int = 0
    sram_reads: int = 0
    layer_stats: list[LayerExecutionStats] = field(default_factory=list)

    @property
    def cycles_per_inference(self) -> float:
        return self.cycles / self.batch_size if self.batch_size else 0.0


class Npu:
    """SNNAC's neural processing unit.

    Parameters
    ----------
    memory:
        Per-PE weight SRAM banks.
    afu:
        Activation function unit (piecewise-linear approximations).
    data_format:
        Fixed-point format of the activation datapath.
    pipeline_overhead:
        Per-pass cycle overhead, forwarded to the compiler and the ring.
    """

    def __init__(
        self,
        memory: WeightMemorySystem,
        afu: ActivationFunctionUnit | None = None,
        data_format: FixedPointFormat | None = None,
        pipeline_overhead: int = 4,
    ) -> None:
        self.memory = memory
        self.afu = afu or ActivationFunctionUnit()
        self.data_format = data_format or FixedPointFormat(16, 12)
        self.pipeline_overhead = int(pipeline_overhead)
        self.ring = SystolicRing(
            memory, data_format=self.data_format, pipeline_overhead=self.pipeline_overhead
        )
        self.program: NpuProgram | None = None
        self._stored_words: QuantizedWeights | None = None

    # --------------------------------------------------------- deployment

    def deploy(self, network: Network, quantizer: WeightQuantizer) -> NpuProgram:
        """Compile ``network`` and load its quantized weights into SRAM."""
        compiler = MicrocodeCompiler(
            num_pes=len(self.memory),
            words_per_bank=min(bank.num_words for bank in self.memory),
            pipeline_overhead=self.pipeline_overhead,
        )
        program = compiler.compile(network, quantizer)
        quantized = quantizer.quantize_network(network)
        program.placement.store(self.memory, quantized)
        self.program = program
        self._stored_words = quantized
        return program

    def deploy_quantized(self, program: NpuProgram, quantized: QuantizedWeights) -> None:
        """Load an already-compiled program and quantized weights."""
        program.placement.store(self.memory, quantized)
        self.program = program
        self._stored_words = quantized

    def refresh_weights(self) -> None:
        """Rewrite the deployed weights into SRAM.

        Models the runtime controller restoring weight state (for instance
        after an aggressive voltage excursion disturbed cells that the
        deployed fault map did not account for).
        """
        if self.program is None or self._stored_words is None:
            raise RuntimeError("no model deployed")
        self.program.placement.store(self.memory, self._stored_words)

    # ---------------------------------------------------------- inference

    def run(
        self,
        inputs: np.ndarray,
        sram_voltage: float = 0.9,
        temperature: float = 25.0,
        collect_stats: bool = True,
    ) -> tuple[np.ndarray, InferenceStats]:
        """Run inference on a batch at the given SRAM operating point.

        Returns ``(outputs, stats)``.  The input batch is quantized to the
        data format at the NPU boundary (the paper's µC writes fixed-point
        inputs into memory-mapped buffers).
        """
        if self.program is None:
            raise RuntimeError("no model deployed; call deploy() first")
        activations = self.data_format.quantize(np.asarray(inputs, dtype=float))
        if activations.ndim == 1:
            activations = activations.reshape(1, -1)
        stats = InferenceStats(batch_size=activations.shape[0])

        for layer_program in self.program.layers:
            pre_activation, layer_stats = self.ring.compute_layer(
                activations,
                layer_program,
                self.program.placement,
                voltage=sram_voltage,
                temperature=temperature,
            )
            activations = self.afu.apply(layer_program.activation, pre_activation)
            activations = self.data_format.quantize(activations)
            if collect_stats:
                stats.layer_stats.append(layer_stats)
                stats.cycles += layer_stats.cycles
                stats.macs += layer_stats.macs
                stats.sram_reads += layer_stats.sram_reads

        return activations, stats

    def predict(
        self,
        inputs: np.ndarray,
        sram_voltage: float = 0.9,
        temperature: float = 25.0,
    ) -> np.ndarray:
        """Inference returning outputs only."""
        outputs, _ = self.run(
            inputs, sram_voltage=sram_voltage, temperature=temperature, collect_stats=False
        )
        return outputs

    def reference_forward(self, inputs: np.ndarray) -> np.ndarray:
        """Software evaluation of the deployed program from pristine words.

        Shares the arithmetic path of the hardware ring
        (:func:`~repro.accelerator.systolic.evaluate_layer_words`) but feeds
        it the stored quantized words directly instead of SRAM reads, so it
        is bit-identical to :meth:`run` under faultless SRAM — for *any*
        chip geometry, spilled placements included.  This is the oracle the
        geometry-invariance tests compare the hardware path against.
        """
        if self.program is None or self._stored_words is None:
            raise RuntimeError("no model deployed; call deploy() first")
        activations = self.data_format.quantize(np.asarray(inputs, dtype=float))
        if activations.ndim == 1:
            activations = activations.reshape(1, -1)
        for layer_program, weight_words, bias_words in zip(
            self.program.layers,
            self._stored_words.weight_words,
            self._stored_words.bias_words,
        ):
            word_matrix = np.zeros(
                (layer_program.out_features, layer_program.in_features + 1),
                dtype=np.uint64,
            )
            word_matrix[:, 0] = bias_words
            word_matrix[:, 1:] = weight_words.T
            pre_activation = evaluate_layer_words(
                activations, word_matrix, layer_program, self.data_format
            )
            activations = self.afu.apply(layer_program.activation, pre_activation)
            activations = self.data_format.quantize(activations)
        return activations
