"""Shared infrastructure for the experiment drivers.

Every driver in :mod:`repro.experiments` regenerates one table or figure of
the paper's evaluation.  They share a few needs: preparing a benchmark
(dataset, split, pre-trained float baseline), deploying models onto chip
instances, and rendering result tables as plain text that the benchmark
harness prints next to the paper's reported values.

Caching
-------
Preparing a benchmark trains a 40–60-epoch float baseline, and several
drivers would otherwise retrain identical baselines.  All heavyweight
artifacts are memoized through the content-addressed
:class:`~repro.experiments.cache.ArtifactCache` (see that module for the
on-disk layout): :func:`prepare_benchmark` caches the full prepared
benchmark, :func:`train_cached` caches plain :class:`~repro.nn.trainer.Trainer`
fits (Fig. 9b's topology sweep), and :func:`default_flow` wires the cache
into the MATIC flow so memory-adaptive fine-tuning — the dominant cost of the
voltage sweeps — trains each (initial weights, mask set, hyper-parameters)
combination exactly once across the whole suite.

Execution
---------
Grid-shaped drivers expand their operating points with
:func:`~repro.experiments.engine.expand_grid` and execute them through a
:class:`~repro.experiments.engine.SweepRunner` (pluggable serial /
process-pool / thread-pool backends; see the engine module docstring for the
worker model).  Drivers accept a ``runner`` argument so callers can share
one pool — and one shard configuration — across experiments.

Command line
------------
Every driver module is runnable (``python -m repro.experiments.<driver>``)
and shares one execution vocabulary, wired through
:func:`experiment_parser` / :func:`run_experiment_cli`:

* ``--workers N`` / ``--backend {serial,process,thread,queue,broker}`` pick
  the execution backend (defaults honour ``$REPRO_SWEEP_WORKERS`` /
  ``$REPRO_SWEEP_BACKEND``); ``--broker host:port`` attaches the broker
  backend to an externally-served task broker;
* ``--shard I/N`` runs one deterministic slice of the grid and merges the
  full table through the artifact cache once every shard has published;
* ``--stream`` prints each grid point as it completes (the engine's
  ``as_completed`` channel) instead of only the final table;
* ``--retries/--task-timeout/--backoff`` configure the failure policy
  (retries work on every backend; timeouts need a backend that can preempt
  a task — queue and process; see ``docs/robustness.md``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace
from importlib import import_module
from importlib.machinery import ModuleSpec
from typing import Any, Callable, Iterable

import numpy as np

from ..accelerator.soc import Snnac, SnnacConfig
from ..datasets.registry import BenchmarkSpec, get_benchmark
from ..matic.flow import MaticFlow, TrainingConfig
from ..nn.data import Dataset
from ..nn.network import Network
from ..nn.trainer import Trainer, TrainingHistory
from ..sram.variation import VariationScenario
from .cache import ArtifactCache, cache_digest, default_cache
from .engine import BACKEND_NAMES, ShardIncompleteError, ShardSpec, SweepRunner, SweepTask

__all__ = [
    "PreparedBenchmark",
    "prepare_benchmark",
    "train_cached",
    "default_flow",
    "make_chip",
    "format_table",
    "ExperimentResult",
    "dataset_key",
    "experiment_parser",
    "runner_from_args",
    "run_experiment_cli",
]


@dataclass
class PreparedBenchmark:
    """A benchmark with its data split and trained float baseline."""

    spec: BenchmarkSpec
    train: Dataset
    test: Dataset
    baseline: Network
    baseline_error: float

    @property
    def name(self) -> str:
        return self.spec.name


#: Per-benchmark baseline training settings (tuned once; see DESIGN.md).
#: Weight decay keeps the trained weight range tight so the fixed-point
#: format (and therefore the worst-case impact of a stuck bit) stays small.
_BASELINE_TRAINING = {
    "mnist": {"learning_rate": 0.2, "epochs": 60, "weight_decay": 2.0e-4},
    "facedet": {"learning_rate": 0.2, "epochs": 40, "weight_decay": 2.0e-4},
    "inversek2j": {"learning_rate": 0.3, "epochs": 60, "weight_decay": 1.0e-4},
    "bscholes": {"learning_rate": 0.3, "epochs": 60, "weight_decay": 1.0e-4},
}

#: Default baseline settings for procedural ``synth/`` workloads: fewer
#: epochs than the paper benchmarks (the synthetic tasks converge quickly,
#: and deep/wide specs make each epoch much more expensive).
_SYNTH_TRAINING = {"learning_rate": 0.2, "epochs": 30, "weight_decay": 1.0e-4}


def dataset_key(dataset: Dataset) -> dict:
    """Content key of a dataset (used to address trained-weight artifacts)."""
    return {
        "inputs": dataset.inputs,
        "targets": dataset.targets,
        "labels": dataset.labels if dataset.labels is not None else "none",
    }


def prepare_benchmark(
    name: str,
    num_samples: int | None = None,
    seed: int = 1,
    epochs: int | None = None,
    cache: ArtifactCache | None = None,
) -> PreparedBenchmark:
    """Generate data, split it, and train the float baseline for a benchmark.

    The result is memoized in the artifact cache under
    ``(benchmark, seed, num_samples, epochs, training settings)`` so each
    baseline is trained exactly once across the whole suite — including
    across processes and sessions.
    """
    cache = cache if cache is not None else default_cache()
    spec = get_benchmark(name)
    fallback = (
        _SYNTH_TRAINING
        if spec.name.startswith("synth/")
        else {"learning_rate": 0.2, "epochs": 50, "weight_decay": 2.0e-4}
    )
    settings = dict(_BASELINE_TRAINING.get(name, fallback))
    if epochs is not None:
        settings["epochs"] = epochs
    key = {
        "benchmark": str(name).lower(),
        # the full spec parameterization, so procedural workloads (whose
        # name alone does not pin the generator arguments or topology)
        # memoize content-addressed exactly like the paper benchmarks
        "spec": spec.spec_key(),
        "num_samples": num_samples if num_samples is not None else "default",
        "seed": int(seed),
        "settings": settings,
    }

    def build() -> PreparedBenchmark:
        dataset = spec.generate(num_samples=num_samples, seed=seed)
        train, test = spec.split(dataset, seed=seed + 1)
        baseline = spec.build_network(seed=seed + 2)
        trainer = Trainer(
            baseline,
            optimizer="momentum",
            learning_rate=settings["learning_rate"],
            epochs=settings["epochs"],
            weight_decay=settings.get("weight_decay", 0.0),
            batch_size=16,
            seed=seed + 3,
        )
        trainer.fit(train)
        error = spec.error(baseline.predict(test.inputs), test)
        return PreparedBenchmark(
            spec=spec, train=train, test=test, baseline=baseline, baseline_error=error
        )

    return cache.get_or_create("prepared-benchmark", key, build)


def train_cached(
    network: Network,
    train: Dataset,
    *,
    optimizer: str = "momentum",
    learning_rate: float = 0.2,
    epochs: int = 50,
    batch_size: int = 16,
    seed: int | None = 0,
    weight_decay: float = 0.0,
    lr_decay: float = 1.0,
    patience: int | None = None,
    cache: ArtifactCache | None = None,
) -> TrainingHistory | None:
    """Fit ``network`` in place, memoizing the trained weights.

    The cache key hashes the initial weights, the dataset, and every
    hyper-parameter, so a hit is guaranteed to reproduce the fit bit-exactly.
    Returns the training history, or ``None`` on a cache hit (the history is
    not part of the cached artifact).
    """
    cache = cache if cache is not None else default_cache()
    key = {
        "initial": network.get_weights(),
        # identically initialized networks can differ only in structure:
        # the objective and activations must keep artifacts apart
        "network": {
            "widths": tuple(network.widths),
            "activations": tuple(layer.activation.name for layer in network.layers),
            "loss": network.loss.name,
        },
        "dataset": dataset_key(train),
        "optimizer": optimizer,
        "learning_rate": float(learning_rate),
        "epochs": int(epochs),
        "batch_size": int(batch_size),
        "seed": seed if seed is not None else "none",
        "weight_decay": float(weight_decay),
        "lr_decay": float(lr_decay),
        "patience": patience if patience is not None else "none",
    }
    cached = cache.get("trained-weights", key)
    if cached is not None:
        network.set_weights(cached)
        return None
    history = Trainer(
        network,
        optimizer=optimizer,
        learning_rate=learning_rate,
        epochs=epochs,
        batch_size=batch_size,
        seed=seed,
        weight_decay=weight_decay,
        lr_decay=lr_decay,
        patience=patience,
    ).fit(train)
    cache.put("trained-weights", key, network.get_weights())
    return history


def default_flow(
    epochs: int = 60, seed: int = 0, cache: ArtifactCache | None = None
) -> MaticFlow:
    """The MATIC flow configuration used by the evaluation drivers.

    The artifact cache is attached as the flow's training cache, so
    memory-adaptive fine-tuning is memoized on (initial weights, injection
    masks, dataset, hyper-parameters).
    """
    return MaticFlow(
        word_bits=16,
        frac_bits=None,
        training=TrainingConfig(
            epochs=epochs, learning_rate=0.15, lr_decay=0.95, batch_size=32, seed=seed
        ),
        training_cache=cache if cache is not None else default_cache(),
    )


def make_chip(
    seed: int = 11,
    words_per_bank: int = 512,
    num_pes: int = 8,
    config: SnnacConfig | None = None,
    scenario: VariationScenario | None = None,
) -> Snnac:
    """A fresh SNNAC chip instance (its own sampled SRAM variation).

    ``config`` overrides the individual geometry arguments entirely (the
    seed is still applied on top so sweep workers can derive per-task chips
    from one shared configuration).  ``scenario`` threads a
    :class:`~repro.sram.variation.VariationScenario` (correlated sampling,
    process corner) into the instance.
    """
    if config is not None:
        config = replace(config, seed=seed)
    else:
        config = SnnacConfig(seed=seed, words_per_bank=words_per_bank, num_pes=num_pes)
    return Snnac(config, scenario=scenario)


def format_table(
    headers: list[str],
    rows: list[list[str]],
    title: str = "",
) -> str:
    """Render a simple fixed-width text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("all rows must have the same number of columns as headers")
    widths = [
        max(len(str(headers[col])), *(len(str(row[col])) for row in rows)) if rows else len(str(headers[col]))
        for col in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def partition_quarantined(values: Iterable[Any]) -> tuple[list[Any], list[Any]]:
    """Split merged sweep results into (clean, quarantined) lists.

    Merged sweeps may contain :class:`~repro.experiments.engine.QuarantinedTask`
    sentinels in place of results — the queue backend emits them once a
    task's retry budget is spent, and sharded merges recall them from the
    poison store.  Every driver's assembly path runs its ``runner.map``
    output through this helper so a poisoned task degrades to a marked
    ``QUARANTINED`` table row instead of an ``AttributeError`` mid-render.
    """
    clean: list[Any] = []
    quarantined: list[Any] = []
    for value in values:
        if getattr(value, "is_quarantined", False):
            quarantined.append(value)
        else:
            clean.append(value)
    return clean, quarantined


def quarantine_notes(quarantined: Iterable[Any]) -> list[str]:
    """The ``describe()`` strings an :class:`ExperimentResult` renders."""
    return [sentinel.describe() for sentinel in quarantined]


@dataclass
class ExperimentResult:
    """Generic container returned by experiment drivers.

    ``rows`` holds the regenerated table/series; ``paper_reference`` holds
    the corresponding numbers reported in the paper (when the paper states
    them), so the benchmark output can show both side by side.
    ``quarantined`` carries the ``describe()`` strings of any
    :class:`~repro.experiments.engine.QuarantinedTask` sentinels the driver
    received in place of results; each renders as a marked ``QUARANTINED``
    row plus a summary count, and makes the CLI exit nonzero.
    """

    experiment: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    paper_reference: dict[str, float | str] = field(default_factory=dict)
    notes: str = ""
    quarantined: list[str] = field(default_factory=list)

    def to_text(self) -> str:
        rows = list(self.rows)
        for description in self.quarantined:
            marker = ["QUARANTINED", description]
            marker += ["-"] * (len(self.headers) - len(marker))
            rows.append(marker[: len(self.headers)])
        text = format_table(self.headers, rows, title=self.experiment)
        if self.quarantined:
            count = len(self.quarantined)
            text += (
                f"\n\nWARNING: {count} task(s) quarantined — the rows marked "
                "QUARANTINED were not computed. Re-run with a higher --retries "
                "budget (or inspect the errors above) to fill them in."
            )
        if self.paper_reference:
            reference_lines = [
                f"  {key}: {value}" for key, value in self.paper_reference.items()
            ]
            text += "\n\npaper reference:\n" + "\n".join(reference_lines)
        if self.notes:
            text += f"\n\n{self.notes}"
        return text

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


# ----------------------------------------------------------------- CLI layer


#: argparse destinations that select *how* a sweep executes rather than what
#: it computes.  They are excluded from the shard-store namespace so any mix
#: of shards, backends, worker counts, and failure policies over one
#: configuration merges (a retried result is still the same result).
_EXECUTION_ARGS = frozenset(
    {
        "workers",
        "backend",
        "shard",
        "stream",
        "cache_dir",
        "retries",
        "task_timeout",
        "backoff",
        "broker",
    }
)


def experiment_parser(prog: str, description: str) -> argparse.ArgumentParser:
    """An argument parser pre-loaded with the shared sweep-execution flags.

    Drivers add their own grid arguments on top; every experiment CLI
    therefore accepts the same ``--workers/--backend/--shard/--stream``
    vocabulary.
    """
    parser = argparse.ArgumentParser(prog=prog, description=description)
    group = parser.add_argument_group("sweep execution")
    group.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes/threads (default: $REPRO_SWEEP_WORKERS or CPU count)",
    )
    group.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="execution backend (default: $REPRO_SWEEP_BACKEND or 'process')",
    )
    group.add_argument(
        "--shard",
        type=ShardSpec.parse,
        default=None,
        metavar="I/N",
        help="run slice I of N of the grid and merge results through the "
        "artifact cache (e.g. --shard 0/2 on one host, --shard 1/2 on another)",
    )
    group.add_argument(
        "--stream",
        action="store_true",
        help="print each grid point as it completes (incremental rendering)",
    )
    group.add_argument(
        "--broker",
        default=None,
        metavar="HOST:PORT",
        help="attach sweep execution to a live task broker (implies "
        "--backend broker; start one with "
        "`python -m repro.experiments.broker serve`)",
    )
    group.add_argument(
        "--cache-dir",
        default=None,
        help="artifact cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-matic)",
    )
    group.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="failed-task retry budget: attempt each task at most N+1 times. "
        "honored on every backend (queue requeues with backoff and "
        "quarantines once spent; serial/process/thread retry in-worker and "
        "re-raise). default: 0 (queue backend: 2)",
    )
    group.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task hang bound. queue backend: hard lease deadline after "
        "which the task is stolen and requeued; process backend: stall "
        "detection (no completion within the window fails the sweep). "
        "serial/thread backends cannot preempt a task and ignore it",
    )
    group.add_argument(
        "--backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help="base delay between retry attempts; doubles per attempt with "
        "deterministic per-task jitter (default: 0.5)",
    )
    return parser


def _stream_progress(task: SweepTask, result: Any, done: int, total: int) -> None:
    print(f"[{done}/{total}] {task.describe()}", flush=True)


def runner_from_args(
    args: argparse.Namespace, sweep: str
) -> tuple[SweepRunner, ArtifactCache]:
    """Build the (runner, cache) pair an experiment CLI hands to its driver.

    The shard-store label combines the sweep name with a digest of every
    non-execution argument, so shards only merge with runs of the *same*
    configuration — change a grid axis or a seed and the label changes with
    it, keeping stale slices out of the merge.
    """
    cache = (
        ArtifactCache(root=args.cache_dir)
        if getattr(args, "cache_dir", None)
        else default_cache()
    )
    config = {
        key: repr(value)
        for key, value in sorted(vars(args).items())
        if key not in _EXECUTION_ARGS
    }
    label = f"{sweep}:{cache_digest(config)[:16]}"
    backend: Any = args.backend
    broker_address = getattr(args, "broker", None)
    if broker_address:
        if backend not in (None, "broker"):
            raise ValueError(
                f"--broker attaches the broker backend; it cannot be combined "
                f"with --backend {backend}"
            )
        # attached mode: the broker at this address owns task coordination
        # (lazy import keeps the socket layer off non-broker CLI paths)
        from .broker import BrokerBackend, parse_address

        backend = BrokerBackend(address=parse_address(broker_address))
    runner = SweepRunner(
        workers=args.workers,
        backend=backend,
        shard=args.shard,
        shard_store=cache,
        sweep_label=label,
        progress=_stream_progress if args.stream else None,
        retries=getattr(args, "retries", None),
        task_timeout=getattr(args, "task_timeout", None),
        backoff=getattr(args, "backoff", None),
    )
    return runner, cache


def run_experiment_cli(
    args: argparse.Namespace,
    sweep: str,
    invoke: Callable[[SweepRunner, ArtifactCache], Any],
) -> int:
    """Shared experiment-CLI main body: build the runner, run, render, print.

    ``invoke(runner, cache)`` returns the driver's result object; rendering
    (``.to_experiment_result().to_text()``) happens here, once, so output
    policy changes land in every driver CLI simultaneously.  A
    :class:`~repro.experiments.engine.ShardIncompleteError` is an expected
    outcome for every shard but the last one to publish, so it reports
    progress and exits cleanly instead of failing.

    A merged result that carries quarantined tasks still prints the full
    table — every healthy row plus one marked ``QUARANTINED`` row per
    sentinel — but exits with status 1 so scripted callers notice the sweep
    was degraded.
    """
    runner, cache = runner_from_args(args, sweep)
    try:
        result = invoke(runner, cache)
    except ShardIncompleteError as error:
        print(error)
        print(
            "this shard's slice is published to the artifact cache; re-run any "
            "shard after the others finish to print the merged table"
        )
        return 0
    rendered = result.to_experiment_result()
    print(rendered.to_text())
    if rendered.quarantined:
        print(
            f"\n{len(rendered.quarantined)} quarantined task(s); exiting nonzero",
            flush=True,
        )
        return 1
    return 0


def dispatch_canonical_main(spec: ModuleSpec) -> int:
    """Entry shim for a driver's ``if __name__ == "__main__"`` block.

    ``runpy`` executes ``python -m repro.experiments.<driver>`` as a module
    named ``__main__``, so workers defined in that copy would carry
    ``__module__ == '__main__'`` and publish shard results under a namespace
    that can never merge with programmatic runs of the same sweep.
    Re-importing the canonical module (``__spec__.name`` survives runpy) and
    running *its* ``main()`` keeps every worker on the canonical import path.
    """
    return import_module(spec.name).main()


def fmt(value: float | None, digits: int = 3) -> str:
    """Format a float for table cells; ``None`` (missing datum) renders "-"."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def fmt_percent(value: float | None, digits: int = 1) -> str:
    """Format a fraction as a percentage string; ``None`` renders "-"."""
    if value is None:
        return "-"
    return f"{100.0 * value:.{digits}f}%"
