"""Shared infrastructure for the experiment drivers.

Every driver in :mod:`repro.experiments` regenerates one table or figure of
the paper's evaluation.  They share a few needs: preparing a benchmark
(dataset, split, pre-trained float baseline), deploying models onto chip
instances, and rendering result tables as plain text that the benchmark
harness prints next to the paper's reported values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..accelerator.soc import Snnac, SnnacConfig
from ..datasets.registry import BenchmarkSpec, get_benchmark
from ..matic.flow import MaticFlow, TrainingConfig
from ..nn.data import Dataset
from ..nn.network import Network
from ..nn.trainer import Trainer

__all__ = [
    "PreparedBenchmark",
    "prepare_benchmark",
    "default_flow",
    "make_chip",
    "format_table",
    "ExperimentResult",
]


@dataclass
class PreparedBenchmark:
    """A benchmark with its data split and trained float baseline."""

    spec: BenchmarkSpec
    train: Dataset
    test: Dataset
    baseline: Network
    baseline_error: float

    @property
    def name(self) -> str:
        return self.spec.name


#: Per-benchmark baseline training settings (tuned once; see DESIGN.md).
#: Weight decay keeps the trained weight range tight so the fixed-point
#: format (and therefore the worst-case impact of a stuck bit) stays small.
_BASELINE_TRAINING = {
    "mnist": {"learning_rate": 0.2, "epochs": 60, "weight_decay": 2.0e-4},
    "facedet": {"learning_rate": 0.2, "epochs": 40, "weight_decay": 2.0e-4},
    "inversek2j": {"learning_rate": 0.3, "epochs": 60, "weight_decay": 1.0e-4},
    "bscholes": {"learning_rate": 0.3, "epochs": 60, "weight_decay": 1.0e-4},
}


def prepare_benchmark(
    name: str,
    num_samples: int | None = None,
    seed: int = 1,
    epochs: int | None = None,
) -> PreparedBenchmark:
    """Generate data, split it, and train the float baseline for a benchmark."""
    spec = get_benchmark(name)
    dataset = spec.generate(num_samples=num_samples, seed=seed)
    train, test = spec.split(dataset, seed=seed + 1)
    baseline = spec.build_network(seed=seed + 2)
    settings = dict(
        _BASELINE_TRAINING.get(
            name, {"learning_rate": 0.2, "epochs": 50, "weight_decay": 2.0e-4}
        )
    )
    if epochs is not None:
        settings["epochs"] = epochs
    trainer = Trainer(
        baseline,
        optimizer="momentum",
        learning_rate=settings["learning_rate"],
        epochs=settings["epochs"],
        weight_decay=settings.get("weight_decay", 0.0),
        batch_size=16,
        seed=seed + 3,
    )
    trainer.fit(train)
    error = spec.error(baseline.predict(test.inputs), test)
    return PreparedBenchmark(
        spec=spec, train=train, test=test, baseline=baseline, baseline_error=error
    )


def default_flow(epochs: int = 60, seed: int = 0) -> MaticFlow:
    """The MATIC flow configuration used by the evaluation drivers."""
    return MaticFlow(
        word_bits=16,
        frac_bits=None,
        training=TrainingConfig(
            epochs=epochs, learning_rate=0.15, lr_decay=0.95, batch_size=32, seed=seed
        ),
    )


def make_chip(seed: int = 11, words_per_bank: int = 512) -> Snnac:
    """A fresh SNNAC chip instance (its own sampled SRAM variation)."""
    return Snnac(SnnacConfig(seed=seed, words_per_bank=words_per_bank))


def format_table(
    headers: list[str],
    rows: list[list[str]],
    title: str = "",
) -> str:
    """Render a simple fixed-width text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("all rows must have the same number of columns as headers")
    widths = [
        max(len(str(headers[col])), *(len(str(row[col])) for row in rows)) if rows else len(str(headers[col]))
        for col in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Generic container returned by experiment drivers.

    ``rows`` holds the regenerated table/series; ``paper_reference`` holds
    the corresponding numbers reported in the paper (when the paper states
    them), so the benchmark output can show both side by side.
    """

    experiment: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    paper_reference: dict[str, float | str] = field(default_factory=dict)
    notes: str = ""

    def to_text(self) -> str:
        text = format_table(self.headers, self.rows, title=self.experiment)
        if self.paper_reference:
            reference_lines = [
                f"  {key}: {value}" for key, value in self.paper_reference.items()
            ]
            text += "\n\npaper reference:\n" + "\n".join(reference_lines)
        if self.notes:
            text += f"\n\n{self.notes}"
        return text

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def fmt(value: float, digits: int = 3) -> str:
    """Format a float for table cells."""
    return f"{value:.{digits}f}"


def fmt_percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"
