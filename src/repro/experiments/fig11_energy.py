"""Fig. 11 — energy-per-cycle measurements (leakage / dynamic / total).

The figure decomposes the chip's per-cycle energy into logic and weight-SRAM
contributions, each split into leakage and dynamic components, at the nominal
operating point and at the MATIC-enabled energy-optimal point.  The headline
annotations are a 5.1× reduction in SRAM energy and a 2.4× reduction in logic
energy.  This driver recomputes the decomposition from the calibrated energy
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..accelerator.energy import (
    NOMINAL_OPERATING_POINT,
    EnergyBreakdown,
    OperatingPoint,
    SnnacEnergyModel,
)
from .common import (
    ExperimentResult,
    experiment_parser,
    fmt,
    partition_quarantined,
    quarantine_notes,
    run_experiment_cli,
)
from .engine import SweepRunner, SweepTask, expand_grid

__all__ = ["Fig11Result", "run_fig11", "main"]

#: MATIC-enabled energy-optimal operating point (EnOpt_split in Table II).
ENERGY_OPTIMAL_POINT = OperatingPoint(0.55, 0.50, 17.8e6, name="EnOpt_split")


@dataclass
class Fig11Result:
    """Energy decomposition at the two operating points.

    Either breakdown may be ``None`` when its task was quarantined in a
    merged sweep; the table then renders the surviving rows (reductions are
    undefined and omitted) plus the marked ``QUARANTINED`` rows.
    """

    nominal: EnergyBreakdown | None
    optimized: EnergyBreakdown | None
    nominal_point: OperatingPoint = NOMINAL_OPERATING_POINT
    optimized_point: OperatingPoint = ENERGY_OPTIMAL_POINT
    quarantined: list[str] = field(default_factory=list)

    @property
    def sram_reduction(self) -> float | None:
        if self.nominal is None or self.optimized is None:
            return None
        return self.nominal.sram_total / self.optimized.sram_total

    @property
    def logic_reduction(self) -> float | None:
        if self.nominal is None or self.optimized is None:
            return None
        return self.nominal.logic_total / self.optimized.logic_total

    @property
    def total_reduction(self) -> float | None:
        if self.nominal is None or self.optimized is None:
            return None
        return self.nominal.total / self.optimized.total

    def to_experiment_result(self) -> ExperimentResult:
        def row(label: str, breakdown: EnergyBreakdown) -> list[str]:
            return [
                label,
                fmt(breakdown.logic_dynamic, 2),
                fmt(breakdown.logic_leakage, 2),
                fmt(breakdown.logic_total, 2),
                fmt(breakdown.sram_dynamic, 2),
                fmt(breakdown.sram_leakage, 2),
                fmt(breakdown.sram_total, 2),
                fmt(breakdown.total, 2),
            ]

        rows = []
        if self.nominal is not None:
            rows.append(
                row(
                    f"nominal ({self.nominal_point.logic_voltage:.2f}/"
                    f"{self.nominal_point.sram_voltage:.2f} V)",
                    self.nominal,
                )
            )
        if self.optimized is not None:
            rows.append(
                row(
                    f"MATIC MEP ({self.optimized_point.logic_voltage:.2f}/"
                    f"{self.optimized_point.sram_voltage:.2f} V)",
                    self.optimized,
                )
            )
        if self.nominal is not None and self.optimized is not None:
            rows.append(
                [
                    "reduction",
                    "-",
                    "-",
                    f"{self.logic_reduction:.1f}x",
                    "-",
                    "-",
                    f"{self.sram_reduction:.1f}x",
                    f"{self.total_reduction:.1f}x",
                ]
            )
        return ExperimentResult(
            experiment="Fig. 11 — energy per cycle (pJ), leakage/dynamic breakdown",
            headers=[
                "operating point",
                "logic dyn",
                "logic leak",
                "logic total",
                "SRAM dyn",
                "SRAM leak",
                "SRAM total",
                "total",
            ],
            rows=rows,
            paper_reference={
                "SRAM energy reduction (paper)": "5.1x",
                "logic energy reduction (paper)": "2.4x",
                "nominal total (paper)": "67.08 pJ/cycle",
            },
            quarantined=list(self.quarantined),
        )


def _fig11_point_worker(shared: dict, task: SweepTask) -> EnergyBreakdown:
    """Decompose per-cycle energy at one operating point."""
    model: SnnacEnergyModel = shared["model"]
    return model.breakdown(shared["points"][task.param("point")])


def run_fig11(
    energy_model: SnnacEnergyModel | None = None,
    optimized_point: OperatingPoint = ENERGY_OPTIMAL_POINT,
    runner: SweepRunner | None = None,
) -> Fig11Result:
    """Recompute the Fig. 11 energy breakdown from the calibrated model.

    The two operating points run as engine tasks — trivially cheap here, so
    the default runner stays on the in-process path (a pool would cost far
    more than the two analytic evaluations).
    """
    model = energy_model or SnnacEnergyModel()
    runner = runner or SweepRunner(parallel=False)
    points = {"nominal": NOMINAL_OPERATING_POINT, "optimized": optimized_point}
    tasks = expand_grid(params=[{"point": name} for name in points])
    results = runner.map(
        _fig11_point_worker, tasks, shared={"model": model, "points": points}
    )
    # keyed (not positional) assembly: a quarantined sentinel in either slot
    # degrades to a None breakdown instead of mislabelling the other one
    _, quarantined = partition_quarantined(results)
    by_point = {
        task.param("point"): value
        for task, value in zip(tasks, results)
        if not getattr(value, "is_quarantined", False)
    }
    return Fig11Result(
        nominal=by_point.get("nominal"),
        optimized=by_point.get("optimized"),
        optimized_point=optimized_point,
        quarantined=quarantine_notes(quarantined),
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.fig11_energy`` — Fig. 11 energy breakdown."""
    parser = experiment_parser(
        "python -m repro.experiments.fig11_energy",
        "Fig. 11 — per-cycle energy breakdown (nominal vs MATIC-optimal point).",
    )
    parser.add_argument("--logic-voltage", type=float, default=ENERGY_OPTIMAL_POINT.logic_voltage)
    parser.add_argument("--sram-voltage", type=float, default=ENERGY_OPTIMAL_POINT.sram_voltage)
    parser.add_argument("--frequency", type=float, default=ENERGY_OPTIMAL_POINT.frequency)
    args = parser.parse_args(argv)
    # only the paper's point may carry the paper's label: an overridden
    # voltage/frequency is some other operating point and must say so
    overridden = (
        args.logic_voltage,
        args.sram_voltage,
        args.frequency,
    ) != (
        ENERGY_OPTIMAL_POINT.logic_voltage,
        ENERGY_OPTIMAL_POINT.sram_voltage,
        ENERGY_OPTIMAL_POINT.frequency,
    )
    point = OperatingPoint(
        args.logic_voltage,
        args.sram_voltage,
        args.frequency,
        name="custom" if overridden else "EnOpt_split",
    )
    return run_experiment_cli(
        args,
        "fig11",
        lambda runner, cache: run_fig11(optimized_point=point, runner=runner),
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    from repro.experiments.common import dispatch_canonical_main

    raise SystemExit(dispatch_canonical_main(__spec__))
