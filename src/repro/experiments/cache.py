"""Content-addressed artifact cache for the experiment suite.

The nine experiment drivers repeat a lot of identical heavyweight work:
training the float baseline of a benchmark, fine-tuning a model around a
profiled fault mask, quantizing a trained model to an SRAM word image.  All
of those computations are deterministic functions of their inputs, so the
suite memoizes them on disk.

Cache layout
------------
Artifacts live under a root directory (``$REPRO_CACHE_DIR``, default
``~/.cache/repro-matic``), one subdirectory per artifact *kind*::

    <root>/
        prepared-benchmark/<digest>.pkl   pickled PreparedBenchmark
        trained-weights/<digest>.pkl      list[(weights, bias)] per layer
        quantized-image/<digest>.pkl      QuantizedWeights
        sweep-result/<digest>.pkl         arbitrary driver artifacts
        sweep-shard/<digest>.pkl          per-task results of sharded sweeps

``<digest>`` is a SHA-256 over a canonical encoding of the key: a flat
mapping of strings to scalars, strings, tuples, nested mappings, or numpy
arrays (arrays are hashed by dtype, shape, and raw bytes).  Keys therefore
address *content* — e.g. the trained-weights key hashes the initial weights,
the injection masks, the dataset, and every training hyper-parameter — so a
change to any input produces a different digest and a cache miss, never a
stale hit.  ``SCHEMA_VERSION`` is mixed into every digest and must be bumped
whenever the *algorithms* behind an artifact change semantically.

Writes are atomic (temp file + ``os.replace``) so a cache shared by the
parallel sweep workers of :mod:`repro.experiments.engine` never exposes a
partially written artifact; concurrent writers of the same digest are
idempotent.  A small in-process memory layer fronts the disk so repeated
hits inside one session skip the unpickling.

Maintenance
-----------
:meth:`ArtifactCache.disk_stats` reports per-kind entry counts and byte
sizes, :meth:`ArtifactCache.clear` empties the store,
:meth:`ArtifactCache.prune` evicts artifacts by age, and
:meth:`ArtifactCache.verify` scans for corrupt (truncated/unreadable)
entries — reads already degrade those to a miss, ``verify`` makes the
damage visible and optionally reclaims it.  With a byte budget
configured (the ``size_budget_bytes`` field or ``$REPRO_CACHE_BUDGET``,
e.g. ``512M``), :meth:`ArtifactCache.put` opportunistically runs an LRU
eviction sweep (:meth:`ArtifactCache.evict_to_budget`) every
``eviction_check_interval`` stores, deleting least-recently-used artifacts
(mtime order — refreshed on every store and disk hit) until the store fits
the budget again.  The same operations are exposed on the command line::

    python -m repro.experiments.cache stats
    python -m repro.experiments.cache clear
    python -m repro.experiments.cache prune --older-than 7d [--corrupt]
    python -m repro.experiments.cache evict --budget 512M
    python -m repro.experiments.cache verify [--remove]

Coordination primitives
-----------------------
The fault-tolerant queue backend (:mod:`repro.experiments.queue`) builds
its worker-coordination protocol on the same filesystem guarantees this
module already relies on: :func:`acquire_lease` claims a task atomically
(``O_CREAT | O_EXCL`` via a hard link of a fully written temp file, so a
lease is never observable half-written), :func:`renew_lease` refreshes the
heartbeat deadline with the same atomic-replace idiom as :meth:`put`, and
:func:`steal_lease` takes an expired lease with ``os.replace`` so exactly
one of N concurrent stealers wins.  Quarantined (poison) tasks are ordinary
content-addressed artifacts under the ``sweep-poison`` kind
(:data:`POISON_KIND`/:func:`poison_key`), so resume, dedup, ``stats``, and
``prune`` all treat them like any other artifact.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pickle
import threading
import tempfile
import time
import warnings
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "POISON_KIND",
    "SHARD_RESULT_KIND",
    "acquire_lease",
    "cache_digest",
    "collect_shard_results",
    "default_cache",
    "lease_expired",
    "new_lease",
    "poison_key",
    "read_lease",
    "release_lease",
    "renew_lease",
    "set_default_cache",
    "shard_result_key",
    "steal_lease",
    "parse_age",
    "parse_size",
    "main",
]

#: Bump when a cached computation changes semantically (training update rule,
#: quantization rounding, dataset generators, ...) so old artifacts miss.
SCHEMA_VERSION = 1

#: Sentinel distinguishing "not in the memory layer" from a cached None.
_MISS = object()

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_CACHE_DISABLE"
_ENV_BUDGET = "REPRO_CACHE_BUDGET"


def _hash_bytes(hasher: "hashlib._Hash", tag: bytes, payload: bytes) -> None:
    """Feed one length-delimited, type-tagged component into the hash.

    Length prefixes make the encoding injective: without them adjacent
    variable-length components could be re-split into a colliding key
    (e.g. ``["xstr:y"]`` versus ``["x", "y"]``).
    """
    hasher.update(tag)
    hasher.update(str(len(payload)).encode() + b":")
    hasher.update(payload)


def _hash_update(hasher: "hashlib._Hash", value: Any) -> None:
    """Feed one key component into the hash, canonically and type-tagged."""
    if isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        _hash_bytes(hasher, b"dtype:", str(array.dtype).encode())
        _hash_bytes(hasher, b"shape:", str(array.shape).encode())
        _hash_bytes(hasher, b"ndarray:", array.tobytes())
    elif isinstance(value, (bool, np.bool_)):
        _hash_bytes(hasher, b"bool:", str(bool(value)).encode())
    elif isinstance(value, (int, np.integer)):
        _hash_bytes(hasher, b"int:", str(int(value)).encode())
    elif isinstance(value, (float, np.floating)):
        _hash_bytes(hasher, b"float:", np.float64(value).tobytes())
    elif isinstance(value, str):
        _hash_bytes(hasher, b"str:", value.encode())
    elif value is None:
        hasher.update(b"none;")
    elif isinstance(value, Mapping):
        hasher.update(b"map{")
        for key in sorted(value):
            _hash_bytes(hasher, b"key:", str(key).encode())
            _hash_update(hasher, value[key])
        hasher.update(b"}")
    elif isinstance(value, (list, tuple)):
        hasher.update(b"seq[" + str(len(value)).encode() + b":")
        for item in value:
            _hash_update(hasher, item)
        hasher.update(b"]")
    else:
        raise TypeError(f"unhashable cache-key component of type {type(value)!r}")


def cache_digest(key: Mapping[str, Any]) -> str:
    """SHA-256 digest of a canonicalized key mapping."""
    hasher = hashlib.sha256()
    hasher.update(f"schema:{SCHEMA_VERSION};".encode())
    _hash_update(hasher, key)
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters (per-process; parallel workers count separately)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


@dataclass
class ArtifactCache:
    """Disk-backed, content-addressed artifact store with a memory front.

    Parameters
    ----------
    root:
        Cache directory.  ``None`` resolves ``$REPRO_CACHE_DIR`` and falls
        back to ``~/.cache/repro-matic``.
    enabled:
        When False (or when ``$REPRO_CACHE_DISABLE`` is set for the default
        cache) every lookup misses and nothing is stored — the factory always
        runs, which is the reference behaviour for equivalence tests.
    memory_items:
        Maximum number of artifacts kept in the in-process layer.
    size_budget_bytes:
        Optional on-disk byte budget.  ``None`` resolves
        ``$REPRO_CACHE_BUDGET`` (a size like ``512M``; unset means no
        budget).  With a budget, :meth:`put` opportunistically runs an LRU
        eviction sweep every :attr:`eviction_check_interval` stores.
    eviction_check_interval:
        Stores between opportunistic eviction sweeps (each sweep walks the
        store's directory tree, so sweeping on every put would make bulk
        stores quadratic in the entry count).
    """

    root: Path | str | None = None
    enabled: bool = True
    memory_items: int = 64
    size_budget_bytes: int | None = None
    eviction_check_interval: int = 16
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.root is None:
            env = os.environ.get(_ENV_DIR, "").strip()
            self.root = Path(env) if env else Path.home() / ".cache" / "repro-matic"
        self.root = Path(self.root)
        self._stores_since_sweep = 0
        self._memory: dict[str, Any] = {}
        # the in-process layer is shared across ThreadBackend workers (the
        # cache rides inside their shared payload), so its check-then-evict
        # bookkeeping needs a lock; disk I/O stays lock-free (atomic replace)
        self._memory_lock = threading.Lock()

    # ----------------------------------------------------------- plumbing

    def _path(self, kind: str, digest: str) -> Path:
        return self.root / kind / f"{digest}.pkl"

    def get(self, kind: str, key: Mapping[str, Any]) -> Any | None:
        """Return the cached artifact or None (counts a hit/miss)."""
        if not self.enabled:
            self.stats.misses += 1
            return None
        digest = cache_digest(key)
        memory_key = f"{kind}/{digest}"
        path = self._path(kind, digest)
        with self._memory_lock:
            memory_value = self._memory.get(memory_key, _MISS)
        if memory_value is not _MISS:
            # refresh the disk mtime on memory hits too: mtime is the LRU
            # signal for prune/evict_to_budget, and an artifact served from
            # the memory layer is every bit as hot as one read from disk
            try:
                os.utime(path)
            except OSError:
                pass
            self.stats.hits += 1
            return memory_value
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except Exception:
            # a stale or corrupt artifact (including pickles referencing
            # classes that later moved/renamed) must degrade to a miss, not
            # crash every caller until the cache dir is deleted by hand
            self.stats.misses += 1
            return None
        try:
            os.utime(path)  # refresh mtime so age-based prune spares hot artifacts
        except OSError:
            pass
        self._remember(memory_key, value)
        self.stats.hits += 1
        return value

    def put(self, kind: str, key: Mapping[str, Any], value: Any) -> bool:
        """Store an artifact atomically (concurrent writers are idempotent).

        Returns ``True`` once the artifact is durably on disk.  Failures
        degrade silently to ``False`` — for memoization that is the right
        policy (an unpicklable artifact or a full disk must not crash the
        driver after the computation already succeeded), but callers for
        whom storage is correctness-critical (the sharded-sweep publish
        channel) must check the return value and escalate themselves.
        """
        if not self.enabled:
            return False
        digest = cache_digest(key)
        path = self._path(kind, digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError:
            return False
        try:
            with os.fdopen(handle, "wb") as temp_file:
                pickle.dump(value, temp_file, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except Exception:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            return False
        self._remember(f"{kind}/{digest}", value)
        self.stats.stores += 1
        self._maybe_evict(just_written=path)
        return True

    def get_or_create(self, kind: str, key: Mapping[str, Any], factory: Callable[[], Any]) -> Any:
        """Memoize ``factory()`` under ``(kind, key)``."""
        value = self.get(kind, key)
        if value is None:
            value = factory()
            self.put(kind, key, value)
        return value

    def _remember(self, memory_key: str, value: Any) -> None:
        with self._memory_lock:
            while len(self._memory) >= self.memory_items:
                self._memory.pop(next(iter(self._memory)))
            self._memory[memory_key] = value

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk artifacts stay)."""
        with self._memory_lock:
            self._memory.clear()

    # -------------------------------------------------------- maintenance

    def _artifact_files(self, kind: str | None = None, pattern: str = "*.pkl"):
        """Yield ``(kind, Path)`` for every stored artifact.

        ``pattern="*.tmp"`` instead selects orphaned temp files left behind by
        writers killed mid-:meth:`put`; maintenance must see those too or the
        space they hold could never be reclaimed.

        ``kind`` must be a bare directory name: anything containing a path
        separator (or ``..``) would escape the cache root and let maintenance
        delete files it does not own.
        """
        if kind is not None and (
            kind in ("", ".", "..") or "/" in kind or os.sep in kind or os.path.isabs(kind)
        ):
            raise ValueError(f"invalid artifact kind {kind!r}")
        root = Path(self.root)
        if not root.is_dir():
            return
        kinds = [kind] if kind is not None else sorted(
            entry.name for entry in root.iterdir() if entry.is_dir()
        )
        for kind_name in kinds:
            kind_dir = root / kind_name
            if not kind_dir.is_dir():
                continue
            for path in sorted(kind_dir.glob(pattern)):
                yield kind_name, path

    def disk_stats(self) -> dict[str, Any]:
        """Size accounting: per-kind and total entry counts and bytes.

        Orphaned ``.tmp`` files (writers killed mid-store) are reported under
        ``temp_files`` so the totals match what the directory really holds.
        """
        kinds: dict[str, dict[str, int]] = {}
        total_entries = 0
        total_bytes = 0
        for kind, path in self._artifact_files():
            try:
                size = path.stat().st_size
            except OSError:
                continue
            entry = kinds.setdefault(kind, {"entries": 0, "bytes": 0})
            entry["entries"] += 1
            entry["bytes"] += size
            total_entries += 1
            total_bytes += size
        temp_entries = 0
        temp_bytes = 0
        for _, path in self._artifact_files(pattern="*.tmp"):
            try:
                temp_bytes += path.stat().st_size
            except OSError:
                continue
            temp_entries += 1
        return {
            "root": str(self.root),
            "kinds": kinds,
            "temp_files": {"entries": temp_entries, "bytes": temp_bytes},
            "total_entries": total_entries + temp_entries,
            "total_bytes": total_bytes + temp_bytes,
        }

    def _remove_files(self, files, cutoff: float | None) -> tuple[int, int]:
        removed = 0
        freed = 0
        for kind, path in files:
            try:
                stat = path.stat()
                if cutoff is not None and stat.st_mtime >= cutoff:
                    continue
                path.unlink()
            except OSError:
                continue
            # evict exactly the deleted artifact from the in-process layer
            # (a no-op for .tmp files, whose names are not memory keys)
            with self._memory_lock:
                self._memory.pop(f"{kind}/{path.stem}", None)
            removed += 1
            freed += stat.st_size
        return removed, freed

    def clear(self, kind: str | None = None) -> tuple[int, int]:
        """Delete stored artifacts (all kinds, or one); returns (entries, bytes).

        Orphaned ``.tmp`` files are deleted too (a concurrent writer whose
        temp file is swept simply degrades to a skipped store).
        """
        removed, freed = self._remove_files(self._artifact_files(kind), cutoff=None)
        tmp_removed, tmp_freed = self._remove_files(
            self._artifact_files(kind, pattern="*.tmp"), cutoff=None
        )
        return removed + tmp_removed, freed + tmp_freed

    def _resolve_budget(self) -> int | None:
        """The effective byte budget: the field, else ``$REPRO_CACHE_BUDGET``.

        A malformed environment value warns (once per value) instead of
        silently disabling eviction — an operator who set a budget expects
        the store to stay bounded, not to fill the disk without a trace.
        """
        if self.size_budget_bytes is not None:
            return int(self.size_budget_bytes)
        env = os.environ.get(_ENV_BUDGET, "").strip()
        if not env:
            return None
        try:
            return parse_size(env)
        except ValueError:
            global _WARNED_BAD_BUDGET
            if _WARNED_BAD_BUDGET != env:
                _WARNED_BAD_BUDGET = env
                warnings.warn(
                    f"ignoring invalid ${_ENV_BUDGET}={env!r} (expected a size "
                    f"like 1048576, 512K, or 2G); cache eviction is disabled",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None

    def _maybe_evict(self, just_written: Path) -> None:
        """Opportunistic LRU sweep after a store (when a budget is set).

        Runs every :attr:`eviction_check_interval`-th store so bulk stores
        stay linear; the artifact just written is protected even if a slow
        filesystem gives it a stale mtime.
        """
        if self._resolve_budget() is None:
            return
        self._stores_since_sweep += 1
        if self._stores_since_sweep < max(1, int(self.eviction_check_interval)):
            return
        self._stores_since_sweep = 0
        try:
            self.evict_to_budget(protect=(just_written,))
        except (OSError, ValueError):  # pragma: no cover - defensive
            pass

    def evict_to_budget(
        self,
        budget_bytes: int | None = None,
        kind: str | None = None,
        protect: tuple[Path, ...] = (),
    ) -> tuple[int, int]:
        """LRU eviction: delete oldest artifacts until the store fits a budget.

        Recency is file mtime, which :meth:`put` sets and every hit —
        memory-layer hits included — refreshes, so artifacts that sweeps
        keep recalling survive and cold ones (including orphaned ``.tmp``
        files) go first.  Returns ``(entries_removed, bytes_freed)``; a
        store already within budget removes nothing.  ``kind`` restricts
        both the accounting and the eviction to one artifact kind.
        """
        budget = budget_bytes if budget_bytes is not None else self._resolve_budget()
        if budget is None:
            raise ValueError("no byte budget configured (size_budget_bytes "
                             f"or ${_ENV_BUDGET})")
        if budget < 0:
            raise ValueError("budget must be non-negative")
        entries: list[tuple[float, int, str, Path]] = []
        for pattern in ("*.pkl", "*.tmp"):
            for kind_name, path in self._artifact_files(kind, pattern=pattern):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, kind_name, path))
        total = sum(size for _, size, _, _ in entries)
        if total <= budget:
            return 0, 0
        protected = {Path(p) for p in protect}
        # oldest first; path as tie-break for deterministic eviction order
        entries.sort(key=lambda entry: (entry[0], str(entry[3])))
        removed = 0
        freed = 0
        for _, size, kind_name, path in entries:
            if total <= budget:
                break
            if path in protected:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            with self._memory_lock:
                self._memory.pop(f"{kind_name}/{path.stem}", None)
            total -= size
            removed += 1
            freed += size
        return removed, freed

    def prune(self, older_than_seconds: float, kind: str | None = None) -> tuple[int, int]:
        """Evict artifacts not modified within the window; returns (entries, bytes).

        Age is judged by file mtime, which is refreshed on every store and
        on every hit (memory-layer hits refresh it too, so a hot artifact's
        file always looks recent).  Orphaned ``.tmp`` files past the cutoff
        are swept as well (in-flight writers are protected by their recent
        mtime).
        """
        if not math.isfinite(older_than_seconds) or older_than_seconds < 0:
            raise ValueError("older_than_seconds must be a non-negative finite number")
        cutoff = time.time() - float(older_than_seconds)
        removed, freed = self._remove_files(self._artifact_files(kind), cutoff)
        tmp_removed, tmp_freed = self._remove_files(
            self._artifact_files(kind, pattern="*.tmp"), cutoff
        )
        return removed + tmp_removed, freed + tmp_freed

    def verify(
        self, kind: str | None = None, remove: bool = False
    ) -> list[dict[str, str]]:
        """Scan stored artifacts for corruption; optionally delete the damage.

        Reads already degrade a truncated or otherwise unreadable pickle to a
        cache miss, so corruption never crashes a driver — but it silently
        costs a recomputation every time the entry is touched, and the dead
        bytes count against the size budget forever.  ``verify`` loads every
        entry (of one ``kind``, or all) and reports the ones that fail as
        ``{"kind", "path", "error"}`` records; with ``remove=True`` they are
        unlinked (and dropped from the memory layer) so the next ``put``
        rewrites them cleanly.
        """
        corrupt: list[dict[str, str]] = []
        for kind_name, path in self._artifact_files(kind):
            try:
                with open(path, "rb") as handle:
                    pickle.load(handle)
            except Exception as error:
                corrupt.append(
                    {
                        "kind": kind_name,
                        "path": str(path),
                        "error": f"{type(error).__name__}: {error}",
                    }
                )
                if remove:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                    with self._memory_lock:
                        self._memory.pop(f"{kind_name}/{path.stem}", None)
        return corrupt

    def __getstate__(self) -> dict:
        # keep pickles small when a cache rides inside a worker payload: the
        # in-process layer is a per-process optimization, not shared state
        state = self.__dict__.copy()
        state["_memory"] = {}
        state["stats"] = CacheStats()
        del state["_memory_lock"]  # locks don't pickle; recreated on unpickle
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._memory_lock = threading.Lock()
        self._stores_since_sweep = 0


# ------------------------------------------------------------- shard merges

#: Artifact kind under which sharded sweeps publish per-task results.  Each
#: shard of a grid stores its slice here as tasks complete; any shard can
#: then merge the full grid back out (see ``SweepRunner._map_sharded``).
SHARD_RESULT_KIND = "sweep-shard"


def shard_result_key(sweep: str, worker: str, task_digest: str) -> dict[str, str]:
    """Store key of one task's published result within a sharded sweep.

    ``sweep`` namespaces independent sweep configurations (shards that should
    merge with each other must agree on it), ``worker`` is the worker
    function's qualified name (two sweeps over the same grid through
    different workers must not collide), and ``task_digest`` is the task's
    content hash (:func:`repro.experiments.engine.task_digest`).
    """
    return {"sweep": str(sweep), "worker": str(worker), "task": str(task_digest)}


#: Artifact kind for tasks the queue backend quarantined after exhausting
#: their retry budget.  A poison entry is the task's terminal state: resumes
#: and concurrent sweeps recall it instead of re-executing a task that is
#: known to fail, and the coordinator reports it in the merged result rather
#: than deadlocking the sweep waiting for a result that will never publish.
POISON_KIND = "sweep-poison"


def poison_key(sweep: str, worker: str, task_digest: str) -> dict[str, str]:
    """Store key of one quarantined task (same namespace axes as results).

    Mirrors :func:`shard_result_key` exactly — a task digest resolves to at
    most one of (published result, poison entry) per ``(sweep, worker)``.
    """
    return {"sweep": str(sweep), "worker": str(worker), "task": str(task_digest)}


def collect_shard_results(
    cache: ArtifactCache, sweep: str, worker: str, task_digests: list[str]
) -> tuple[dict[str, Any], list[str]]:
    """Shard-aware merge: gather published task results for a grid.

    Returns ``(found, missing)`` — ``found`` maps each task digest to the
    payload some shard published, ``missing`` lists digests no shard has
    published yet (their shards are still running, or have not run).
    """
    found: dict[str, Any] = {}
    missing: list[str] = []
    for digest in task_digests:
        if digest in found:
            continue
        payload = cache.get(SHARD_RESULT_KIND, shard_result_key(sweep, worker, digest))
        if payload is None:
            missing.append(digest)
        else:
            found[digest] = payload
    return found, missing


# ------------------------------------------------------------- lease files
#
# The queue backend's mutual-exclusion primitive.  A lease is a small JSON
# file next to the queued task; holding it means "this worker is executing
# the task".  The protocol needs exactly three filesystem guarantees, all of
# which the artifact store already depends on: atomic create-if-absent
# (claim), atomic replace (heartbeat renewal), and atomic rename (steal).
# Readers therefore always see a complete lease or none — never a torn one —
# and an unreadable lease can safely be treated as expired, because stealing
# it is itself atomic (exactly one stealer wins the rename).


def new_lease(
    owner: str,
    lease_seconds: float,
    hard_deadline: float | None = None,
    now: float | None = None,
) -> dict[str, Any]:
    """A fresh lease payload: the one lease shape every holder agrees on.

    ``heartbeat_deadline`` starts at now + ``lease_seconds`` and is pushed
    forward by renewals; ``hard_deadline`` (the ``--task-timeout`` bound) is
    absolute and never renewed.  Shared by the directory queue (which writes
    it to a lease file) and the socket broker (which keeps it in memory and
    journals it) so :func:`lease_expired` judges both identically.
    """
    now = time.time() if now is None else now
    return {
        "owner": str(owner),
        "acquired": now,
        "heartbeat_deadline": now + float(lease_seconds),
        "hard_deadline": float(hard_deadline) if hard_deadline is not None else None,
    }


def acquire_lease(
    path: Path | str,
    owner: str,
    lease_seconds: float,
    hard_deadline: float | None = None,
) -> bool:
    """Atomically claim a lease file; ``True`` iff this caller created it.

    The lease is written to a temp file first and linked into place with
    ``os.link`` (atomic create-if-absent *with* content, unlike a bare
    ``O_CREAT | O_EXCL`` open followed by a write, which would expose an
    empty lease between the two syscalls).  See :func:`new_lease` for the
    deadline semantics.
    """
    payload = json.dumps(new_lease(owner, lease_seconds, hard_deadline))
    path = Path(path)
    temp_name = None
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        with os.fdopen(handle, "w") as temp_file:
            temp_file.write(payload)
        os.link(temp_name, path)
    except FileExistsError:
        return False
    except OSError:
        return False
    finally:
        if temp_name is not None:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
    return True


def read_lease(path: Path | str) -> dict[str, Any] | None:
    """The lease's JSON payload, or None (absent, unreadable, or corrupt)."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def lease_expired(
    lease: Mapping[str, Any] | None, now: float | None = None
) -> bool:
    """Whether a lease may be stolen: past either deadline, or unreadable."""
    if lease is None:
        return True
    now = time.time() if now is None else now
    heartbeat = lease.get("heartbeat_deadline")
    hard = lease.get("hard_deadline")
    if isinstance(heartbeat, (int, float)) and now > heartbeat:
        return True
    if isinstance(hard, (int, float)) and now > hard:
        return True
    # a lease carrying neither deadline is malformed; holding it forever
    # would deadlock the queue, so it counts as expired too
    return not isinstance(heartbeat, (int, float)) and not isinstance(hard, (int, float))


def renew_lease(path: Path | str, owner: str, lease_seconds: float) -> bool:
    """Push the heartbeat deadline forward if ``owner`` still holds the lease.

    Returns ``False`` when the lease was stolen (or the rewrite failed) —
    the worker keeps executing regardless, because publishing the result is
    idempotent; the thief merely re-runs the task redundantly.
    """
    path = Path(path)
    lease = read_lease(path)
    if lease is None or lease.get("owner") != str(owner):
        return False
    lease["heartbeat_deadline"] = time.time() + float(lease_seconds)
    temp_name = None
    try:
        handle, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        with os.fdopen(handle, "w") as temp_file:
            temp_file.write(json.dumps(lease))
        os.replace(temp_name, path)
    except OSError:
        if temp_name is not None:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
        return False
    return True


def steal_lease(path: Path | str) -> dict[str, Any] | None:
    """Atomically take a lease off its task: exactly one concurrent caller wins.

    The winner receives the stolen lease's payload (``{}`` if unreadable) and
    owns the requeue decision; losers (and calls on an already-stolen lease)
    get ``None``.  Implemented as ``os.replace`` to a caller-unique name, so
    there is no read-check-unlink window for two stealers to race through.
    """
    path = Path(path)
    unique = f".steal-{os.getpid()}-{threading.get_ident()}-{time.monotonic_ns()}"
    target = path.with_name(path.name + unique)
    try:
        os.replace(path, target)
    except OSError:
        return None
    lease = read_lease(target) or {}
    try:
        os.unlink(target)
    except OSError:
        pass
    return lease


def release_lease(path: Path | str) -> None:
    """Drop a lease (idempotent; releasing a stolen/absent lease is a no-op)."""
    try:
        os.unlink(path)
    except OSError:
        pass


#: Last invalid $REPRO_CACHE_BUDGET value warned about (warn once per value).
_WARNED_BAD_BUDGET: str | None = None

_DEFAULT_CACHE: ArtifactCache | None = None


def default_cache() -> ArtifactCache:
    """The process-wide cache used when a driver is not handed one explicitly."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        disabled = os.environ.get(_ENV_DISABLE, "").strip() not in ("", "0", "false")
        _DEFAULT_CACHE = ArtifactCache(enabled=not disabled)
    return _DEFAULT_CACHE


def set_default_cache(cache: ArtifactCache | None) -> None:
    """Replace the process-wide default cache (None resets to lazy init)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = cache


# --------------------------------------------------------------------- CLI

_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def parse_age(text: str) -> float:
    """Parse an age like ``"3600"``, ``"45s"``, ``"12h"``, or ``"7d"`` to seconds."""
    text = str(text).strip().lower()
    if not text:
        raise ValueError("empty age")
    unit = 1.0
    if text[-1] in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1]]
        text = text[:-1]
    seconds = float(text) * unit
    if not math.isfinite(seconds) or seconds < 0:
        raise ValueError("age must be a non-negative finite number")
    return seconds


_SIZE_UNITS = {"k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}


def parse_size(text: str) -> int:
    """Parse a byte size like ``"1048576"``, ``"512K"``, ``"1.5g"``, or ``"2GB"``."""
    text = str(text).strip().lower()
    if text.endswith("b"):
        text = text[:-1]
    if not text:
        raise ValueError("empty size")
    unit = 1
    if text[-1] in _SIZE_UNITS:
        unit = _SIZE_UNITS[text[-1]]
        text = text[:-1]
    try:
        size = float(text) * unit
    except ValueError as error:
        raise ValueError(f"invalid size {text!r}") from error
    if not math.isfinite(size) or size < 0:
        raise ValueError("size must be a non-negative finite number")
    return int(size)


def _format_bytes(count: int) -> str:
    size = float(count)
    for suffix in ("B", "KiB", "MiB", "GiB"):
        if size < 1024.0 or suffix == "GiB":
            return f"{size:.1f} {suffix}" if suffix != "B" else f"{int(size)} B"
        size /= 1024.0
    return f"{int(count)} B"  # pragma: no cover - unreachable


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.cache`` — inspect and maintain the cache."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.cache",
        description="Inspect and maintain the content-addressed artifact cache.",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-matic)",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("stats", help="report per-kind entry counts and bytes")
    clear_parser = commands.add_parser("clear", help="delete stored artifacts")
    clear_parser.add_argument("--kind", default=None, help="only this artifact kind")
    prune_parser = commands.add_parser("prune", help="evict artifacts by age")
    prune_parser.add_argument(
        "--older-than",
        required=True,
        metavar="AGE",
        help="evict artifacts older than AGE (e.g. 3600, 45s, 12h, 7d)",
    )
    prune_parser.add_argument("--kind", default=None, help="only this artifact kind")
    prune_parser.add_argument(
        "--corrupt",
        action="store_true",
        help="also delete corrupt (truncated/unreadable) artifacts of any age",
    )
    verify_parser = commands.add_parser(
        "verify", help="scan stored artifacts for corrupt (unreadable) entries"
    )
    verify_parser.add_argument("--kind", default=None, help="only this artifact kind")
    verify_parser.add_argument(
        "--remove", action="store_true", help="delete the corrupt entries found"
    )
    verify_parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object instead of text "
        "({root, count, removed, corrupt: [{kind, path, error}]})",
    )
    evict_parser = commands.add_parser(
        "evict", help="LRU-evict oldest artifacts down to a byte budget"
    )
    evict_parser.add_argument(
        "--budget",
        default=None,
        metavar="SIZE",
        help="byte budget to evict down to (e.g. 1048576, 512K, 2G; "
        f"default: ${_ENV_BUDGET})",
    )
    evict_parser.add_argument("--kind", default=None, help="only this artifact kind")
    args = parser.parse_args(argv)

    cache = ArtifactCache(root=args.root)
    if args.command == "stats":
        stats = cache.disk_stats()
        print(f"cache root: {stats['root']}")
        for kind, entry in stats["kinds"].items():
            print(f"  {kind}: {entry['entries']} entries, {_format_bytes(entry['bytes'])}")
        temp = stats["temp_files"]
        if temp["entries"]:
            print(
                f"  (orphaned temp files: {temp['entries']} entries, "
                f"{_format_bytes(temp['bytes'])})"
            )
        print(
            f"total: {stats['total_entries']} entries, "
            f"{_format_bytes(stats['total_bytes'])}"
        )
    elif args.command == "clear":
        try:
            removed, freed = cache.clear(kind=args.kind)
        except ValueError as error:
            parser.error(str(error))
        print(f"removed {removed} entries, freed {_format_bytes(freed)}")
    elif args.command == "evict":
        budget = None
        if args.budget is not None:
            try:
                budget = parse_size(args.budget)
            except ValueError as error:
                parser.error(f"invalid --budget value: {error}")
        try:
            removed, freed = cache.evict_to_budget(budget, kind=args.kind)
        except ValueError as error:
            parser.error(str(error))
        print(f"evicted {removed} entries, freed {_format_bytes(freed)}")
    elif args.command == "verify":
        try:
            corrupt = cache.verify(kind=args.kind, remove=args.remove)
        except ValueError as error:
            parser.error(str(error))
        if args.json:
            # stable machine-readable shape for CI zero-corruption gates
            print(
                json.dumps(
                    {
                        "root": str(cache.root),
                        "count": len(corrupt),
                        "removed": bool(args.remove),
                        "corrupt": [
                            {
                                "kind": entry["kind"],
                                "path": str(entry["path"]),
                                "error": entry["error"],
                            }
                            for entry in corrupt
                        ],
                    }
                )
            )
        else:
            for entry in corrupt:
                print(f"corrupt [{entry['kind']}] {entry['path']}: {entry['error']}")
            verb = "removed" if args.remove else "found"
            print(f"{verb} {len(corrupt)} corrupt entries")
    else:
        try:
            age = parse_age(args.older_than)
        except ValueError as error:
            parser.error(f"invalid --older-than value: {error}")
        try:
            removed, freed = cache.prune(age, kind=args.kind)
        except ValueError as error:
            parser.error(str(error))
        print(f"pruned {removed} entries, freed {_format_bytes(freed)}")
        if args.corrupt:
            corrupt = cache.verify(kind=args.kind, remove=True)
            for entry in corrupt:
                print(f"corrupt [{entry['kind']}] {entry['path']}: {entry['error']}")
            print(f"removed {len(corrupt)} corrupt entries")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
