"""Unified sweep engine: grid expansion plus a deterministic worker pool.

Every experiment driver regenerates its table/figure by evaluating a grid of
operating points — benchmark × voltage × temperature × correction mode (or a
driver-specific axis such as fault rate or hidden width).  The engine gives
all nine drivers one execution model:

* :func:`expand_grid` turns axis values into an ordered list of
  :class:`SweepTask` records, each carrying a per-task seed derived from the
  root seed with :meth:`numpy.random.SeedSequence.spawn` — tasks are
  statistically independent and their seeds do not depend on how the grid is
  later scheduled;
* :class:`SweepRunner` executes a task list either serially or on a
  ``multiprocessing`` pool.  Results always come back in task order and are
  bit-identical between the serial and parallel paths because workers receive
  exactly (shared payload, task) and derive all randomness from the task
  seed.

Worker model
------------
``SweepRunner.map(fn, tasks, shared=...)`` pickles ``shared`` once per
worker process (pool initializer), then streams the small task records.
``fn`` must be a module-level callable of ``(shared, task)`` so it can be
pickled under any start method.  Drivers keep state-free workers; sweeps
whose points intentionally share mutable state (the Fig. 12 temperature
schedule walks one chip through a chamber) run through the same API with
``parallel=False``, which the engine honours by executing in-process.

The worker count defaults to ``$REPRO_SWEEP_WORKERS`` or the CPU count; a
single-CPU host therefore runs serially with zero pool overhead.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

__all__ = ["SweepTask", "SweepRunner", "expand_grid"]

_ENV_WORKERS = "REPRO_SWEEP_WORKERS"


@dataclass(frozen=True)
class SweepTask:
    """One grid point of a sweep.

    The generic axes cover the common experiment grids; driver-specific axes
    ride in ``params`` (a sorted tuple of key/value pairs so tasks stay
    hashable and picklable).  ``seed`` is the task's private seed, already
    derived from the sweep root; workers must draw every random decision from
    it (e.g. ``np.random.default_rng(task.seed)``).
    """

    index: int
    seed: int
    benchmark: str | None = None
    voltage: float | None = None
    temperature: float | None = None
    mode: str | None = None
    params: tuple[tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def with_params(self, **extra: Any) -> "SweepTask":
        merged = dict(self.params)
        merged.update(extra)
        return replace(self, params=tuple(sorted(merged.items())))


def expand_grid(
    benchmarks: Sequence[str | None] = (None,),
    voltages: Sequence[float | None] = (None,),
    temperatures: Sequence[float | None] = (None,),
    modes: Sequence[str | None] = (None,),
    seed: int | None = 0,
    params: Iterable[dict[str, Any]] | None = None,
) -> list[SweepTask]:
    """Expand axes into an ordered task list with independent per-task seeds.

    The cartesian product iterates benchmarks outermost and modes innermost
    (matching the serial loops the drivers used historically).  ``params``
    optionally replaces the generic axes entirely: each dict becomes one task
    (useful for driver-specific grids such as Fig. 5's fault rates).
    """
    combos: list[dict[str, Any]]
    if params is not None:
        combos = [dict(p) for p in params]
    else:
        combos = [
            {"benchmark": b, "voltage": v, "temperature": t, "mode": m}
            for b in benchmarks
            for v in voltages
            for t in temperatures
            for m in modes
        ]
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(combos)) if combos else []
    tasks = []
    for index, (combo, child) in enumerate(zip(combos, children)):
        fields = {"benchmark", "voltage", "temperature", "mode"}
        base = {k: combo.get(k) for k in fields}
        extra = tuple(sorted((k, v) for k, v in combo.items() if k not in fields))
        tasks.append(
            SweepTask(
                index=index,
                # full 128 bits of the spawned sequence's entropy: truncating
                # to one word would re-introduce birthday collisions between
                # large grids' task seeds
                seed=int.from_bytes(
                    child.generate_state(4, dtype=np.uint32).tobytes(), "little"
                ),
                params=extra,
                **base,
            )
        )
    return tasks


# Per-worker globals installed by the pool initializer: the shared payload is
# pickled once per worker instead of once per task.
_WORKER_FN: Callable[[Any, SweepTask], Any] | None = None
_WORKER_SHARED: Any = None


def _init_worker(fn: Callable[[Any, SweepTask], Any], shared: Any) -> None:
    global _WORKER_FN, _WORKER_SHARED
    _WORKER_FN = fn
    _WORKER_SHARED = shared


def _run_task(task: SweepTask) -> Any:
    assert _WORKER_FN is not None, "worker used before initialization"
    return _WORKER_FN(_WORKER_SHARED, task)


def _default_workers() -> int:
    env = os.environ.get(_ENV_WORKERS, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


@dataclass
class SweepRunner:
    """Execute sweep tasks serially or on a deterministic worker pool.

    Parameters
    ----------
    workers:
        Worker processes.  ``None`` → ``$REPRO_SWEEP_WORKERS`` or CPU count.
        1 (or a single-CPU host) always takes the in-process path.
    parallel:
        Master switch; ``False`` forces in-process execution regardless of
        ``workers`` (used by sweeps whose points share mutable state).
    mp_context:
        ``multiprocessing`` start method (``"fork"`` on Linux keeps worker
        start cheap; ``"spawn"`` works wherever fork is unavailable).
    chunksize:
        Tasks handed to a worker per dispatch.
    """

    workers: int | None = None
    parallel: bool = True
    mp_context: str | None = None
    chunksize: int = 1
    #: number of tasks executed through this runner (serial + parallel)
    tasks_run: int = field(default=0, init=False)

    def effective_workers(self, num_tasks: int) -> int:
        if not self.parallel or num_tasks <= 1:
            return 1
        workers = self.workers if self.workers is not None else _default_workers()
        return max(1, min(int(workers), num_tasks))

    def map(
        self,
        fn: Callable[[Any, SweepTask], Any],
        tasks: Sequence[SweepTask],
        shared: Any = None,
    ) -> list[Any]:
        """Run ``fn(shared, task)`` for every task; results in task order."""
        tasks = list(tasks)
        self.tasks_run += len(tasks)
        workers = self.effective_workers(len(tasks))
        if workers == 1:
            return [fn(shared, task) for task in tasks]
        # fork is only reliably safe on Linux: macOS lists it as available,
        # but forking after numpy/Accelerate initialization aborts or
        # deadlocks in the children (hence CPython's spawn default there)
        method = self.mp_context or ("fork" if sys.platform == "linux" else "spawn")
        context = multiprocessing.get_context(method)
        with context.Pool(
            processes=workers, initializer=_init_worker, initargs=(fn, shared)
        ) as pool:
            return pool.map(_run_task, tasks, chunksize=max(1, self.chunksize))
