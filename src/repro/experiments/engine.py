"""Unified sweep engine: grid expansion, pluggable backends, sharding.

Every experiment driver regenerates its table/figure by evaluating a grid of
operating points — benchmark × voltage × temperature × correction mode (or a
driver-specific axis such as fault rate or hidden width).  The engine gives
all nine drivers one execution model:

* :func:`expand_grid` turns axis values into an ordered list of
  :class:`SweepTask` records, each carrying a per-task seed derived from the
  root seed with :meth:`numpy.random.SeedSequence.spawn` — tasks are
  statistically independent and their seeds do not depend on how the grid is
  later scheduled;
* :class:`SweepRunner` executes a task list on a pluggable
  :class:`SweepBackend`.  Results are bit-identical across backends because
  workers receive exactly (shared payload, task) and derive all randomness
  from the task seed.

Backends
--------
Execution is delegated to a :class:`SweepBackend`:

* :class:`SerialBackend` — in-process, lazy: each task runs when its result
  is consumed, so streaming consumers drive the sweep one task at a time.
* :class:`ProcessBackend` — the ``multiprocessing`` pool.  The shared
  payload is pickled once per worker (pool initializer) and the small task
  records are streamed; ``fn`` must be a module-level callable of
  ``(shared, task)`` so it can be pickled under any start method.
* :class:`ThreadBackend` — a thread pool for inference-only tasks whose
  hot loops release the GIL inside NumPy (no pickling at all; the shared
  payload is handed to every thread by reference, so workers must treat it
  as read-only).
* ``QueueBackend`` (:mod:`repro.experiments.queue`) — the fault-tolerant
  elastic backend: a shared-directory task queue with lease-based claims,
  heartbeat renewal, work-stealing re-execution of dead workers' tasks, and
  poison quarantine.  See :doc:`docs/robustness`.
* ``BrokerBackend`` (:mod:`repro.experiments.broker`) — the queue's
  socket-distributed sibling for hosts that share no filesystem: the same
  lease/retry/quarantine semantics served by a TCP broker with an
  append-only journal, so a killed broker restarts with zero lost claims.

``SweepRunner(backend=...)`` accepts a backend name or instance; ``None``
falls back to ``$REPRO_SWEEP_BACKEND`` and finally to ``"process"``.  A
single worker (or ``parallel=False``, used by sweeps whose points
intentionally share mutable state — the Fig. 12 temperature schedule walks
one chip through a chamber) always takes the serial path, preserving
in-order, in-process execution — except on the queue backend, whose
publish/lease/resume semantics are the point even at one worker.  The
worker count defaults to ``$REPRO_SWEEP_WORKERS`` or the CPU count.

Robustness
----------
``SweepRunner(retries=..., task_timeout=..., backoff=...)`` configures the
failure policy.  Retries are honored on *every* backend: the queue backend
requeues failed tasks natively (with exponential backoff + deterministic
jitter, see :func:`retry_delay`, then quarantines them as
:class:`QuarantinedTask` once the budget is spent); the serial/process/
thread backends wrap the worker in :class:`RetryingWorker`, which retries
in place and re-raises once the budget is spent.  ``task_timeout`` needs a
backend that can preempt a task, so it is honored by the queue backend (as
the lease's hard deadline) and the process backend (as a stall detector
raising :class:`TaskTimeoutError`); serial/thread backends document-ignore
it.  A process-pool worker killed by signal (SIGKILL, OOM) surfaces as
:class:`WorkerCrashedError` naming the in-flight tasks instead of an opaque
``BrokenProcessPool``.

Streaming
---------
:meth:`SweepRunner.submit` returns a :class:`SweepExecution` handle whose
:meth:`~SweepExecution.as_completed` yields ``(task, result)`` pairs as they
land, so long sweeps stream partial results and drivers can render tables
incrementally.  :meth:`SweepRunner.map` is the ordered convenience built on
top of it (collect everything, return in task order).

Sharding
--------
A :class:`ShardSpec` deterministically partitions a task list so N hosts can
split one grid: each task is assigned by a stable content hash of its
parameters (:func:`task_digest` — independent of list order and of the
task's position in the grid).  A sharded :meth:`SweepRunner.map` runs only
the shard-local slice, publishes every task result into the content-addressed
artifact cache, then merges the full grid back out of the cache; until the
other shards have published their slices it raises
:class:`ShardIncompleteError`.  The last shard to finish therefore returns
the complete, ordered result list — bit-identical to an unsharded run.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import multiprocessing
import os
import sys
import time
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field, replace
from typing import Any, Protocol, runtime_checkable

import numpy as np

from .cache import (
    ArtifactCache,
    POISON_KIND,
    SHARD_RESULT_KIND,
    cache_digest,
    collect_shard_results,
    default_cache,
    poison_key,
    shard_result_key,
)

__all__ = [
    "SweepTask",
    "SweepRunner",
    "SweepExecution",
    "SweepBackend",
    "SerialBackend",
    "ProcessBackend",
    "ThreadBackend",
    "ShardSpec",
    "ShardIncompleteError",
    "QuarantinedTask",
    "RetryingWorker",
    "TaskTimeoutError",
    "WorkerCrashedError",
    "expand_grid",
    "resolve_backend",
    "retry_delay",
    "store_label",
    "task_digest",
    "worker_identity",
]

_ENV_WORKERS = "REPRO_SWEEP_WORKERS"
_ENV_BACKEND = "REPRO_SWEEP_BACKEND"

#: Names accepted by ``SweepRunner(backend=...)`` and ``$REPRO_SWEEP_BACKEND``.
BACKEND_NAMES = ("serial", "process", "thread", "queue", "broker")

#: Default base delay (seconds) between retry attempts; see :func:`retry_delay`.
DEFAULT_BACKOFF = 0.5


@dataclass(frozen=True)
class SweepTask:
    """One grid point of a sweep.

    The generic axes cover the common experiment grids; driver-specific axes
    ride in ``params`` (a sorted tuple of key/value pairs so tasks stay
    hashable and picklable).  ``seed`` is the task's private seed, already
    derived from the sweep root; workers must draw every random decision from
    it (e.g. ``np.random.default_rng(task.seed)``).
    """

    index: int
    seed: int
    benchmark: str | None = None
    voltage: float | None = None
    temperature: float | None = None
    mode: str | None = None
    params: tuple[tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def with_params(self, **extra: Any) -> "SweepTask":
        merged = dict(self.params)
        merged.update(extra)
        return replace(self, params=tuple(sorted(merged.items())))

    def describe(self) -> str:
        """Compact one-line rendering of the task's non-empty axes."""
        parts = []
        for name in ("benchmark", "voltage", "temperature", "mode"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        parts.extend(f"{key}={value}" for key, value in self.params)
        return " ".join(parts) or f"task #{self.index}"


def expand_grid(
    benchmarks: Sequence[str | None] = (None,),
    voltages: Sequence[float | None] = (None,),
    temperatures: Sequence[float | None] = (None,),
    modes: Sequence[str | None] = (None,),
    seed: int | None = 0,
    params: Iterable[dict[str, Any]] | None = None,
) -> list[SweepTask]:
    """Expand axes into an ordered task list with independent per-task seeds.

    The cartesian product iterates benchmarks outermost and modes innermost
    (matching the serial loops the drivers used historically).  ``params``
    optionally replaces the generic axes entirely: each dict becomes one task
    (useful for driver-specific grids such as Fig. 5's fault rates).
    """
    combos: list[dict[str, Any]]
    if params is not None:
        combos = [dict(p) for p in params]
    else:
        combos = [
            {"benchmark": b, "voltage": v, "temperature": t, "mode": m}
            for b in benchmarks
            for v in voltages
            for t in temperatures
            for m in modes
        ]
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(combos)) if combos else []
    tasks = []
    for index, (combo, child) in enumerate(zip(combos, children)):
        fields = {"benchmark", "voltage", "temperature", "mode"}
        base = {k: combo.get(k) for k in fields}
        extra = tuple(sorted((k, v) for k, v in combo.items() if k not in fields))
        tasks.append(
            SweepTask(
                index=index,
                # full 128 bits of the spawned sequence's entropy: truncating
                # to one word would re-introduce birthday collisions between
                # large grids' task seeds
                seed=int.from_bytes(
                    child.generate_state(4, dtype=np.uint32).tobytes(), "little"
                ),
                params=extra,
                **base,
            )
        )
    return tasks


# ------------------------------------------------------------------ sharding


def _digest_safe(value: Any) -> Any:
    """Coerce a task-parameter value into a canonical, cache-hashable form.

    Unordered containers are sorted into a deterministic order and anything
    without a canonical encoding is rejected outright: a ``repr`` fallback
    would hash hash-randomized set ordering or memory addresses, silently
    breaking the cross-host stability that shard assignment depends on.
    """
    if value is None or isinstance(
        value, (bool, np.bool_, int, np.integer, float, np.floating, str)
    ):
        return value
    if isinstance(value, np.ndarray):
        # object arrays hash element memory addresses and structured (void)
        # arrays can carry undefined padding bytes — neither survives a
        # process boundary, let alone a host boundary
        if value.dtype.hasobject or value.dtype.kind == "V":
            raise TypeError(
                f"task parameter array with dtype {value.dtype} has no "
                "canonical digest encoding; use numeric/boolean/string dtypes"
            )
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_digest_safe(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((_digest_safe(item) for item in value), key=repr))
    if isinstance(value, dict):
        return {str(key): _digest_safe(item) for key, item in value.items()}
    raise TypeError(
        f"task parameter {value!r} has no canonical digest encoding; use "
        "scalars, strings, arrays, lists/tuples, sets, or dicts of those"
    )


def task_digest(task: SweepTask) -> str:
    """Stable content hash of a task's payload (independent of grid position).

    Hashes the axes, driver params, and the per-task seed — never ``index``
    — so a task keeps its digest (and therefore its shard assignment and its
    slot in the shard result store) when the task list is reordered.  The
    seed keeps otherwise-identical grid points distinct, because they draw
    different randomness and may legitimately produce different results.
    """
    return cache_digest(
        {
            "benchmark": task.benchmark,
            "voltage": task.voltage,
            "temperature": task.temperature,
            "mode": task.mode,
            "params": _digest_safe(task.params),
            "seed": int(task.seed),
        }
    )


@dataclass(frozen=True)
class ShardSpec:
    """Deterministic ``index``-of-``count`` partition of a sweep grid.

    Assignment hashes each task's content (:func:`task_digest`), not its list
    position, so for any fixed ``count`` the shards are disjoint, cover the
    grid, and are stable under task-list reordering — N hosts can expand the
    same grid independently and agree on who owns what.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("shard count must be >= 1")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index {self.index} out of range for count {self.count}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse a CLI-style ``"i/n"`` spec (e.g. ``"0/2"``)."""
        parts = str(text).strip().split("/")
        if len(parts) != 2:
            raise ValueError(f"shard spec must look like 'i/n', got {text!r}")
        try:
            index, count = int(parts[0]), int(parts[1])
        except ValueError as error:
            raise ValueError(f"shard spec must look like 'i/n', got {text!r}") from error
        return cls(index=index, count=count)

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"

    def owns_digest(self, digest: str) -> bool:
        return int(digest[:16], 16) % self.count == self.index

    def owns(self, task: SweepTask) -> bool:
        """Whether this shard is responsible for executing ``task``."""
        return self.owns_digest(task_digest(task))

    def partition(self, tasks: Sequence[SweepTask]) -> list[SweepTask]:
        """The sub-list of ``tasks`` owned by this shard (original order)."""
        return [task for task in tasks if self.owns(task)]


class ShardIncompleteError(RuntimeError):
    """A sharded sweep merged, but other shards have not published yet.

    The shard-local slice *did* run and its results are in the artifact
    cache; re-running any shard after the missing ones have published
    returns the complete merged result list.
    """

    def __init__(self, shard: ShardSpec, completed: int, missing: list[SweepTask]):
        self.shard = shard
        self.completed = completed
        self.missing = missing
        super().__init__(
            f"shard {shard}: ran {completed} local task(s), but {len(missing)} of the "
            f"grid's tasks are not in the shard store yet — run the remaining shards, "
            f"then re-run any shard to merge the full grid"
        )


# ---------------------------------------------------------------- robustness


def retry_delay(
    backoff: float, digest: str, attempt: int, cap: float = 60.0
) -> float:
    """Delay before re-attempting a failed task: exponential + jitter, capped.

    ``backoff * 2**(attempt-1)`` doubles per attempt; the jitter factor in
    ``[0.5, 1.5)`` is drawn deterministically from ``sha256(digest:attempt)``
    rather than a live RNG, so retry schedules are reproducible run-to-run
    (chaos tests can assert on them) while still de-synchronizing tasks that
    failed together — e.g. every task a dead worker held when its lease
    expired.
    """
    base = float(backoff) * (2.0 ** max(0, int(attempt) - 1))
    token = hashlib.sha256(f"{digest}:{int(attempt)}".encode()).digest()
    fraction = int.from_bytes(token[:8], "big") / float(1 << 64)
    return min(float(cap), base * (0.5 + fraction))


@dataclass(frozen=True)
class QuarantinedTask:
    """A task withdrawn from the sweep after exhausting its retry budget.

    The queue backend yields this *in place of* the task's result (and
    records it in the poison store), so a sweep with a poison task completes
    with an inspectable report instead of deadlocking or tearing down the
    whole grid.  Callers that must not silently consume one can check
    ``getattr(value, "is_quarantined", False)`` — true only for this type —
    without importing the engine.
    """

    task: SweepTask | None
    digest: str
    attempts: int
    errors: tuple[str, ...] = ()

    is_quarantined = True

    def describe(self) -> str:
        what = self.task.describe() if self.task is not None else self.digest[:12]
        last = f": {self.errors[-1]}" if self.errors else ""
        return f"quarantined after {self.attempts} attempt(s) — {what}{last}"


@dataclass
class RetryingWorker:
    """Picklable wrapper retrying ``fn(shared, task)`` in place.

    How the serial/process/thread backends honor ``SweepRunner(retries=)``:
    the retry loop runs *inside* the worker (sleeping :func:`retry_delay`
    between attempts), so those backends keep their execution model and
    simply re-raise once the budget is spent.  The queue backend never sees
    this wrapper — it requeues failures natively, across workers, and is
    additionally able to retry tasks whose worker died rather than raised.
    """

    fn: Callable[[Any, SweepTask], Any]
    retries: int
    backoff: float = DEFAULT_BACKOFF

    def __call__(self, shared: Any, task: SweepTask) -> Any:
        attempt = 1
        while True:
            try:
                return self.fn(shared, task)
            except Exception:
                if attempt > int(self.retries):
                    raise
                time.sleep(retry_delay(self.backoff, task_digest(task), attempt))
                attempt += 1


def worker_identity(fn: Callable[..., Any]) -> str:
    """Qualified name of the user's worker function, unwrapping retry wrappers.

    Shard-store and poison-store keys must name the *logical* worker: a run
    with ``retries=2`` and a run with ``retries=0`` execute the same
    function and must recall each other's published results.
    """
    while isinstance(fn, RetryingWorker):
        fn = fn.fn
    return f"{fn.__module__}.{getattr(fn, '__qualname__', fn.__name__)}"


def store_label(sweep_label: str, shared: Any) -> str:
    """The store namespace for a sweep: label + shared-payload digest.

    The task digest covers only the task's own payload; the shared payload
    configures the sweep too (e.g. fig9a's ``num_words``), so it must reach
    the store key or two different configurations of one worker over one
    grid would silently recall each other's results.  When the shared
    payload has no canonical digest (it carries live objects), the caller
    must vouch for the configuration with a non-empty ``sweep_label``.
    """
    try:
        shared_digest = cache_digest({"shared": _digest_safe(shared)})
    except TypeError:
        shared_digest = None
    if shared_digest is None and not sweep_label:
        raise ValueError(
            "this sweep's shared payload has no canonical digest, so the "
            "shard store cannot distinguish configurations by content; pass "
            "a sweep_label= that uniquely identifies this configuration"
        )
    if shared_digest is None:
        return sweep_label
    return f"{sweep_label}#{shared_digest[:16]}"


class WorkerCrashedError(RuntimeError):
    """A pool worker died by signal (SIGKILL, OOM kill) mid-sweep.

    The process pool cannot tell which of its in-flight tasks the dead
    worker held, so every task that never completed is listed.  The queue
    backend turns this exact failure into a lease expiry + requeue instead
    of an error — hence the suggestion.
    """

    def __init__(self, in_flight: Sequence[SweepTask], backend: str = "process"):
        self.in_flight = list(in_flight)
        shown = [
            f"{task.describe()} [{task_digest(task)[:12]}]"
            for task in self.in_flight[:3]
        ]
        more = f" (+{len(self.in_flight) - 3} more)" if len(self.in_flight) > 3 else ""
        super().__init__(
            f"a {backend}-pool worker died by signal (SIGKILL/OOM) with "
            f"{len(self.in_flight)} task(s) in flight or queued: "
            f"{'; '.join(shown)}{more} — completed results are lost with the "
            "pool; re-run with --backend queue for automatic recovery "
            "(expired leases requeue and surviving workers steal the work)"
        )


class TaskTimeoutError(RuntimeError):
    """No task completed within ``task_timeout`` — the pool looks hung.

    The process backend cannot preempt a single wedged task, so the timeout
    is a *stall* bound: wall-clock since the last completion (or since
    submission).  The queue backend enforces the same flag per-task, as the
    lease's hard deadline, and requeues instead of raising.
    """

    def __init__(self, timeout: float, in_flight: Sequence[SweepTask]):
        self.timeout = float(timeout)
        self.in_flight = list(in_flight)
        shown = [
            f"{task.describe()} [{task_digest(task)[:12]}]"
            for task in self.in_flight[:3]
        ]
        more = f" (+{len(self.in_flight) - 3} more)" if len(self.in_flight) > 3 else ""
        super().__init__(
            f"no task completed within --task-timeout {self.timeout:g}s; "
            f"{len(self.in_flight)} task(s) still in flight or queued: "
            f"{'; '.join(shown)}{more} — the process backend cannot requeue a "
            "hung task; --backend queue steals its lease and retries it on a "
            "surviving worker"
        )


# ------------------------------------------------------------------ backends

# Per-worker globals installed by the pool initializer: the shared payload is
# pickled once per worker instead of once per task.
_WORKER_FN: Callable[[Any, SweepTask], Any] | None = None
_WORKER_SHARED: Any = None


def _init_worker(fn: Callable[[Any, SweepTask], Any], shared: Any) -> None:
    global _WORKER_FN, _WORKER_SHARED
    _WORKER_FN = fn
    _WORKER_SHARED = shared


def _run_indexed_chunk(
    chunk: Sequence[tuple[int, SweepTask]],
) -> list[tuple[int, Any]]:
    assert _WORKER_FN is not None, "worker used before initialization"
    return [(position, _WORKER_FN(_WORKER_SHARED, task)) for position, task in chunk]


@runtime_checkable
class SweepBackend(Protocol):
    """Executes a task list, yielding ``(position, result)`` as tasks finish.

    ``position`` indexes into the submitted task list (not ``task.index``,
    which is grid-global and survives sharding); completion order is
    backend-dependent and callers must not rely on it.
    """

    name: str

    def submit(
        self,
        fn: Callable[[Any, SweepTask], Any],
        shared: Any,
        tasks: Sequence[SweepTask],
        workers: int,
        chunksize: int,
    ) -> Iterator[tuple[int, Any]]: ...


class SerialBackend:
    """In-process, in-order execution; lazy, so consumers drive the sweep."""

    name = "serial"

    def submit(self, fn, shared, tasks, workers, chunksize):
        return ((position, fn(shared, task)) for position, task in enumerate(tasks))


class ProcessBackend:
    """Process pool; the shared payload is pickled once per worker.

    Failure semantics: a worker that *raises* propagates its exception to
    the consumer (like every backend); a worker that *dies by signal*
    (SIGKILL/OOM) raises :class:`WorkerCrashedError` naming the tasks that
    never completed, instead of CPython's opaque ``BrokenProcessPool``.
    With ``task_timeout`` set, a pool that goes ``task_timeout`` seconds
    without completing anything raises :class:`TaskTimeoutError` (a stall
    detector — the pool cannot preempt one wedged task).  Either way the
    remaining workers are torn down; only the queue backend can requeue and
    survive.
    """

    name = "process"

    def __init__(self, mp_context: str | None = None, task_timeout: float | None = None):
        self.mp_context = mp_context
        self.task_timeout = task_timeout

    def submit(self, fn, shared, tasks, workers, chunksize):
        # fork is only reliably safe on Linux: macOS lists it as available,
        # but forking after numpy/Accelerate initialization aborts or
        # deadlocks in the children (hence CPython's spawn default there)
        method = self.mp_context or ("fork" if sys.platform == "linux" else "spawn")
        context = multiprocessing.get_context(method)
        items = list(enumerate(tasks))
        step = max(1, int(chunksize))
        chunks = [items[start : start + step] for start in range(0, len(items), step)]
        timeout = self.task_timeout

        def remaining_tasks(pending_chunks) -> list[SweepTask]:
            return [task for chunk in pending_chunks for _, task in chunk]

        def stream() -> Iterator[tuple[int, Any]]:
            executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(fn, shared),
            )
            try:
                pending = {
                    executor.submit(_run_indexed_chunk, chunk): chunk
                    for chunk in chunks
                }
                while pending:
                    done, _ = concurrent.futures.wait(
                        pending,
                        timeout=timeout,
                        return_when=concurrent.futures.FIRST_COMPLETED,
                    )
                    if not done:
                        raise TaskTimeoutError(timeout, remaining_tasks(pending.values()))
                    for future in done:
                        chunk = pending.pop(future)
                        try:
                            results = future.result()
                        except concurrent.futures.process.BrokenProcessPool as error:
                            raise WorkerCrashedError(
                                remaining_tasks([chunk, *pending.values()])
                            ) from error
                        yield from results
                executor.shutdown()
            except BaseException:
                # kill the workers outright: shutdown() alone would block on
                # (or orphan) a hung/poisoned task, and cancel_futures only
                # covers work that never started
                for process in list(getattr(executor, "_processes", {}).values()):
                    try:
                        process.terminate()
                    except Exception:
                        pass
                executor.shutdown(wait=False, cancel_futures=True)
                raise

        return stream()


class ThreadBackend:
    """Thread pool for workers whose hot loops release the GIL (NumPy).

    Nothing is pickled: every thread sees the same shared payload object, so
    workers must treat it as read-only (all the experiment drivers already
    do — their workers copy networks before mutating them).
    """

    name = "thread"

    def submit(self, fn, shared, tasks, workers, chunksize):
        def stream() -> Iterator[tuple[int, Any]]:
            pool = concurrent.futures.ThreadPoolExecutor(max_workers=workers)
            try:
                futures = {
                    pool.submit(fn, shared, task): position
                    for position, task in enumerate(tasks)
                }
                for future in concurrent.futures.as_completed(futures):
                    yield futures[future], future.result()
            except BaseException:
                # a failing (or abandoned) sweep must not run the queued
                # remainder to completion before the error reaches the caller
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            pool.shutdown()

        return stream()


def resolve_backend(
    spec: str | SweepBackend | None,
    mp_context: str | None = None,
    task_timeout: float | None = None,
) -> SweepBackend:
    """Turn a backend name/instance into a backend, honouring the env override.

    ``None`` resolves ``$REPRO_SWEEP_BACKEND`` and defaults to ``"process"``.
    """
    if spec is None:
        spec = os.environ.get(_ENV_BACKEND, "").strip() or "process"
    if isinstance(spec, str):
        name = spec.strip().lower()
        if name == "serial":
            return SerialBackend()
        if name == "process":
            return ProcessBackend(mp_context, task_timeout=task_timeout)
        if name == "thread":
            return ThreadBackend()
        if name == "queue":
            # local import: the queue module builds on the engine's tasks,
            # digests, and retry policy, so the dependency points that way
            from .queue import QueueBackend

            return QueueBackend(mp_context=mp_context, task_timeout=task_timeout)
        if name == "broker":
            # embedded-broker mode: the backend spawns (and supervises) its
            # own broker subprocess; `--broker host:port` attaches to a live
            # one instead (see repro.experiments.broker)
            from .broker import BrokerBackend

            return BrokerBackend(mp_context=mp_context, task_timeout=task_timeout)
        raise ValueError(
            f"unknown sweep backend {spec!r} (expected one of {BACKEND_NAMES})"
        )
    return spec


def _default_workers() -> int:
    env = os.environ.get(_ENV_WORKERS, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


# -------------------------------------------------------------------- runner


class SweepExecution:
    """Handle over an in-flight sweep submission (one-shot).

    Either iterate :meth:`as_completed` to stream ``(task, result)`` pairs as
    they land, or call :meth:`results` to block for the ordered list.  The
    underlying result stream can be consumed once; mixing the two on one
    handle continues the same stream.
    """

    def __init__(
        self,
        tasks: Sequence[SweepTask],
        stream: Iterator[tuple[int, Any]],
        progress: Callable[[SweepTask, Any, int, int], None] | None = None,
        on_result: Callable[[], None] | None = None,
    ):
        self.tasks = list(tasks)
        self._stream = stream
        self._progress = progress
        self._on_result = on_result
        self._completed: dict[int, Any] = {}

    def __len__(self) -> int:
        return len(self.tasks)

    def _advance(self) -> Iterator[tuple[int, Any]]:
        try:
            for position, value in self._stream:
                self._completed[position] = value
                if self._on_result is not None:
                    self._on_result()
                if self._progress is not None:
                    self._progress(
                        self.tasks[position], value, len(self._completed), len(self.tasks)
                    )
                yield position, value
        except BaseException:
            # the error (or a caller abandoning as_completed mid-iteration)
            # must release backend resources — worker fleets, broker sockets,
            # heartbeat threads — not leave them to a GC-timed finalizer
            self.close()
            raise

    def completions(self) -> Iterator[tuple[int, SweepTask, Any]]:
        """Yield ``(position, task, result)`` triples in completion order.

        ``position`` indexes the submitted task list — it disambiguates
        duplicate tasks for callers (like the shard publisher) that key
        results by list slot.
        """
        for position, value in self._advance():
            yield position, self.tasks[position], value

    def as_completed(self) -> Iterator[tuple[SweepTask, Any]]:
        """Yield ``(task, result)`` pairs in completion order."""
        for position, task, value in self.completions():
            yield task, value

    def results(self) -> list[Any]:
        """Block until every task finished; return results in task order."""
        for _ in self._advance():
            pass
        return [self._completed[position] for position in range(len(self.tasks))]

    def close(self) -> None:
        """Abandon the submission without consuming the remaining results.

        The backend stream's cleanup runs: pools shut down, and the queue
        backend signals its workers and leaves every already-published
        result in the store — resubmitting the same sweep later resumes
        from there.  Chaos tests use this to simulate a coordinator killed
        mid-sweep.
        """
        close = getattr(self._stream, "close", None)
        if close is not None:
            close()


@dataclass
class SweepRunner:
    """Execute sweep tasks on a pluggable, deterministic backend.

    Parameters
    ----------
    workers:
        Worker processes/threads.  ``None`` → ``$REPRO_SWEEP_WORKERS`` or CPU
        count.  1 (or a single-CPU host) always takes the in-process path.
    parallel:
        Master switch; ``False`` forces in-process serial execution
        regardless of ``workers``/``backend`` (used by sweeps whose points
        share mutable state).
    backend:
        Backend name (``"serial"``/``"process"``/``"thread"``) or
        :class:`SweepBackend` instance.  ``None`` → ``$REPRO_SWEEP_BACKEND``
        or ``"process"``.
    mp_context:
        ``multiprocessing`` start method for the process backend (``"fork"``
        on Linux keeps worker start cheap; ``"spawn"`` works everywhere).
    chunksize:
        Tasks handed to a pool worker per dispatch (process backend).
    shard:
        When set, :meth:`map` runs only this shard's slice of the grid and
        merges the full grid through ``shard_store`` (see the module
        docstring); streaming :meth:`submit` is shard-agnostic.
    shard_store:
        Artifact cache for sharded merges (``None`` → the default cache).
    sweep_label:
        Namespace for shard-store entries.  Runs that should merge with each
        other must use the same label; runs with different configurations
        (different grids, worker functions aside) must not share one.
    progress:
        Optional ``(task, result, done, total)`` callback invoked as each
        task completes — lets CLIs render tables incrementally.  Under
        sharding, ``done``/``total`` count the shard's slice (cache-recalled
        results included), not just the tasks executed by this run.
    retries:
        Failed-task retry budget: a task is attempted at most ``retries+1``
        times.  Honored by every backend — the queue backend requeues (and
        quarantines once spent), the others retry in-worker via
        :class:`RetryingWorker` and re-raise once spent.  ``None`` → 0
        (queue backend: its own default of 2).
    task_timeout:
        Per-task hang bound in seconds.  Queue backend: the lease's hard
        deadline, after which the task is stolen and requeued.  Process
        backend: stall detection (:class:`TaskTimeoutError`).  Serial and
        thread backends cannot preempt a running task and ignore it.
    backoff:
        Base delay between retry attempts (:func:`retry_delay` grows it
        exponentially with deterministic jitter).  ``None`` →
        :data:`DEFAULT_BACKOFF`.
    """

    workers: int | None = None
    parallel: bool = True
    backend: str | SweepBackend | None = None
    mp_context: str | None = None
    chunksize: int = 1
    shard: ShardSpec | None = None
    shard_store: ArtifactCache | None = None
    sweep_label: str = ""
    progress: Callable[[SweepTask, Any, int, int], None] | None = None
    retries: int | None = None
    task_timeout: float | None = None
    backoff: float | None = None
    #: number of tasks executed through this runner (all backends)
    tasks_run: int = field(default=0, init=False)

    def effective_workers(self, num_tasks: int) -> int:
        if not self.parallel or num_tasks <= 1:
            return 1
        workers = self.workers if self.workers is not None else _default_workers()
        return max(1, min(int(workers), num_tasks))

    def _resolve(self, num_tasks: int) -> tuple[SweepBackend, int]:
        # resolve before the single-worker short-circuit so an invalid
        # backend name (or $REPRO_SWEEP_BACKEND) fails everywhere, not just
        # on multicore hosts with multi-task grids
        backend = resolve_backend(
            self.backend, self.mp_context, task_timeout=self.task_timeout
        )
        if getattr(backend, "queue_semantics", False) and self.parallel:
            # never downgrade the queue backend to the in-process path: its
            # publish/lease/resume semantics are the point even at 1 worker
            # (parallel=False still wins — stateful sweeps must stay serial)
            backend.configure_from_runner(self)
            workers = self.workers if self.workers is not None else _default_workers()
            return backend, max(1, min(int(workers), max(1, num_tasks)))
        workers = self.effective_workers(num_tasks)
        if workers == 1:
            return SerialBackend(), 1
        return backend, workers

    def submit(
        self,
        fn: Callable[[Any, SweepTask], Any],
        tasks: Sequence[SweepTask],
        shared: Any = None,
        progress: Callable[[SweepTask, Any, int, int], None] | None = None,
    ) -> SweepExecution:
        """Start ``fn(shared, task)`` for every task; return a streaming handle.

        ``progress`` overrides the runner-level callback for this submission
        (``None`` falls back to :attr:`progress`).
        """
        tasks = list(tasks)
        backend, workers = self._resolve(len(tasks))
        run_fn = fn
        retries = int(self.retries) if self.retries else 0
        if retries > 0 and not getattr(backend, "handles_retries", False):
            run_fn = RetryingWorker(
                fn,
                retries,
                self.backoff if self.backoff is not None else DEFAULT_BACKOFF,
            )
        stream = backend.submit(run_fn, shared, tasks, workers, self.chunksize)

        def count() -> None:
            # count at result time, not submission time: the backend streams
            # are lazy, so an abandoned execution must not inflate tasks_run
            self.tasks_run += 1

        return SweepExecution(
            tasks,
            stream,
            progress=progress if progress is not None else self.progress,
            on_result=count,
        )

    def as_completed(
        self,
        fn: Callable[[Any, SweepTask], Any],
        tasks: Sequence[SweepTask],
        shared: Any = None,
    ) -> Iterator[tuple[SweepTask, Any]]:
        """Yield ``(task, result)`` pairs as they land (completion order)."""
        return self.submit(fn, tasks, shared=shared).as_completed()

    def map(
        self,
        fn: Callable[[Any, SweepTask], Any],
        tasks: Sequence[SweepTask],
        shared: Any = None,
    ) -> list[Any]:
        """Run ``fn(shared, task)`` for every task; results in task order.

        With a :class:`ShardSpec` configured, only the shard-local slice is
        executed; see :meth:`_map_sharded` for the merge contract.
        """
        tasks = list(tasks)
        if self.shard is not None and len(tasks) > 0:
            return self._map_sharded(fn, tasks, shared)
        return self.submit(fn, tasks, shared=shared).results()

    def _map_sharded(
        self,
        fn: Callable[[Any, SweepTask], Any],
        tasks: list[SweepTask],
        shared: Any,
    ) -> list[Any]:
        """Run this shard's slice, publish it, and merge the full grid.

        Every completed task result is stored in the artifact cache under
        ``(sweep_label, worker, task_digest)`` as it lands (so a crashed
        shard resumes where it left off), then the full grid is assembled
        from local results plus the other shards' published entries.  Raises
        :class:`ShardIncompleteError` while any task is still unpublished.
        """
        assert self.shard is not None
        store = self.shard_store if self.shard_store is not None else default_cache()
        if not store.enabled and self.shard.count > 1:
            raise ValueError(
                "sharded sweeps merge through the artifact cache; the shard store "
                "must be enabled (unset $REPRO_CACHE_DISABLE or pass an enabled cache)"
            )
        worker_name = worker_identity(fn)
        label = store_label(self.sweep_label, shared)
        digests = [task_digest(task) for task in tasks]
        mine = [
            (position, task)
            for position, task in enumerate(tasks)
            if self.shard.owns_digest(digests[position])
        ]
        # recall shard-local results a previous (possibly killed) run already
        # published, then execute only what is still pending
        recalled, _ = collect_shard_results(
            store,
            label,
            worker_name,
            [digests[position] for position, _ in mine],
        )
        local: dict[str, Any] = {
            digest: payload["result"] for digest, payload in recalled.items()
        }
        pending = [
            (position, task)
            for position, task in mine
            if digests[position] not in local
        ]
        # stream progress counts the whole shard slice, recalled tasks
        # included, so a resumed run reports e.g. [4/4] rather than [1/1]
        progress = None
        if self.progress is not None:
            recalled_count = len(mine) - len(pending)
            done = 0
            for position, task in mine:
                if digests[position] in local:
                    done += 1
                    self.progress(task, local[digests[position]], done, len(mine))
            outer, slice_total = self.progress, len(mine)

            def progress(task, value, done, _total):
                outer(task, value, recalled_count + done, slice_total)

        execution = self.submit(
            fn, [task for _, task in pending], shared=shared, progress=progress
        )
        for local_position, _, value in execution.completions():
            digest = digests[pending[local_position][0]]
            local[digest] = value
            if getattr(value, "is_quarantined", False):
                # the queue backend already recorded the poison entry under
                # its own kind; a quarantine sentinel must never be stored
                # as a task *result* (other shards would recall it as one)
                continue
            # publish as results land, not after the slice finishes: a shard
            # killed mid-run keeps its completed work and resumes from there
            stored = store.put(
                SHARD_RESULT_KIND,
                shard_result_key(label, worker_name, digest),
                {"result": value},
            )
            if not stored and self.shard.count > 1:
                # the publish is this shard's only channel to the merge; a
                # silently dropped entry would deadlock the fleet on
                # ShardIncompleteError with no error surfaced anywhere
                raise RuntimeError(
                    f"shard {self.shard}: failed to publish a task result to the "
                    f"shard store at {store.root} (unpicklable result or "
                    f"unwritable cache); the other shards can never merge "
                    f"without it"
                )
        published, unpublished = collect_shard_results(
            store,
            label,
            worker_name,
            [digest for digest in digests if digest not in local],
        )
        # a task another shard quarantined has a poison entry instead of a
        # result; merging it as a QuarantinedTask (exactly what the local
        # queue coordinator would yield) keeps poisoned sweeps mergeable
        # rather than deadlocked on ShardIncompleteError
        poisoned: dict[str, QuarantinedTask] = {}
        for digest in unpublished:
            payload = store.get(POISON_KIND, poison_key(label, worker_name, digest))
            if payload is not None:
                poisoned[digest] = QuarantinedTask(
                    task=payload.get("task"),
                    digest=digest,
                    attempts=int(payload.get("attempts", 0)),
                    errors=tuple(payload.get("errors", ())),
                )
        results: list[Any] = []
        missing: list[SweepTask] = []
        for task, digest in zip(tasks, digests):
            if digest in local:
                results.append(local[digest])
            elif digest in published:
                results.append(published[digest]["result"])
            elif digest in poisoned:
                results.append(poisoned[digest])
            else:
                missing.append(task)
        if missing:
            raise ShardIncompleteError(self.shard, completed=len(mine), missing=missing)
        return results
