"""Fig. 9 — (a) measured SRAM read-failure rate, (b) topology selection.

Fig. 9a plots the measured bit-level read-failure rate of the compiled weight
SRAMs against supply voltage at 25 °C.  The driver profiles a modelled bank
with the same read-after-write / read-after-read procedure used post-silicon
and reports the measured rate next to the variation model's analytic
prediction.

Fig. 9b justifies the compact benchmark topologies: for each candidate hidden
width the paper trains a model and plots its error, picking the smallest
topology that does not sacrifice accuracy, "to avoid biased
over-parameterization" (an over-parameterized model would hide the impact of
SRAM faults).  The driver sweeps hidden widths for one benchmark and reports
test error and parameter count per topology.

Both sweeps run through the :class:`~repro.experiments.engine.SweepRunner`:
Fig. 9a expands the voltage axis (each task profiles its own identically
seeded bank, so tasks are independent and order-free), Fig. 9b expands the
hidden-width axis with each candidate's training memoized in the artifact
cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.network import Network
from ..sram import calibration
from ..sram.array import SramBank
from ..sram.profiler import SramProfiler
from .cache import ArtifactCache, default_cache
from .common import (
    ExperimentResult,
    experiment_parser,
    fmt,
    fmt_percent,
    partition_quarantined,
    prepare_benchmark,
    quarantine_notes,
    run_experiment_cli,
    train_cached,
)
from .engine import SweepRunner, SweepTask, expand_grid

__all__ = ["run_fig9a", "run_fig9b", "Fig9aPoint", "Fig9bPoint", "main"]


@dataclass
class Fig9aPoint:
    """Measured and model-predicted failure rate at one voltage."""

    voltage: float
    measured_rate: float
    predicted_rate: float
    word_rate: float


@dataclass
class Fig9aResult:
    points: list[Fig9aPoint] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)

    def to_experiment_result(self) -> ExperimentResult:
        rows = [
            [
                f"{p.voltage:.2f}",
                f"{p.measured_rate:.2e}",
                f"{p.predicted_rate:.2e}",
                fmt_percent(p.word_rate),
            ]
            for p in self.points
        ]
        return ExperimentResult(
            experiment="Fig. 9a — SRAM read-failure rate vs voltage (25 °C)",
            headers=["voltage (V)", "measured bit rate", "model bit rate", "word rate"],
            rows=rows,
            paper_reference={
                "first failures": "~0.53 V",
                "all reads failing": "~0.40 V",
                "word-level incidence at the 0.50 V MEP": "~28%",
            },
            quarantined=list(self.quarantined),
        )


def _fig9a_point_worker(shared: dict, task: SweepTask) -> Fig9aPoint:
    """Profile one identically seeded bank at one voltage."""
    bank = SramBank(shared["num_words"], shared["word_bits"], seed=shared["seed"])
    voltage = float(task.voltage)
    report = SramProfiler().profile_bank(bank, voltage, shared["temperature"])
    predicted = float(bank.variation_model.failure_probability(voltage))
    # word-level incidence straight off the bank's operating-point-resident
    # corruption masks (already cached by the profiling reads); for the
    # default all-zeros/all-ones backgrounds the profiled map records
    # exactly these cells, so the two representations cannot disagree
    and_masks, or_masks = bank.corruption_masks(voltage, shared["temperature"])
    faulty_words = np.count_nonzero(
        (and_masks != np.uint64(bank.word_mask)) | (or_masks != np.uint64(0))
    )
    word_rate = int(faulty_words) / bank.num_words
    return Fig9aPoint(
        voltage=voltage,
        measured_rate=report.fault_rate,
        predicted_rate=predicted,
        word_rate=word_rate,
    )


def run_fig9a(
    voltages: np.ndarray | None = None,
    num_words: int = 4608,
    word_bits: int = 16,
    seed: int = 3,
    temperature: float = calibration.NOMINAL_TEMPERATURE,
    runner: SweepRunner | None = None,
) -> Fig9aResult:
    """Profile a weight-SRAM-sized bank across the voltage sweep of Fig. 9a.

    The default geometry (4608 × 16 bits = 9 KB) matches the paper's total
    on-chip SRAM so the measured tail statistics are comparable.  Every task
    reconstructs the bank from the same seed, so the sweep is embarrassingly
    parallel and the measured curve does not depend on profiling order.
    """
    if voltages is None:
        voltages = np.arange(0.40, 0.561, 0.01)
    runner = runner or SweepRunner()
    tasks = expand_grid(voltages=[float(v) for v in np.asarray(voltages, dtype=float)], seed=seed)
    shared = {
        "num_words": num_words,
        "word_bits": word_bits,
        "seed": seed,
        "temperature": temperature,
    }
    result = Fig9aResult()
    points, quarantined = partition_quarantined(
        runner.map(_fig9a_point_worker, tasks, shared=shared)
    )
    result.points.extend(points)
    result.quarantined.extend(quarantine_notes(quarantined))
    return result


@dataclass
class Fig9bPoint:
    """Error of one candidate topology."""

    topology: str
    num_parameters: int
    test_error: float
    train_error: float


@dataclass
class Fig9bResult:
    benchmark: str
    selected_topology: str
    points: list[Fig9bPoint] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)

    def to_experiment_result(self) -> ExperimentResult:
        rows = [
            [p.topology, str(p.num_parameters), fmt(p.test_error), fmt(p.train_error)]
            for p in self.points
        ]
        return ExperimentResult(
            experiment="Fig. 9b — topology selection (error vs model size)",
            headers=["topology", "parameters", "test error", "train error"],
            rows=rows,
            paper_reference={
                "selected topology (paper)": self.selected_topology,
                "criterion": "smallest topology that does not sacrifice accuracy",
            },
            quarantined=list(self.quarantined),
        )


def _fig9b_point_worker(shared: dict, task: SweepTask) -> Fig9bPoint:
    """Train and evaluate one candidate topology (training memoized)."""
    prepared = shared["prepared"]
    spec = prepared.spec
    hidden = task.param("hidden")
    topology = f"{shared['input_width']}-{hidden}-{shared['output_width']}"
    network = Network(
        topology,
        hidden_activation=spec.hidden_activation,
        output_activation=spec.output_activation,
        loss=spec.loss,
        seed=shared["seed"] + 2,
    )
    train_cached(
        network,
        prepared.train,
        learning_rate=0.2,
        epochs=shared["epochs"],
        batch_size=16,
        seed=shared["seed"] + 3,
        cache=shared["cache"],
    )
    test_error = spec.error(network.predict(prepared.test.inputs), prepared.test)
    train_error = spec.error(network.predict(prepared.train.inputs), prepared.train)
    return Fig9bPoint(
        topology=topology,
        num_parameters=network.num_parameters,
        test_error=test_error,
        train_error=train_error,
    )


def run_fig9b(
    benchmark: str = "mnist",
    hidden_widths: tuple[int, ...] = (4, 8, 16, 32, 64, 128),
    num_samples: int = 1600,
    epochs: int = 40,
    seed: int = 1,
    runner: SweepRunner | None = None,
    cache: ArtifactCache | None = None,
) -> Fig9bResult:
    """Sweep hidden-layer width for one benchmark (Fig. 9b)."""
    cache = cache if cache is not None else default_cache()
    prepared = prepare_benchmark(
        benchmark, num_samples=num_samples, seed=seed, epochs=1, cache=cache
    )
    spec = prepared.spec
    widths = spec.topology.split("-")
    input_width, output_width = int(widths[0]), int(widths[-1])
    runner = runner or SweepRunner()
    tasks = expand_grid(params=[{"hidden": int(h)} for h in hidden_widths], seed=seed)
    shared = {
        "prepared": prepared,
        "input_width": input_width,
        "output_width": output_width,
        "epochs": epochs,
        "seed": seed,
        "cache": cache,
    }
    result = Fig9bResult(benchmark=spec.name, selected_topology=spec.topology)
    points, quarantined = partition_quarantined(
        runner.map(_fig9b_point_worker, tasks, shared=shared)
    )
    result.points.extend(points)
    result.quarantined.extend(quarantine_notes(quarantined))
    return result


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.fig09_sram`` — regenerate Fig. 9a or 9b."""
    parser = experiment_parser(
        "python -m repro.experiments.fig09_sram",
        "Fig. 9 — (a) SRAM read-failure rate vs voltage, (b) topology selection.",
    )
    parser.add_argument(
        "--figure", choices=("a", "b"), default="a", help="which panel to regenerate"
    )
    parser.add_argument("--seed", type=int, default=None, help="default: 3 (a) / 1 (b)")
    group_a = parser.add_argument_group("figure 9a")
    group_a.add_argument("--voltages", type=float, nargs="+", default=None)
    group_a.add_argument("--num-words", type=int, default=4608)
    group_a.add_argument("--word-bits", type=int, default=16)
    group_b = parser.add_argument_group("figure 9b")
    group_b.add_argument("--benchmark", default="mnist")
    group_b.add_argument(
        "--hidden-widths", type=int, nargs="+", default=[4, 8, 16, 32, 64, 128]
    )
    group_b.add_argument("--num-samples", type=int, default=1600)
    group_b.add_argument("--epochs", type=int, default=40)
    args = parser.parse_args(argv)
    # resolve CLI-knowable defaults onto args BEFORE run_experiment_cli
    # digests them into the shard label: a default-seed run and an explicit
    # `--seed 3` run are the same configuration and must merge
    if args.seed is None:
        args.seed = 3 if args.figure == "a" else 1
    if args.figure == "a" and args.voltages is None:
        # the exact values run_fig9a would have chosen — not rounded copies,
        # which would perturb the simulated physics at threshold voltages
        args.voltages = [float(v) for v in np.arange(0.40, 0.561, 0.01)]
    if args.figure == "a":
        return run_experiment_cli(
            args,
            "fig9a",
            lambda runner, cache: run_fig9a(
                voltages=np.asarray(args.voltages, dtype=float),
                num_words=args.num_words,
                word_bits=args.word_bits,
                seed=args.seed,
                runner=runner,
            ),
        )
    return run_experiment_cli(
        args,
        "fig9b",
        lambda runner, cache: run_fig9b(
            benchmark=args.benchmark,
            hidden_widths=tuple(args.hidden_widths),
            num_samples=args.num_samples,
            epochs=args.epochs,
            seed=args.seed,
            runner=runner,
            cache=cache,
        ),
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    from repro.experiments.common import dispatch_canonical_main

    raise SystemExit(dispatch_canonical_main(__spec__))
