"""Table III — comparison with state-of-the-art DNN accelerators.

The paper positions SNNAC+MATIC against four published accelerators.  The
prior-work rows are literature numbers (reproduced here as constants, exactly
as a survey table would); the two SNNAC rows — nominal efficiency and
efficiency with MATIC-enabled voltage scaling — are *recomputed* from the
simulator: a deployed benchmark model provides the ops/cycle figure and the
calibrated energy model provides power at each operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..accelerator.energy import NOMINAL_OPERATING_POINT, OperatingPoint
from ..quant.quantizer import WeightQuantizer
from .cache import ArtifactCache, default_cache
from .common import (
    ExperimentResult,
    experiment_parser,
    make_chip,
    partition_quarantined,
    prepare_benchmark,
    quarantine_notes,
    run_experiment_cli,
)
from .engine import SweepRunner, SweepTask, expand_grid

__all__ = ["AcceleratorRow", "Table3Result", "run_table3", "PRIOR_WORK_ROWS", "main"]


@dataclass(frozen=True)
class AcceleratorRow:
    """One row of the comparison table."""

    name: str
    process: str
    area_mm2: float | None
    dnn_type: str
    power_mw: float
    frequency_mhz: float
    voltage: str
    efficiency_gops_per_w: float
    measured_on_silicon: bool


#: Literature rows of Table III (values as reported by the respective papers).
PRIOR_WORK_ROWS: tuple[AcceleratorRow, ...] = (
    AcceleratorRow(
        name="ISSCC'17 (Bang et al.)",
        process="40 nm",
        area_mm2=7.1,
        dnn_type="Fully-connected",
        power_mw=0.29,
        frequency_mhz=3.9,
        voltage="0.63-0.9",
        efficiency_gops_per_w=374.0,
        measured_on_silicon=True,
    ),
    AcceleratorRow(
        name="ISCA'16 EIE",
        process="45 nm",
        area_mm2=0.64,
        dnn_type="Fully-connected",
        power_mw=9.2,
        frequency_mhz=800.0,
        voltage="1.0",
        efficiency_gops_per_w=174.0,
        measured_on_silicon=False,
    ),
    AcceleratorRow(
        name="DATE'17 Chain-NN",
        process="28 nm",
        area_mm2=None,
        dnn_type="Convolutional",
        power_mw=33.0,
        frequency_mhz=204.0,
        voltage="0.9",
        efficiency_gops_per_w=1421.0,
        measured_on_silicon=False,
    ),
    AcceleratorRow(
        name="ISSCC'16 Eyeriss",
        process="65 nm",
        area_mm2=12.2,
        dnn_type="Convolutional",
        power_mw=567.5,
        frequency_mhz=700.0,
        voltage="0.82-1.17",
        efficiency_gops_per_w=243.0,
        measured_on_silicon=True,
    ),
)


@dataclass
class Table3Result:
    """Either SNNAC row may be ``None`` (its task quarantined in a merge)."""

    snnac_nominal: AcceleratorRow | None
    snnac_matic: AcceleratorRow | None
    prior_work: tuple[AcceleratorRow, ...] = PRIOR_WORK_ROWS
    rows: list[AcceleratorRow] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        recomputed = [self.snnac_nominal, self.snnac_matic]
        self.rows = [row for row in recomputed if row is not None] + list(
            self.prior_work
        )

    def to_experiment_result(self) -> ExperimentResult:
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    row.name,
                    row.process,
                    "-" if row.area_mm2 is None else f"{row.area_mm2:.2f}",
                    row.dnn_type,
                    f"{row.power_mw:.2f}",
                    f"{row.frequency_mhz:.1f}",
                    row.voltage,
                    f"{row.efficiency_gops_per_w:.1f}",
                ]
            )
        return ExperimentResult(
            experiment="Table III — comparison with state-of-the-art accelerators",
            headers=[
                "design",
                "process",
                "area (mm2)",
                "DNN type",
                "power (mW)",
                "freq (MHz)",
                "voltage (V)",
                "GOPS/W",
            ],
            rows=table_rows,
            paper_reference={
                "SNNAC (paper)": "119.2 GOPS/W nominal, 400.5 GOPS/W with MATIC, 0.37 mW at 17.8 MHz",
            },
            notes=(
                "Prior-work rows are literature values; the two SNNAC rows are recomputed "
                "from the simulator (deployed mnist model) and the calibrated energy model."
            ),
            quarantined=list(self.quarantined),
        )


def _table3_row_worker(shared: dict, task: SweepTask) -> AcceleratorRow:
    """Recompute one SNNAC comparison row on its own deployed chip."""
    prepared = shared["prepared"]
    matic_point: OperatingPoint = shared["matic_point"]
    chip = make_chip(seed=shared["seed"] + 10)
    chip.deploy(prepared.baseline, WeightQuantizer(total_bits=16, frac_bits=13))
    # characteristics derive from this chip's own config, so a non-default
    # geometry can never silently report the fabricated 8-PE numbers
    characteristics = chip.characteristics()
    process = characteristics["technology"].split()[-2] + " nm"

    if task.mode == "nominal":
        low_power_baseline = OperatingPoint(
            matic_point.logic_voltage, 0.9, matic_point.frequency, name="low_power_base"
        )
        return AcceleratorRow(
            name="SNNAC (this reproduction, nominal)",
            process=process,
            area_mm2=characteristics["core_area_mm2"],
            dnn_type="Fully-connected",
            power_mw=chip.energy_model.power(low_power_baseline) * 1e3,
            frequency_mhz=matic_point.frequency / 1e6,
            voltage="0.9",
            efficiency_gops_per_w=chip.efficiency_gops_per_watt(NOMINAL_OPERATING_POINT),
            measured_on_silicon=False,
        )
    return AcceleratorRow(
        name="SNNAC + MATIC (this reproduction)",
        process=process,
        area_mm2=characteristics["core_area_mm2"],
        dnn_type="Fully-connected",
        power_mw=chip.energy_model.power(matic_point) * 1e3,
        frequency_mhz=matic_point.frequency / 1e6,
        voltage=f"{matic_point.sram_voltage:.2f}-0.9",
        efficiency_gops_per_w=chip.efficiency_gops_per_watt(matic_point),
        measured_on_silicon=False,
    )


def run_table3(
    benchmark: str = "mnist",
    num_samples: int = 800,
    seed: int = 1,
    matic_point: OperatingPoint | None = None,
    runner: SweepRunner | None = None,
    cache: ArtifactCache | None = None,
) -> Table3Result:
    """Recompute the SNNAC rows of Table III from the simulator.

    The two SNNAC rows are engine tasks sharing the cached prepared
    benchmark; each worker deploys its own identically seeded chip.
    """
    cache = cache if cache is not None else default_cache()
    prepared = prepare_benchmark(
        benchmark, num_samples=num_samples, seed=seed, epochs=5, cache=cache
    )
    # two near-trivial rows: the in-process path avoids pickling the full
    # prepared benchmark into pool workers for microseconds of work
    runner = runner or SweepRunner(parallel=False)

    # the paper quotes the low-power operating point (17.8 MHz) for power and
    # the nominal/MATIC pair for efficiency
    matic_point = matic_point or OperatingPoint(0.55, 0.50, 17.8e6, name="EnOpt_split")
    tasks = expand_grid(modes=("nominal", "matic"), seed=seed)
    shared = {"prepared": prepared, "matic_point": matic_point, "seed": seed}
    results = runner.map(_table3_row_worker, tasks, shared=shared)
    # keyed (not positional) assembly: a quarantined sentinel must drop its
    # own row rather than shifting the other into the wrong slot
    _, quarantined = partition_quarantined(results)
    by_mode = {
        task.mode: value
        for task, value in zip(tasks, results)
        if not getattr(value, "is_quarantined", False)
    }
    return Table3Result(
        snnac_nominal=by_mode.get("nominal"),
        snnac_matic=by_mode.get("matic"),
        quarantined=quarantine_notes(quarantined),
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.table3_comparison`` — Table III."""
    parser = experiment_parser(
        "python -m repro.experiments.table3_comparison",
        "Table III — comparison with prior DNN accelerators (SNNAC rows).",
    )
    parser.add_argument("--benchmark", default="mnist")
    parser.add_argument("--num-samples", type=int, default=800)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    return run_experiment_cli(
        args,
        "table3",
        lambda runner, cache: run_table3(
            benchmark=args.benchmark,
            num_samples=args.num_samples,
            seed=args.seed,
            runner=runner,
            cache=cache,
        ),
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    from repro.experiments.common import dispatch_canonical_main

    raise SystemExit(dispatch_canonical_main(__spec__))
