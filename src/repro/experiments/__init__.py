"""Experiment drivers: one module per table/figure of the paper's evaluation.

| Paper artifact | Driver |
|---|---|
| Fig. 5   | :func:`repro.experiments.fig05_mat_sweep.run_fig5` |
| Fig. 9a  | :func:`repro.experiments.fig09_sram.run_fig9a` |
| Fig. 9b  | :func:`repro.experiments.fig09_sram.run_fig9b` |
| Fig. 10  | :func:`repro.experiments.fig10_error_vs_voltage.run_fig10` |
| Table I  | :func:`repro.experiments.table1_application_error.run_table1` |
| Fig. 11  | :func:`repro.experiments.fig11_energy.run_fig11` |
| Table II | :func:`repro.experiments.table2_energy_scenarios.run_table2` |
| Fig. 12  | :func:`repro.experiments.fig12_temperature.run_fig12` |
| Table III| :func:`repro.experiments.table3_comparison.run_table3` |

All drivers execute through the sweep engine
(:mod:`repro.experiments.engine`): grids expand into independent seeded
tasks that run serially or on a multiprocessing pool with identical results,
and heavyweight artifacts (float baselines, memory-adaptive fine-tuning,
topology-sweep fits) are memoized by the content-addressed artifact cache
(:mod:`repro.experiments.cache`).
"""

from .cache import ArtifactCache, cache_digest, default_cache, set_default_cache
from .common import (
    ExperimentResult,
    PreparedBenchmark,
    default_flow,
    format_table,
    make_chip,
    prepare_benchmark,
    train_cached,
)
from .engine import SweepRunner, SweepTask, expand_grid
from .fig05_mat_sweep import run_fig5
from .fig09_sram import run_fig9a, run_fig9b
from .fig10_error_vs_voltage import DEFAULT_VOLTAGES, run_fig10
from .fig11_energy import run_fig11
from .fig12_temperature import run_fig12
from .table1_application_error import PAPER_TABLE1, run_table1
from .table2_energy_scenarios import PAPER_TABLE2, run_table2
from .table3_comparison import PRIOR_WORK_ROWS, run_table3

__all__ = [
    "ArtifactCache",
    "ExperimentResult",
    "PreparedBenchmark",
    "SweepRunner",
    "SweepTask",
    "cache_digest",
    "default_cache",
    "set_default_cache",
    "expand_grid",
    "prepare_benchmark",
    "train_cached",
    "default_flow",
    "make_chip",
    "format_table",
    "run_fig5",
    "run_fig9a",
    "run_fig9b",
    "run_fig10",
    "DEFAULT_VOLTAGES",
    "run_fig11",
    "run_fig12",
    "run_table1",
    "PAPER_TABLE1",
    "run_table2",
    "PAPER_TABLE2",
    "run_table3",
    "PRIOR_WORK_ROWS",
]
