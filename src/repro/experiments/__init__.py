"""Experiment drivers: one module per table/figure of the paper's evaluation.

| Paper artifact | Driver |
|---|---|
| Fig. 5   | :func:`repro.experiments.fig05_mat_sweep.run_fig5` |
| Fig. 9a  | :func:`repro.experiments.fig09_sram.run_fig9a` |
| Fig. 9b  | :func:`repro.experiments.fig09_sram.run_fig9b` |
| Fig. 10  | :func:`repro.experiments.fig10_error_vs_voltage.run_fig10` |
| Table I  | :func:`repro.experiments.table1_application_error.run_table1` |
| Fig. 11  | :func:`repro.experiments.fig11_energy.run_fig11` |
| Table II | :func:`repro.experiments.table2_energy_scenarios.run_table2` |
| Fig. 12  | :func:`repro.experiments.fig12_temperature.run_fig12` |
| Table III| :func:`repro.experiments.table3_comparison.run_table3` |

Beyond the paper's artifacts, :func:`repro.experiments.scaling_geometry.run_scaling_geometry`
sweeps chip geometry (PE count × bank capacity) against the workload
catalog — the paper benchmarks plus procedural ``synth/...`` specs — and
:func:`repro.experiments.variation_scenarios.run_variation_scenarios`
sweeps correlated-variation scenarios (shape × strength × workload) for
die Vmin/yield statistics, fault-map clustering, MATIC-vs-naive error, and
margin-vs-stratified canary placement.
:func:`repro.experiments.fleet_population.run_fleet_population` scales from
one die to a seeded chip population (:mod:`repro.population`): die
Vmin/yield distributions, per-die canary margins, and error percentiles
serving a mixed-operating-point request stream, sharded by die index.

All drivers execute through the sweep engine
(:mod:`repro.experiments.engine`): grids expand into independent seeded
tasks that run serially or on a multiprocessing pool with identical results,
and heavyweight artifacts (float baselines, memory-adaptive fine-tuning,
topology-sweep fits) are memoized by the content-addressed artifact cache
(:mod:`repro.experiments.cache`).  For sweeps that must survive worker
death, the elastic queue backend (:mod:`repro.experiments.queue`) adds
lease-based claiming, retries with quarantine, and zero-recompute resume;
the socket broker (:mod:`repro.experiments.broker`) serves the same
semantics over TCP for fleets with no shared filesystem; and
:mod:`repro.experiments.faults` is the deterministic chaos harness for
both — process-level (kill/delay/no-heartbeat/poison) and wire-level
(drop-connection/partition/delay-ack/kill-broker) rules.

The engine/cache/common core is imported eagerly; the nine driver modules
load lazily (PEP 562).  Laziness is not an import-time optimization: it
keeps ``python -m repro.experiments.<driver>`` from importing the target
module *before* ``runpy`` executes it as ``__main__`` (the double-execution
``RuntimeWarning``), which also guaranteed every CLI run a second copy of
the driver's classes and workers.
"""

from importlib import import_module

from .cache import (
    ArtifactCache,
    cache_digest,
    collect_shard_results,
    default_cache,
    set_default_cache,
    shard_result_key,
)
from .common import (
    ExperimentResult,
    PreparedBenchmark,
    default_flow,
    experiment_parser,
    format_table,
    make_chip,
    partition_quarantined,
    prepare_benchmark,
    quarantine_notes,
    run_experiment_cli,
    runner_from_args,
    train_cached,
)
from .engine import (
    ProcessBackend,
    QuarantinedTask,
    RetryingWorker,
    SerialBackend,
    ShardIncompleteError,
    ShardSpec,
    SweepBackend,
    SweepExecution,
    SweepRunner,
    SweepTask,
    TaskTimeoutError,
    ThreadBackend,
    WorkerCrashedError,
    expand_grid,
    resolve_backend,
    retry_delay,
    task_digest,
)
from .faults import (
    DelayAck,
    DelayTask,
    DropConnection,
    FaultPlan,
    KillBroker,
    KillWorker,
    PartitionWorker,
    PoisonTask,
    SuppressHeartbeat,
)
from .queue import QueueBackend
#: Lazily exported attributes: name -> submodule that defines it.  Mostly
#: driver entry points; also BrokerBackend, whose module is runnable
#: (``python -m repro.experiments.broker serve``) and therefore must not be
#: pre-imported here (the runpy double-execution warning, same as drivers).
_DRIVER_EXPORTS = {
    "BrokerBackend": "broker",
    "run_fig5": "fig05_mat_sweep",
    "run_fig9a": "fig09_sram",
    "run_fig9b": "fig09_sram",
    "run_fig10": "fig10_error_vs_voltage",
    "DEFAULT_VOLTAGES": "fig10_error_vs_voltage",
    "run_fig11": "fig11_energy",
    "run_fig12": "fig12_temperature",
    "run_table1": "table1_application_error",
    "PAPER_TABLE1": "table1_application_error",
    "run_table2": "table2_energy_scenarios",
    "PAPER_TABLE2": "table2_energy_scenarios",
    "run_table3": "table3_comparison",
    "PRIOR_WORK_ROWS": "table3_comparison",
    "run_scaling_geometry": "scaling_geometry",
    "DEFAULT_WORKLOADS": "scaling_geometry",
    "run_variation_scenarios": "variation_scenarios",
    "DEFAULT_SHAPES": "variation_scenarios",
    "DEFAULT_STRENGTHS": "variation_scenarios",
    "run_fleet_population": "fleet_population",
    "DEFAULT_OPERATING_VOLTAGES": "fleet_population",
}

#: Driver submodules, also reachable as package attributes once requested.
_DRIVER_MODULES = frozenset(_DRIVER_EXPORTS.values())


def __getattr__(name: str):
    if name in _DRIVER_MODULES:
        return import_module(f".{name}", __name__)
    module_name = _DRIVER_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(f".{module_name}", __name__), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_DRIVER_EXPORTS) | _DRIVER_MODULES)


__all__ = [
    "ArtifactCache",
    "BrokerBackend",
    "DelayAck",
    "DelayTask",
    "DropConnection",
    "ExperimentResult",
    "FaultPlan",
    "KillBroker",
    "KillWorker",
    "PartitionWorker",
    "PoisonTask",
    "PreparedBenchmark",
    "ProcessBackend",
    "QuarantinedTask",
    "QueueBackend",
    "RetryingWorker",
    "SerialBackend",
    "ShardIncompleteError",
    "ShardSpec",
    "SuppressHeartbeat",
    "SweepBackend",
    "SweepExecution",
    "SweepRunner",
    "SweepTask",
    "TaskTimeoutError",
    "ThreadBackend",
    "WorkerCrashedError",
    "cache_digest",
    "collect_shard_results",
    "default_cache",
    "set_default_cache",
    "shard_result_key",
    "expand_grid",
    "resolve_backend",
    "retry_delay",
    "task_digest",
    "experiment_parser",
    "run_experiment_cli",
    "runner_from_args",
    "prepare_benchmark",
    "train_cached",
    "default_flow",
    "make_chip",
    "partition_quarantined",
    "quarantine_notes",
    "format_table",
    "run_fig5",
    "run_fig9a",
    "run_fig9b",
    "run_fig10",
    "DEFAULT_VOLTAGES",
    "run_fig11",
    "run_fig12",
    "run_table1",
    "PAPER_TABLE1",
    "run_table2",
    "PAPER_TABLE2",
    "run_table3",
    "PRIOR_WORK_ROWS",
    "run_scaling_geometry",
    "DEFAULT_WORKLOADS",
    "run_variation_scenarios",
    "DEFAULT_SHAPES",
    "DEFAULT_STRENGTHS",
    "run_fleet_population",
    "DEFAULT_OPERATING_VOLTAGES",
]
