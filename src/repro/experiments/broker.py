"""Socket-broker sweep service: the directory queue for hosts with no shared disk.

``BrokerBackend`` is the fifth :class:`~repro.experiments.engine.SweepBackend`
and the distributed sibling of :class:`~repro.experiments.queue.QueueBackend`:
the same lease-based claims, heartbeat renewal, expired-lease stealing,
exponential backoff with deterministic jitter, and poison quarantine — but
coordinated by a tiny dependency-free TCP broker instead of a shared
directory, so any host that can open a socket can join a fleet.  The retry
mathematics are not merely similar: both backends call the *same*
:func:`~repro.experiments.queue.fail_transition` and judge leases with the
same :func:`~repro.experiments.cache.lease_expired`, so a task's retry
trajectory is bit-identical whichever transport carries it.

Wire protocol
-------------
Newline-delimited JSON over a persistent TCP connection.  Every request is
one object with an ``op`` field; every reply is one object with ``ok``
(True, or False plus ``error``).  Task and result payloads travel as
base64-encoded pickles inside the JSON (the broker never unpickles them —
it routes opaque bytes; like every pickle-based channel in the stack, the
protocol assumes a trusted network).  Operations:

====================  =======================================================
``ping``              liveness probe; reports the sweep count
``enqueue``           register task records + the sweep's retries/backoff
                      policy; already-known and already-settled digests are
                      skipped, so concurrent or resumed coordinators are safe
``claim``             lease one claimable task (not leased, backoff window
                      passed).  Idempotent per owner: a worker re-sending a
                      claim whose reply was lost gets the same record back
``renew``             push the lease's heartbeat deadline forward (the hard
                      ``task_timeout`` deadline is never renewed)
``complete``          settle a task with its result bytes.  Idempotent: a
                      re-sent or late (post-steal) completion is absorbed
``fail``              report a failed attempt.  Keyed on the attempt number
                      the worker claimed, so a re-sent fail whose first copy
                      already requeued the task is ignored as stale
``collect``           coordinator poll: settled payloads for the digests it
                      still wants, plus pending/leased counts
``shutdown``          tell future claims to return ``shutdown: true``
``retire``            drop a fully-settled sweep and delete its journal
``stop``              stop the server loop (embedded teardown / CI cleanup)
====================  =======================================================

Journal
-------
Every state *transition* appends one JSON line to
``<journal_dir>/<sweep_id>.journal`` before the reply is sent: ``sweep``
(policy), ``task`` (enqueue or requeue — the full record, including the
backoff's ``not_before``), ``lease``, ``done`` (with the result bytes),
``poison``, and ``shutdown``.  Heartbeat renewals are deliberately *not*
journaled: on replay every live lease is restored with a fresh
``lease_seconds`` grace window, which is exactly the benefit of the doubt a
renewing worker had earned.  A SIGKILLed broker therefore restarts with
zero lost claims and zero lost results — replay rebuilds pending tasks,
leases, and settled payloads, tolerating a torn final line (the only kind
of tear a single-``write`` append can produce).  Requeues and settlements
overwrite/remove the lease on replay, so no explicit release entry exists.

Failure handling
----------------
Clients use bounded reconnect-with-backoff: attempt ``n`` sleeps
``min(1s, connect_backoff * 2**(n-1))`` before retrying, giving a default
window of roughly half a minute — wide enough to ride out a broker restart,
finite so nothing hangs forever.  Degradation is graceful at every layer: a
worker that cannot renew past its lease deadline *abandons* the task (the
broker re-leases it; the worker's store publish, if any, is absorbed
idempotently); an embedded broker that dies is restarted by the coordinator
(up to ``max_broker_restarts``) on the same port; a coordinator that can
never reach its broker — or whose restart budget is spent — drains the
remaining tasks inline with full retry/quarantine semantics rather than
hanging.  Chaos for all of this is injected by plan via the wire-level
rules in :mod:`repro.experiments.faults` (``drop-connection``,
``partition``, ``delay-ack``, ``kill-broker``).

Standalone usage::

    python -m repro.experiments.broker serve --port 7464 --supervise &
    python -m repro.experiments.fig09_sram --figure a --broker 127.0.0.1:7464
"""

from __future__ import annotations

import base64
import json
import multiprocessing
import os
import pickle
import re
import signal
import socket
import socketserver
import sys
import threading
import time
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from .cache import (
    ArtifactCache,
    POISON_KIND,
    SHARD_RESULT_KIND,
    cache_digest,
    default_cache,
    lease_expired,
    new_lease,
    poison_key,
    shard_result_key,
)
from .engine import (
    DEFAULT_BACKOFF,
    QuarantinedTask,
    SweepTask,
    store_label,
    task_digest,
    worker_identity,
)
from .faults import NULL_INJECTOR, FaultPlan
from .queue import DEFAULT_QUEUE_RETRIES, fail_transition, recall_settled

__all__ = [
    "BrokerBackend",
    "BrokerClient",
    "BrokerError",
    "BrokerServer",
    "BrokerUnreachable",
    "DEFAULT_PORT",
    "parse_address",
    "main",
]

#: Default port for ``python -m repro.experiments.broker serve``.
DEFAULT_PORT = 7464

_SWEEP_ID = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def _encode(value: Any) -> str:
    """Pickle + base64: how tasks and results ride inside the JSON protocol."""
    return base64.b64encode(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)).decode(
        "ascii"
    )


def _decode(text: str) -> Any:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def parse_address(spec: str | Sequence[Any]) -> tuple[str, int]:
    """``"host:port"`` (or a 2-sequence) → ``(host, port)`` tuple."""
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        return str(spec[0]), int(spec[1])
    text = str(spec).strip()
    host, sep, port = text.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(
            f"broker address must be HOST:PORT (e.g. 127.0.0.1:{DEFAULT_PORT}), "
            f"got {spec!r}"
        )
    return host, int(port)


class BrokerError(RuntimeError):
    """The broker refused a request (protocol-level; retrying won't help)."""


class BrokerUnreachable(BrokerError):
    """No reply within the bounded reconnect-with-backoff budget."""


# ---------------------------------------------------------------------- server


class _SweepState:
    """One sweep's in-memory task state (mirrored 1:1 by its journal)."""

    def __init__(self) -> None:
        self.tasks: dict[str, dict[str, Any]] = {}
        self.leases: dict[str, dict[str, Any]] = {}
        self.settled: dict[str, dict[str, Any]] = {}
        self.retries = DEFAULT_QUEUE_RETRIES
        self.backoff = DEFAULT_BACKOFF
        self.shutdown = False
        self.journal: Any = None  # unbuffered append handle, opened lazily


class _BrokerRequestHandler(socketserver.StreamRequestHandler):
    """One persistent connection: read a JSON line, reply with a JSON line."""

    def handle(self) -> None:  # pragma: no cover - exercised via live sockets
        while True:
            try:
                line = self.rfile.readline()
            except OSError:
                return
            if not line:
                return  # client closed (or died: the kernel sends FIN for it)
            try:
                message = json.loads(line)
                if not isinstance(message, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as error:
                reply: dict[str, Any] = {"ok": False, "error": f"malformed request: {error}"}
            else:
                reply = self.server.handle_message(message)
            try:
                self.wfile.write(json.dumps(reply).encode() + b"\n")
                self.wfile.flush()
            except OSError:
                return


class BrokerServer(socketserver.ThreadingTCPServer):
    """The TCP task broker: per-sweep lease state + an append-only journal.

    One instance serves any number of sweeps concurrently (state is keyed by
    sweep id, exactly like the directory queue keys its per-sweep
    directories).  All mutation happens under one lock — requests are short
    and the journal append is a single unbuffered write, so the lock is
    never held across anything slow.  On construction every
    ``<journal_dir>/*.journal`` is replayed, restoring pending tasks,
    settled results, and live leases (with a fresh heartbeat grace window).

    ``fault_plan`` is consulted for :class:`~repro.experiments.faults.KillBroker`
    only: after journaling the N-th completion the process SIGKILLs itself
    *without replying* — the nastiest crash point, because the worker's ack
    is lost and must be re-sent to the restarted broker.
    """

    allow_reuse_address = True  # restarts rebind the same port immediately
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int] = ("127.0.0.1", 0),
        journal_dir: Path | str | None = None,
        fault_plan: FaultPlan | None = None,
        allow_stop: bool = True,
    ):
        self.journal_dir = (
            Path(journal_dir)
            if journal_dir is not None
            else Path(default_cache().root) / "broker"
        )
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        self.allow_stop = allow_stop
        self._lock = threading.Lock()
        self._sweeps: dict[str, _SweepState] = {}
        self._completions = 0  # journaled `done` entries, replayed included
        self._kill_after = fault_plan.broker_kill_after() if fault_plan else None
        super().__init__(tuple(address), _BrokerRequestHandler)
        self._replay_all()

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    # ----------------------------------------------------------- journaling

    def _journal_path(self, sweep_id: str) -> Path:
        return self.journal_dir / f"{sweep_id}.journal"

    def _journal(self, sweep_id: str, state: _SweepState, entry: dict[str, Any]) -> None:
        if state.journal is None:
            # buffering=0: each write() is one os.write, so a SIGKILL can
            # tear at most the final line — which replay skips
            state.journal = open(self._journal_path(sweep_id), "ab", buffering=0)
        state.journal.write(json.dumps(entry).encode() + b"\n")

    def _replay_all(self) -> None:
        for path in sorted(self.journal_dir.glob("*.journal")):
            sweep_id = path.stem
            if not _SWEEP_ID.match(sweep_id):
                continue
            state = _SweepState()
            replayed_done = 0
            try:
                with open(path, "rb") as handle:
                    for raw in handle:
                        try:
                            entry = json.loads(raw)
                        except ValueError:
                            continue  # torn tail from a mid-append SIGKILL
                        if isinstance(entry, dict):
                            replayed_done += self._apply(state, entry)
            except OSError:
                continue
            self._sweeps[sweep_id] = state
            # replayed completions count toward the kill threshold so a
            # restarted broker does not die again at the same trigger
            self._completions += replayed_done

    @staticmethod
    def _apply(state: _SweepState, entry: dict[str, Any]) -> int:
        """Apply one journal entry; returns 1 for a replayed completion."""
        kind = entry.get("entry")
        if kind == "sweep":
            state.retries = int(entry.get("retries", DEFAULT_QUEUE_RETRIES))
            state.backoff = float(entry.get("backoff", DEFAULT_BACKOFF))
            state.shutdown = False  # a (re)enqueueing coordinator reopens it
        elif kind == "task":
            record = entry.get("record")
            if isinstance(record, dict) and record.get("digest") not in state.settled:
                digest = record["digest"]
                state.tasks[digest] = record
                state.leases.pop(digest, None)  # a requeue implies release
        elif kind == "lease":
            digest = entry.get("digest")
            if digest in state.tasks:
                lease = new_lease(
                    entry.get("owner", "unknown"), float(entry.get("lease_seconds", 15.0))
                )
                # hard deadline stays absolute — a replay never extends it
                lease["hard_deadline"] = entry.get("hard_deadline")
                state.leases[digest] = lease
        elif kind == "done":
            digest = entry.get("digest")
            state.settled[digest] = {
                "status": "done",
                "result": entry.get("result"),
                "attempts": int(entry.get("attempts", 1)),
            }
            state.tasks.pop(digest, None)
            state.leases.pop(digest, None)
            return 1
        elif kind == "poison":
            digest = entry.get("digest")
            state.settled[digest] = {
                "status": "poison",
                "task": entry.get("task"),
                "attempts": int(entry.get("attempts", 0)),
                "errors": list(entry.get("errors", [])),
            }
            state.tasks.pop(digest, None)
            state.leases.pop(digest, None)
        elif kind == "shutdown":
            state.shutdown = True
        return 0

    # ------------------------------------------------------------- dispatch

    def handle_message(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        try:
            with self._lock:
                if op == "ping":
                    return {"ok": True, "sweeps": len(self._sweeps)}
                if op == "stop":
                    if not self.allow_stop:
                        return {"ok": False, "error": "stop is disabled on this broker"}
                    threading.Thread(target=self.shutdown, daemon=True).start()
                    return {"ok": True, "stopping": True}
                sweep_id = message.get("sweep")
                if not isinstance(sweep_id, str) or not _SWEEP_ID.match(sweep_id):
                    return {"ok": False, "error": f"invalid sweep id {sweep_id!r}"}
                handler = getattr(self, f"_op_{op}", None)
                if handler is None:
                    return {"ok": False, "error": f"unknown op {op!r}"}
                return handler(sweep_id, message)
        except Exception as error:  # never let one request kill the server
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}

    def _counts(self, state: _SweepState) -> dict[str, int]:
        return {
            "pending": len(state.tasks),
            "leased": len(state.leases),
            "settled": len(state.settled),
        }

    def _reap(self, sweep_id: str, state: _SweepState, now: float) -> None:
        """Steal expired leases: requeue (or quarantine) their tasks.

        Runs inside claim/collect handling — the coordinator polls collect
        continuously, so expiry is noticed within one poll interval without
        any background thread.
        """
        for digest in [d for d, lease in state.leases.items() if lease_expired(lease, now)]:
            lease = state.leases.pop(digest)
            record = state.tasks.get(digest)
            if record is None or digest in state.settled:
                continue  # the holder finished before dying; nothing to requeue
            owner = lease.get("owner", "unknown")
            self._fail_record(
                sweep_id,
                state,
                record,
                f"lease expired: worker {owner} died or hung past its deadline",
                now,
            )

    def _fail_record(
        self,
        sweep_id: str,
        state: _SweepState,
        record: dict[str, Any],
        error: str,
        now: float,
    ) -> str:
        outcome, payload = fail_transition(
            record, error, state.retries, state.backoff, now
        )
        digest = record["digest"]
        if outcome == "poison":
            entry = {
                "entry": "poison",
                "digest": digest,
                "task": payload.get("task"),
                "attempts": payload["attempts"],
                "errors": list(payload["errors"]),
            }
            self._journal(sweep_id, state, entry)
            state.settled[digest] = {
                "status": "poison",
                "task": payload.get("task"),
                "attempts": payload["attempts"],
                "errors": list(payload["errors"]),
            }
            state.tasks.pop(digest, None)
        else:
            self._journal(sweep_id, state, {"entry": "task", "record": payload})
            state.tasks[digest] = payload
        state.leases.pop(digest, None)
        return outcome

    # ------------------------------------------------------------ operations

    def _op_enqueue(self, sweep_id: str, message: dict[str, Any]) -> dict[str, Any]:
        state = self._sweeps.setdefault(sweep_id, _SweepState())
        state.retries = int(message.get("retries", state.retries))
        state.backoff = float(message.get("backoff", state.backoff))
        state.shutdown = False
        self._journal(
            sweep_id,
            state,
            {"entry": "sweep", "retries": state.retries, "backoff": state.backoff},
        )
        enqueued = known = 0
        for record in message.get("records", []):
            digest = record.get("digest")
            if not isinstance(digest, str) or not digest:
                return {"ok": False, "error": f"task record without digest: {record!r}"}
            if digest in state.settled or digest in state.tasks:
                known += 1
                continue
            state.tasks[digest] = record
            self._journal(sweep_id, state, {"entry": "task", "record": record})
            enqueued += 1
        return {"ok": True, "enqueued": enqueued, "known": known, **self._counts(state)}

    def _op_claim(self, sweep_id: str, message: dict[str, Any]) -> dict[str, Any]:
        state = self._sweeps.get(sweep_id)
        if state is None:
            return {"ok": True, "record": None, "shutdown": False, "pending": 0,
                    "leased": 0, "settled": 0}
        now = time.time()
        self._reap(sweep_id, state, now)
        base = {"ok": True, "shutdown": state.shutdown, **self._counts(state)}
        if state.shutdown:
            return {**base, "record": None}
        owner = str(message.get("owner", ""))
        # idempotent re-claim: a worker whose claim reply was lost re-sends
        # the claim after reconnecting and gets its own lease's record back
        for digest, lease in state.leases.items():
            if lease.get("owner") == owner and digest in state.tasks:
                return {**base, "record": self._public_record(state.tasks[digest])}
        lease_seconds = float(message.get("lease_seconds", 15.0))
        hard_timeout = message.get("hard_timeout")
        for digest in sorted(state.tasks):
            record = state.tasks[digest]
            if digest in state.leases or record.get("not_before", 0.0) > now:
                continue
            hard = now + float(hard_timeout) if hard_timeout is not None else None
            state.leases[digest] = new_lease(owner, lease_seconds, hard, now)
            self._journal(
                sweep_id,
                state,
                {
                    "entry": "lease",
                    "digest": digest,
                    "owner": owner,
                    "lease_seconds": lease_seconds,
                    "hard_deadline": hard,
                },
            )
            base = {"ok": True, "shutdown": False, **self._counts(state)}
            return {**base, "record": self._public_record(record)}
        return {**base, "record": None}

    @staticmethod
    def _public_record(record: dict[str, Any]) -> dict[str, Any]:
        return {
            "digest": record["digest"],
            "task": record.get("task"),
            "attempts": record.get("attempts", 0),
            "errors": list(record.get("errors", [])),
        }

    def _op_renew(self, sweep_id: str, message: dict[str, Any]) -> dict[str, Any]:
        state = self._sweeps.get(sweep_id)
        digest = message.get("digest")
        owner = message.get("owner")
        lease = state.leases.get(digest) if state is not None else None
        now = time.time()
        if lease is None or lease.get("owner") != owner or lease_expired(lease, now):
            return {"ok": True, "renewed": False}
        # renewals are deliberately not journaled: replay re-arms live leases
        # with a fresh grace window instead (see the module docstring)
        lease["heartbeat_deadline"] = now + float(message.get("lease_seconds", 15.0))
        return {"ok": True, "renewed": True}

    def _op_complete(self, sweep_id: str, message: dict[str, Any]) -> dict[str, Any]:
        state = self._sweeps.get(sweep_id)
        if state is None:
            # retired sweep (everything settled, coordinator gone): a late
            # or re-sent completion is acknowledged as already absorbed
            return {"ok": True, "settled": True, "duplicate": True}
        digest = message.get("digest")
        if digest in state.settled:
            return {"ok": True, "settled": True, "duplicate": True}
        attempts = int(message.get("attempts", 1))
        entry = {
            "entry": "done",
            "digest": digest,
            "result": message.get("result"),
            "attempts": attempts,
        }
        self._journal(sweep_id, state, entry)
        state.settled[digest] = {
            "status": "done",
            "result": message.get("result"),
            "attempts": attempts,
        }
        state.tasks.pop(digest, None)
        state.leases.pop(digest, None)
        self._completions += 1
        if self._kill_after is not None and self._completions == self._kill_after:
            # chaos: die after journaling, before replying — the worker's ack
            # is lost and must be re-sent to the replayed broker.  `==` (not
            # `>=`): after a restart replays exactly this many completions,
            # the counter passes the threshold without ever equalling it again
            os.kill(os.getpid(), signal.SIGKILL)
        return {"ok": True, "settled": True, "duplicate": False}

    def _op_fail(self, sweep_id: str, message: dict[str, Any]) -> dict[str, Any]:
        state = self._sweeps.get(sweep_id)
        digest = message.get("digest")
        if state is None or digest in (state.settled if state else {}):
            return {"ok": True, "state": "settled"}
        record = state.tasks.get(digest)
        if record is None:
            return {"ok": True, "state": "stale"}
        # idempotency key: the attempt count the worker saw at claim time.
        # A re-sent fail (dropped reply) or a fail racing a reaper's requeue
        # finds the count already advanced and is ignored
        if int(message.get("attempts", -1)) != int(record.get("attempts", 0)):
            return {"ok": True, "state": "stale"}
        outcome = self._fail_record(
            sweep_id, state, record, str(message.get("error", "unknown error")), time.time()
        )
        return {
            "ok": True,
            "state": "quarantined" if outcome == "poison" else "requeued",
        }

    def _op_collect(self, sweep_id: str, message: dict[str, Any]) -> dict[str, Any]:
        state = self._sweeps.get(sweep_id)
        if state is None:
            return {"ok": True, "settled": {}, "pending": 0, "leased": 0, "settled_count": 0}
        self._reap(sweep_id, state, time.time())
        wanted = message.get("digests", [])
        found = {
            digest: state.settled[digest]
            for digest in wanted
            if digest in state.settled
        }
        counts = self._counts(state)
        return {
            "ok": True,
            "settled": found,
            "pending": counts["pending"],
            "leased": counts["leased"],
            "settled_count": counts["settled"],
        }

    def _op_shutdown(self, sweep_id: str, message: dict[str, Any]) -> dict[str, Any]:
        state = self._sweeps.get(sweep_id)
        if state is not None and not state.shutdown:
            state.shutdown = True
            self._journal(sweep_id, state, {"entry": "shutdown"})
        return {"ok": True}

    def _op_retire(self, sweep_id: str, message: dict[str, Any]) -> dict[str, Any]:
        state = self._sweeps.pop(sweep_id, None)
        if state is not None and state.journal is not None:
            try:
                state.journal.close()
            except OSError:
                pass
        try:
            self._journal_path(sweep_id).unlink()
        except OSError:
            pass
        return {"ok": True}

    def server_close(self) -> None:
        with self._lock:
            for state in self._sweeps.values():
                if state.journal is not None:
                    try:
                        state.journal.close()
                    except OSError:
                        pass
                    state.journal = None
        super().server_close()


@dataclass
class _ServeConfig:
    """Picklable description of one broker server process."""

    host: str
    port: int
    journal_dir: str
    fault_plan: FaultPlan | None = None
    allow_stop: bool = True


def _broker_server_main(config: _ServeConfig, conn: Any = None) -> None:
    """Subprocess entry: bind, report the bound port, serve until stopped."""
    server = BrokerServer(
        (config.host, config.port),
        config.journal_dir,
        config.fault_plan,
        allow_stop=config.allow_stop,
    )
    if conn is not None:
        host, port = server.address
        conn.send(("ready", host, port))
        conn.close()
    with server:
        server.serve_forever(poll_interval=0.1)


# ---------------------------------------------------------------------- client


class BrokerClient:
    """One persistent NDJSON connection with bounded reconnect-with-backoff.

    ``call`` sends a request and blocks for its reply, transparently
    reconnecting on any socket failure: attempt ``n`` sleeps
    ``min(1s, backoff * 2**(n-1))`` first, so the total window is bounded
    (and sized to ride out a broker restart) but never infinite.  After
    ``attempts`` consecutive failures it raises :class:`BrokerUnreachable`;
    a protocol refusal (``ok: false``) raises :class:`BrokerError`
    immediately — retrying a refused request cannot help.

    ``injector`` hooks the wire-level chaos rules: ``partition_active()``
    fails calls without touching the socket, and (when ``wire_faults`` is
    set — worker main connections only) ``wire_drop(op)`` severs the
    connection after a send so the reply is lost and the idempotent re-send
    path gets exercised.
    """

    def __init__(
        self,
        address: tuple[str, int],
        timeout: float = 10.0,
        attempts: int = 40,
        backoff: float = 0.05,
        injector: Any = None,
        wire_faults: bool = False,
    ):
        self.address = (str(address[0]), int(address[1]))
        self.timeout = float(timeout)
        self.attempts = max(1, int(attempts))
        self.backoff = float(backoff)
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.wire_faults = wire_faults
        self._sock: socket.socket | None = None
        self._file: Any = None

    def _disconnect(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    close = _disconnect

    def call(self, message: dict[str, Any], attempts: int | None = None) -> dict[str, Any]:
        payload = (json.dumps(message) + "\n").encode()
        op = str(message.get("op", ""))
        budget = self.attempts if attempts is None else max(1, int(attempts))
        last: Exception | None = None
        for attempt in range(budget):
            if attempt:
                time.sleep(min(1.0, self.backoff * (2 ** (attempt - 1))))
            if self.injector.partition_active():
                last = BrokerUnreachable("partitioned from broker (fault plan)")
                self._disconnect()
                continue
            try:
                if self._sock is None:
                    self._sock = socket.create_connection(self.address, timeout=self.timeout)
                    self._sock.settimeout(self.timeout)
                    self._file = self._sock.makefile("rb")
                self._sock.sendall(payload)
                if self.wire_faults and self.injector.wire_drop(op):
                    self._disconnect()
                    last = ConnectionError("connection dropped by fault plan")
                    continue
                line = self._file.readline()
                if not line:
                    raise ConnectionError("broker closed the connection")
                reply = json.loads(line)
                if not isinstance(reply, dict):
                    raise ValueError(f"malformed broker reply: {reply!r}")
                if not reply.get("ok", False):
                    raise BrokerError(str(reply.get("error", "request refused")))
                return reply
            except BrokerUnreachable:
                raise
            except BrokerError:
                raise  # protocol refusal: not a transport failure
            except (OSError, ValueError) as error:
                last = error
                self._disconnect()
        self._disconnect()
        raise BrokerUnreachable(
            f"broker at {self.address[0]}:{self.address[1]} unreachable after "
            f"{budget} attempt(s): {last}"
        )

    def try_call(
        self, message: dict[str, Any], attempts: int | None = None
    ) -> dict[str, Any] | None:
        """``call`` that reports unreachability as ``None`` instead of raising."""
        try:
            return self.call(message, attempts=attempts)
        except BrokerUnreachable:
            return None


# ---------------------------------------------------------------------- worker


@dataclass
class _BrokerWorkerConfig:
    """Everything a broker worker process needs, in one picklable record."""

    address: tuple[str, int]
    sweep_id: str
    store: ArtifactCache
    label: str
    worker_name: str
    fn: Callable[[Any, SweepTask], Any]
    shared: Any
    lease_seconds: float
    heartbeat_seconds: float
    task_timeout: float | None
    poll_seconds: float
    worker_index: int
    fault_plan: FaultPlan | None = None
    connect_timeout: float = 10.0
    connect_attempts: int = 40
    connect_backoff: float = 0.05


class _WireHeartbeat(threading.Thread):
    """Daemon thread renewing one lease over the wire while the task runs.

    Mirrors the directory queue's heartbeat with one addition: if renewals
    have been *unreachable* (not merely refused) for longer than the lease
    horizon, the broker has certainly re-leased the task — ``lost`` is set
    and the worker abandons the completion ack (its store publish, if any,
    is absorbed idempotently).  A *refused* renewal means the lease was
    stolen while the broker is healthy: renewal stops, execution finishes,
    and the publish stays idempotent, exactly like the queue.
    """

    def __init__(
        self,
        client: BrokerClient,
        sweep_id: str,
        owner: str,
        digest: str,
        lease_seconds: float,
        interval: float,
    ):
        super().__init__(daemon=True, name="repro-broker-heartbeat")
        self.client = client
        self.message = {
            "op": "renew",
            "sweep": sweep_id,
            "owner": owner,
            "digest": digest,
            "lease_seconds": float(lease_seconds),
        }
        self.lease_seconds = float(lease_seconds)
        self.interval = max(0.01, float(interval))
        self.lost = threading.Event()
        self._stop_event = threading.Event()

    def run(self) -> None:
        abandon_at: float | None = None
        while not self._stop_event.wait(self.interval):
            reply = self.client.try_call(self.message, attempts=2)
            if reply is None:
                if abandon_at is None:
                    abandon_at = time.time() + self.lease_seconds
                elif time.time() > abandon_at:
                    self.lost.set()
                    return
            elif not reply.get("renewed", False):
                return  # stolen while broker healthy; publish stays idempotent
            else:
                abandon_at = None

    def stop(self) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=5.0)


class _BrokerWorker:
    """The claim/execute/publish loop one broker worker runs to exhaustion."""

    def __init__(self, config: _BrokerWorkerConfig):
        self.config = config
        self.owner = f"w{config.worker_index}:pid{os.getpid()}:{time.monotonic_ns():x}"
        self.completed = 0
        plan = config.fault_plan
        self.injector = (
            plan.for_worker(config.worker_index) if plan is not None else NULL_INJECTOR
        )
        self.client = BrokerClient(
            config.address,
            timeout=config.connect_timeout,
            attempts=config.connect_attempts,
            backoff=config.connect_backoff,
            injector=self.injector,
            wire_faults=True,
        )
        # separate connection for renewals (the main socket may be blocked
        # on a claim), short budget so each tick returns quickly — loss
        # tolerance lives in _WireHeartbeat, not in per-call retries
        self.heartbeat_client = BrokerClient(
            config.address,
            timeout=config.connect_timeout,
            attempts=2,
            backoff=config.connect_backoff,
            injector=self.injector,
        )

    def close(self) -> None:
        self.client.close()
        self.heartbeat_client.close()

    def step(self) -> str:
        """One claim attempt: 'worked', 'idle', 'drained', or 'shutdown'."""
        config = self.config
        reply = self.client.call(
            {
                "op": "claim",
                "sweep": config.sweep_id,
                "owner": self.owner,
                "lease_seconds": config.lease_seconds,
                "hard_timeout": config.task_timeout,
            }
        )
        if reply.get("shutdown"):
            return "shutdown"
        record = reply.get("record")
        if record is None:
            if reply.get("pending", 0) == 0 and reply.get("leased", 0) == 0:
                return "drained"
            return "idle"  # backoff windows or live leases: poll again
        self._execute(record)
        return "worked"

    def _execute(self, record: dict[str, Any]) -> None:
        config = self.config
        digest = record["digest"]
        found = recall_settled(config.store, config.label, config.worker_name, digest)
        if found is not None and found[0] == "result":
            # a previous holder published to this (shared) store but its ack
            # was lost: settle the broker from the store, skip re-execution
            self._complete(digest, found[1], record.get("attempts", 0) + 1)
            return
        # settled-check first, injection second (mirroring the queue worker):
        # a straggler delay injected here stalls a task that *will* execute,
        # which is what forces the steal + duplicate-absorption path
        self.injector.on_claim(self.completed)  # may SIGKILL / straggle / partition
        task = _decode(record["task"])
        heartbeat: _WireHeartbeat | None = None
        if self.injector.heartbeat_allowed(self.completed):
            heartbeat = _WireHeartbeat(
                self.heartbeat_client,
                config.sweep_id,
                self.owner,
                digest,
                config.lease_seconds,
                config.heartbeat_seconds,
            )
            heartbeat.start()
        try:
            try:
                self.injector.before_execute(task)  # may raise (poison rule)
                result = config.fn(config.shared, task)
            except Exception as error:
                self._fail(record, f"{type(error).__name__}: {error}")
                return
            published = config.store.put(
                SHARD_RESULT_KIND,
                shard_result_key(config.label, config.worker_name, digest),
                {"result": result, "attempts": record.get("attempts", 0) + 1},
            )
            if not published:
                self._fail(
                    record,
                    f"failed to publish result to the store at {config.store.root} "
                    "(unpicklable result or unwritable cache)",
                )
                return
        finally:
            if heartbeat is not None:
                heartbeat.stop()
        if heartbeat is not None and heartbeat.lost.is_set():
            # broker lost past the lease deadline: the task is certainly
            # re-leased — abandon the ack; the publish above is the durable
            # copy and any duplicate execution is absorbed idempotently
            self.completed += 1
            return
        delay = self.injector.ack_delay(self.completed)
        if delay > 0:
            time.sleep(delay)  # chaos: lease may expire in the publish→ack gap
        self._complete(digest, result, record.get("attempts", 0) + 1)
        self.completed += 1
        self.injector.on_publish(self.completed)  # may SIGKILL post-publish

    def _complete(self, digest: str, result: Any, attempts: int) -> None:
        try:
            self.client.call(
                {
                    "op": "complete",
                    "sweep": self.config.sweep_id,
                    "owner": self.owner,
                    "digest": digest,
                    "attempts": attempts,
                    "result": _encode(result),
                }
            )
        except BrokerUnreachable:
            pass  # abandoned: lease expiry requeues it; the store has the result

    def _fail(self, record: dict[str, Any], error: str) -> None:
        try:
            self.client.call(
                {
                    "op": "fail",
                    "sweep": self.config.sweep_id,
                    "owner": self.owner,
                    "digest": record["digest"],
                    "attempts": record.get("attempts", 0),
                    "error": error,
                }
            )
        except BrokerUnreachable:
            pass  # lease expiry will requeue it with this attempt uncounted

    def run(self) -> int:
        try:
            while True:
                try:
                    outcome = self.step()
                except BrokerUnreachable:
                    # exit abnormally so the coordinator respawns a fresh
                    # worker once it has restarted (or given up on) the broker
                    return 3
                if outcome in ("shutdown", "drained"):
                    return 0
                if outcome == "idle":
                    time.sleep(self.config.poll_seconds)
        finally:
            self.close()


def _broker_worker_main(config: _BrokerWorkerConfig) -> None:
    sys.exit(_BrokerWorker(config).run())


# ----------------------------------------------------------------- coordinator


class _EmbeddedBroker:
    """A broker subprocess the coordinator owns, restartable on a pinned port."""

    def __init__(self, journal_dir: Path, fault_plan: FaultPlan | None, context: Any):
        self.journal_dir = journal_dir
        self.fault_plan = fault_plan
        self.context = context
        self.host = "127.0.0.1"
        self.port = 0  # first start picks a free port; restarts reuse it
        self.process: Any = None

    def start(self) -> tuple[str, int]:
        parent, child = self.context.Pipe()
        self.process = self.context.Process(
            target=_broker_server_main,
            args=(
                _ServeConfig(
                    self.host, self.port, str(self.journal_dir), self.fault_plan
                ),
                child,
            ),
            daemon=True,
        )
        self.process.start()
        child.close()
        try:
            if not parent.poll(15.0):
                raise RuntimeError("embedded broker did not report ready within 15s")
            _tag, host, port = parent.recv()
        finally:
            parent.close()
        self.host, self.port = host, port
        return host, port

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def stop(self) -> None:
        if self.process is None:
            return
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=1.0)


@dataclass
class BrokerBackend:
    """Socket-distributed elastic sweep backend (leases, retries, quarantine).

    Satisfies the ``SweepBackend`` protocol with the directory queue's exact
    semantics — results publish through the artifact ``store`` under
    ``sweep_label`` so resubmission recomputes nothing — but coordination
    rides a TCP broker, so workers need no shared filesystem.

    Two modes:

    * **embedded** (``address=None``, the default and what ``--backend
      broker`` resolves to): the coordinator spawns its own broker
      subprocess on a free localhost port, supervises it, restarts it on
      the same port if it dies (up to ``max_broker_restarts``; the journal
      under ``<store.root>/broker`` makes the restart lossless), and stops
      it at the end.
    * **attached** (``address="host:port"``, what ``--broker`` sets): the
      broker is external (``python -m repro.experiments.broker serve``) and
      its lifecycle belongs to whoever started it.  A coordinator that can
      never reach it falls back to draining the sweep inline (serially,
      with full retry/quarantine semantics) instead of hanging.

    After each submission :attr:`last_stats` reports the queue backend's
    counters plus ``broker_restarts``; :attr:`quarantined` lists the
    :class:`QuarantinedTask` sentinels yielded in place of results.
    """

    address: str | tuple[str, int] | None = None
    journal_dir: Path | str | None = None
    store: ArtifactCache | None = None
    sweep_label: str = ""
    retries: int | None = None
    task_timeout: float | None = None
    backoff: float | None = None
    lease_seconds: float = 15.0
    heartbeat_seconds: float | None = None
    poll_seconds: float = 0.05
    respawn: bool = True
    max_respawns: int | None = None
    max_broker_restarts: int = 3
    connect_timeout: float = 10.0
    connect_attempts: int = 40
    connect_backoff: float = 0.05
    mp_context: str | None = None
    fault_plan: FaultPlan | None = None

    quarantined: list[QuarantinedTask] = field(default_factory=list, init=False)
    last_stats: dict[str, int] = field(default_factory=dict, init=False)

    name = "broker"
    #: never downgraded to the in-process serial path at 1 worker
    queue_semantics = True
    #: retries are handled natively (broker-side requeue/quarantine)
    handles_retries = True

    def configure_from_runner(self, runner: Any) -> None:
        """Adopt runner-level configuration for fields not set explicitly."""
        if self.store is None:
            self.store = runner.shard_store
        if not self.sweep_label and runner.sweep_label:
            self.sweep_label = runner.sweep_label
        if self.retries is None:
            self.retries = runner.retries
        if self.task_timeout is None:
            self.task_timeout = runner.task_timeout
        if self.backoff is None:
            self.backoff = runner.backoff
        if self.mp_context is None:
            self.mp_context = runner.mp_context

    def submit(
        self,
        fn: Callable[[Any, SweepTask], Any],
        shared: Any,
        tasks: Sequence[SweepTask],
        workers: int,
        chunksize: int,
    ) -> Iterator[tuple[int, Any]]:
        # chunksize is a pool-dispatch optimization; the broker hands out one
        # task per claim so stealing stays task-granular
        store = self.store if self.store is not None else default_cache()
        if not store.enabled:
            raise ValueError(
                "the broker backend publishes results through the artifact cache; "
                "the store must be enabled (unset $REPRO_CACHE_DISABLE or pass "
                "an enabled cache)"
            )
        label = store_label(self.sweep_label, shared)
        worker_name = worker_identity(fn)
        # same namespace axes as the store keys: sweeps share broker state
        # exactly when they would share published results
        sweep_id = cache_digest({"label": label, "worker": worker_name})[:24]
        config = _BrokerWorkerConfig(
            address=("127.0.0.1", 0),  # pinned once the broker is resolved
            sweep_id=sweep_id,
            store=store,
            label=label,
            worker_name=worker_name,
            fn=fn,
            shared=shared,
            lease_seconds=float(self.lease_seconds),
            heartbeat_seconds=(
                float(self.heartbeat_seconds)
                if self.heartbeat_seconds is not None
                else max(float(self.lease_seconds) / 4.0, 0.01)
            ),
            task_timeout=self.task_timeout,
            poll_seconds=float(self.poll_seconds),
            worker_index=0,
            fault_plan=(
                self.fault_plan if self.fault_plan is not None else FaultPlan.from_env()
            ),
            connect_timeout=float(self.connect_timeout),
            connect_attempts=int(self.connect_attempts),
            connect_backoff=float(self.connect_backoff),
        )
        return self._coordinate(config, list(tasks), max(1, int(workers)))

    def _coordinate(
        self, config: _BrokerWorkerConfig, tasks: list[SweepTask], workers: int
    ) -> Iterator[tuple[int, Any]]:
        self.quarantined = []
        stats = {
            "tasks": len(tasks),
            "recalled": 0,
            "enqueued": 0,
            "quarantined": 0,
            "worker_deaths": 0,
            "respawns": 0,
            "inline_drained": 0,
            "broker_restarts": 0,
        }
        self.last_stats = stats
        store = config.store
        retries = int(self.retries) if self.retries is not None else DEFAULT_QUEUE_RETRIES
        backoff = float(self.backoff) if self.backoff is not None else DEFAULT_BACKOFF
        digests = [task_digest(task) for task in tasks]
        positions: dict[str, list[int]] = {}
        for position, digest in enumerate(digests):
            positions.setdefault(digest, []).append(position)
        tasks_by_digest = {
            digest: tasks[slots[0]] for digest, slots in positions.items()
        }

        def consume(digest: str, kind: str, value: Any) -> list[tuple[int, Any]]:
            if kind == "poison":
                stats["quarantined"] += 1
                self.quarantined.append(value)
            return [(position, value) for position in positions.pop(digest)]

        # phase 1 — recall: everything a previous run already settled costs
        # zero recomputation (the acceptance criterion of a resume)
        ready: list[tuple[int, Any]] = []
        for digest in list(positions):
            found = recall_settled(store, config.label, config.worker_name, digest)
            if found is None:
                continue
            kind, value = found
            if kind == "result":
                stats["recalled"] += 1
            ready.extend(consume(digest, kind, value))
        yield from ready
        if not positions:
            return

        stats["enqueued"] = len(positions)
        method = self.mp_context or ("fork" if sys.platform == "linux" else "spawn")
        context = multiprocessing.get_context(method)
        broker: _EmbeddedBroker | None = None
        client: BrokerClient | None = None
        processes: list[Any] = []
        inline: _BrokerWorker | None = None
        try:
            # phase 2 — resolve the broker (spawn embedded, or probe attached)
            if self.address is None:
                journal_dir = (
                    Path(self.journal_dir)
                    if self.journal_dir is not None
                    else Path(store.root) / "broker"
                )
                broker = _EmbeddedBroker(journal_dir, config.fault_plan, context)
                try:
                    address = broker.start()
                except (OSError, RuntimeError, EOFError):
                    yield from self._drain_inline(
                        config, tasks_by_digest, positions, stats, consume,
                        retries, backoff,
                    )
                    return
            else:
                address = parse_address(self.address)
            config = replace(config, address=address)
            client = BrokerClient(
                address,
                timeout=float(self.connect_timeout),
                attempts=int(self.connect_attempts),
                backoff=float(self.connect_backoff),
            )
            if client.try_call({"op": "ping"}) is None:
                # graceful degradation: a coordinator that can never reach
                # its broker finishes the sweep itself instead of hanging
                yield from self._drain_inline(
                    config, tasks_by_digest, positions, stats, consume,
                    retries, backoff,
                )
                return

            # phase 3 — enqueue only the unsettled remainder
            records = [
                {
                    "digest": digest,
                    "task": _encode(tasks_by_digest[digest]),
                    "attempts": 0,
                    "not_before": 0.0,
                    "errors": [],
                }
                for digest in sorted(positions)
            ]
            client.call(
                {
                    "op": "enqueue",
                    "sweep": config.sweep_id,
                    "retries": retries,
                    "backoff": backoff,
                    "records": records,
                }
            )

            # phase 4 — spawn the fleet and stream results out of the broker
            next_index = 0
            spawn_budget = workers + (
                int(self.max_respawns)
                if self.max_respawns is not None
                else 4 * workers + 4
            )

            def spawn() -> None:
                nonlocal next_index
                process = context.Process(
                    target=_broker_worker_main,
                    args=(replace(config, worker_index=next_index),),
                    daemon=True,
                )
                process.start()
                processes.append(process)
                next_index += 1

            for _ in range(min(workers, len(positions))):
                spawn()

            unreachable_rounds = 0
            while positions:
                progressed = False
                reply = client.try_call(
                    {
                        "op": "collect",
                        "sweep": config.sweep_id,
                        "digests": sorted(positions),
                    }
                )
                if reply is not None:
                    unreachable_rounds = 0
                    settled = reply.get("settled", {})
                    for digest, payload in settled.items():
                        if digest not in positions:
                            continue
                        progressed = True
                        for item in self._absorb(config, digest, payload, consume):
                            yield item
                    if (
                        positions
                        and not settled
                        and reply.get("pending", 0) == 0
                        and reply.get("leased", 0) == 0
                    ):
                        # the broker has no trace of our remaining tasks (a
                        # restart with a wiped journal): re-enqueue them —
                        # idempotent against anything it does still know
                        client.try_call(
                            {
                                "op": "enqueue",
                                "sweep": config.sweep_id,
                                "retries": retries,
                                "backoff": backoff,
                                "records": [
                                    record
                                    for record in records
                                    if record["digest"] in positions
                                ],
                            }
                        )
                else:
                    unreachable_rounds += 1
                # the store also settles tasks: local workers publish there
                # before acking, so a lost ack never loses a result
                for digest in list(positions):
                    found = recall_settled(
                        store, config.label, config.worker_name, digest
                    )
                    if found is None:
                        continue
                    progressed = True
                    for item in consume(digest, *found):
                        yield item
                if not positions:
                    break
                # fleet liveness: absorb deaths, respawn within budget
                alive = []
                died = 0
                for process in processes:
                    if process.is_alive():
                        alive.append(process)
                    elif process.exitcode not in (0, None):
                        died += 1
                processes[:] = alive
                stats["worker_deaths"] += died
                if self.respawn:
                    for _ in range(died):
                        if next_index >= spawn_budget:
                            break
                        spawn()
                        stats["respawns"] += 1
                # broker liveness: restart the embedded broker on its pinned
                # port (journal replay makes the restart lossless); an
                # attached broker is someone else's to restart — after two
                # full unreachable windows, drain inline rather than hang
                if broker is not None and not broker.alive():
                    if stats["broker_restarts"] < int(self.max_broker_restarts):
                        stats["broker_restarts"] += 1
                        try:
                            broker.start()
                            progressed = True
                        except (OSError, RuntimeError, EOFError):
                            yield from self._drain_inline(
                                config, tasks_by_digest, positions, stats,
                                consume, retries, backoff,
                            )
                            return
                    else:
                        yield from self._drain_inline(
                            config, tasks_by_digest, positions, stats, consume,
                            retries, backoff,
                        )
                        return
                elif broker is None and unreachable_rounds >= 2:
                    yield from self._drain_inline(
                        config, tasks_by_digest, positions, stats, consume,
                        retries, backoff,
                    )
                    return
                # fleet gone (drained early, dead, or respawn exhausted) with
                # work left: the coordinator claims through the broker itself
                # so leases/journal stay authoritative — a sweep must
                # terminate even with zero surviving workers
                if not processes and positions:
                    if inline is None:
                        inline = _BrokerWorker(
                            replace(config, worker_index=-1, fault_plan=None)
                        )
                    try:
                        if inline.step() == "worked":
                            stats["inline_drained"] += 1
                            progressed = True
                    except BrokerUnreachable:
                        pass  # broker liveness handling owns this next round
                if not progressed:
                    time.sleep(config.poll_seconds)
        finally:
            if client is not None:
                client.try_call(
                    {"op": "shutdown", "sweep": config.sweep_id}, attempts=2
                )
            deadline = time.time() + 10.0
            for process in processes:
                process.join(timeout=max(0.1, deadline - time.time()))
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
            if inline is not None:
                inline.close()
            if client is not None:
                if not positions:
                    # sweep fully settled: retire the broker-side state (all
                    # state worth keeping lives in the store); an abandoned
                    # sweep keeps its journal so a resume picks it back up
                    client.try_call(
                        {"op": "retire", "sweep": config.sweep_id}, attempts=2
                    )
                client.close()
            if broker is not None:
                broker.stop()

    def _absorb(
        self,
        config: _BrokerWorkerConfig,
        digest: str,
        payload: dict[str, Any],
        consume: Callable[[str, str, Any], list[tuple[int, Any]]],
    ) -> list[tuple[int, Any]]:
        """Write one broker-settled payload into the store and yield its slots."""
        store = config.store
        if payload.get("status") == "done":
            value = _decode(payload["result"])
            store.put(
                SHARD_RESULT_KIND,
                shard_result_key(config.label, config.worker_name, digest),
                {"result": value, "attempts": int(payload.get("attempts", 1))},
            )
            return consume(digest, "result", value)
        task = _decode(payload["task"]) if payload.get("task") else None
        sentinel = QuarantinedTask(
            task=task,
            digest=digest,
            attempts=int(payload.get("attempts", 0)),
            errors=tuple(payload.get("errors", ())),
        )
        store.put(
            POISON_KIND,
            poison_key(config.label, config.worker_name, digest),
            {
                "task": task,
                "digest": digest,
                "attempts": sentinel.attempts,
                "errors": sentinel.errors,
            },
        )
        return consume(digest, "poison", sentinel)

    def _drain_inline(
        self,
        config: _BrokerWorkerConfig,
        tasks_by_digest: dict[str, SweepTask],
        positions: dict[str, list[int]],
        stats: dict[str, int],
        consume: Callable[[str, str, Any], list[tuple[int, Any]]],
        retries: int,
        backoff: float,
    ) -> Iterator[tuple[int, Any]]:
        """No-broker fallback: finish the sweep serially, full retry semantics.

        Used when the broker can never be reached (attached mode) or its
        restart budget is spent (embedded mode).  Each remaining task is
        executed in-process with the same :func:`fail_transition` requeue/
        quarantine policy, honouring the backoff windows, so even total
        broker loss degrades to a slower — never a different — sweep.
        """
        store = config.store
        for digest in sorted(positions, key=lambda d: positions[d][0]):
            record: dict[str, Any] = {
                "digest": digest,
                "task": tasks_by_digest[digest],
                "attempts": 0,
                "errors": [],
            }
            while True:
                found = recall_settled(store, config.label, config.worker_name, digest)
                if found is not None:
                    for item in consume(digest, *found):
                        yield item
                    break
                try:
                    result = config.fn(config.shared, record["task"])
                except Exception as error:
                    outcome, payload = fail_transition(
                        record, f"{type(error).__name__}: {error}", retries, backoff
                    )
                    if outcome == "poison":
                        store.put(
                            POISON_KIND,
                            poison_key(config.label, config.worker_name, digest),
                            payload,
                        )
                        sentinel = QuarantinedTask(
                            task=payload.get("task"),
                            digest=digest,
                            attempts=payload["attempts"],
                            errors=tuple(payload["errors"]),
                        )
                        for item in consume(digest, "poison", sentinel):
                            yield item
                        break
                    record = payload
                    time.sleep(max(0.0, record["not_before"] - time.time()))
                    continue
                store.put(
                    SHARD_RESULT_KIND,
                    shard_result_key(config.label, config.worker_name, digest),
                    {"result": result, "attempts": record["attempts"] + 1},
                )
                stats["inline_drained"] += 1
                for item in consume(digest, "result", result):
                    yield item
                break


# -------------------------------------------------------------------- CLI


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.broker`` — run and manage a task broker."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.broker",
        description="Run and manage the socket sweep broker.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    serve_parser = commands.add_parser(
        "serve", help="run a broker (foreground; --supervise restarts it on death)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"bind port (0 picks a free one; default {DEFAULT_PORT})",
    )
    serve_parser.add_argument(
        "--journal-dir",
        default=None,
        help="journal directory (default: <cache root>/broker)",
    )
    serve_parser.add_argument(
        "--supervise",
        action="store_true",
        help="run the broker as a child process and restart it if it dies "
        "abnormally (journal replay makes the restart lossless)",
    )
    serve_parser.add_argument(
        "--max-restarts",
        type=int,
        default=2,
        metavar="N",
        help="restart budget under --supervise (default 2)",
    )
    for name in ("ping", "stop"):
        sub = commands.add_parser(
            name,
            help=(
                "probe a broker's liveness" if name == "ping" else "stop a broker"
            ),
        )
        sub.add_argument(
            "--broker",
            required=True,
            metavar="HOST:PORT",
            help="address of the broker to contact",
        )
    args = parser.parse_args(argv)

    if args.command in ("ping", "stop"):
        try:
            address = parse_address(args.broker)
        except ValueError as error:
            parser.error(str(error))
        client = BrokerClient(address, timeout=5.0, attempts=3, backoff=0.1)
        try:
            reply = client.call({"op": args.command})
        except BrokerError as error:
            print(f"broker at {args.broker}: {error}", file=sys.stderr)
            return 1
        finally:
            client.close()
        print(json.dumps({"broker": args.broker, **reply}))
        return 0

    plan = FaultPlan.from_env()
    journal_dir = (
        Path(args.journal_dir)
        if args.journal_dir is not None
        else Path(default_cache().root) / "broker"
    )
    if not args.supervise:
        server = BrokerServer((args.host, args.port), journal_dir, plan)
        host, port = server.address
        print(f"broker listening on {host}:{port} (journal: {journal_dir})", flush=True)
        with server:
            try:
                server.serve_forever(poll_interval=0.2)
            except KeyboardInterrupt:
                pass
        return 0

    context = multiprocessing.get_context(
        "fork" if sys.platform == "linux" else "spawn"
    )
    restarts = 0
    host, port = args.host, int(args.port)
    while True:
        parent, child = context.Pipe()
        process = context.Process(
            target=_broker_server_main,
            args=(_ServeConfig(host, port, str(journal_dir), plan), child),
        )
        process.start()
        child.close()
        try:
            if parent.poll(15.0):
                _tag, host, port = parent.recv()
                print(
                    f"broker listening on {host}:{port} (journal: {journal_dir})",
                    flush=True,
                )
        finally:
            parent.close()
        process.join()
        if process.exitcode == 0:
            return 0
        if restarts >= int(args.max_restarts):
            print(
                f"broker died (exit {process.exitcode}) with the restart budget spent",
                file=sys.stderr,
            )
            return 1
        restarts += 1
        print(
            f"broker died (exit {process.exitcode}); restarting on {host}:{port} "
            f"({restarts}/{args.max_restarts})",
            flush=True,
        )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    from repro.experiments.common import dispatch_canonical_main

    raise SystemExit(dispatch_canonical_main(__spec__))
