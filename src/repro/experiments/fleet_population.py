"""Fleet population — die Vmin/yield, canary margins, and mixed-point serving.

The paper characterizes one fabricated die; shipping MATIC means shipping a
*population* of dies that all run the same deployed model at aggressive SRAM
voltages.  This driver samples ``--dies`` independent die instances through
:class:`~repro.population.fleet.ChipPopulation` (per-die
``SeedSequence.spawn`` children, optional correlated-variation scenario),
characterizes each one (die Vmin at the target fault rate, profiled fault
rate, margin-placed canary headroom), and serves a seeded synthetic stream
of ``--requests`` inference batches routed across the fleet at mixed
operating voltages.  It reports, per die and fleet-wide:

* the **die-Vmin distribution** and the **yield** at the target voltage,
* **per-die canary margins** (headroom of the most marginal oracle canary),
* **application-error percentiles per operating point** over the request
  stream (p50/p90/p99/max — the serving-quality view of voltage scaling),
* **fleet throughput** (requests per second at the nominal frequency, with
  the busiest die as makespan — dies serve concurrently).

Per-die marginal cost stays small by reusing the existing memoization
layers: fault maps recall through the flow's artifact-cache profiling path,
and each die's batch leans on :meth:`~repro.accelerator.npu.Npu.run_sweep`
grouping plus exact-duplicate-voltage aliasing, so a stream with many
requests at one operating point decodes each corrupted image once.

A die is one engine task, so the fleet shards by die index: all backends,
``--shard i/n``, ``--stream``; the sharded merge is bit-identical to an
unsharded run (``benchmarks/bench_population.py`` proves it, along with
warm-cache re-runs recomputing zero per-die profiles).  See
``docs/population.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..matic.flow import MaticFlow
from ..population.fleet import (
    ChipPopulation,
    DieReport,
    FleetSummary,
    simulate_die,
    summarize_fleet,
)
from ..sram.variation import CorrelationSpec, VariationScenario
from .cache import ArtifactCache, default_cache
from .common import (
    ExperimentResult,
    PreparedBenchmark,
    default_flow,
    experiment_parser,
    fmt,
    fmt_percent,
    partition_quarantined,
    prepare_benchmark,
    quarantine_notes,
    run_experiment_cli,
)
from .engine import SweepRunner, SweepTask, expand_grid

__all__ = [
    "FleetPopulationResult",
    "run_fleet_population",
    "DEFAULT_OPERATING_VOLTAGES",
    "main",
]

#: Default serving mix: the nominal rail, the energy-optimal MATIC point,
#: and the accuracy-floor point (the paper's 0.9 / 0.55 / 0.50 V ladder).
DEFAULT_OPERATING_VOLTAGES = (0.90, 0.55, 0.50)


@dataclass
class FleetPopulationResult:
    reports: list[DieReport] = field(default_factory=list)
    summary: FleetSummary | None = None
    target_voltage: float = 0.50
    voltages: tuple[float, ...] = DEFAULT_OPERATING_VOLTAGES
    num_requests: int = 0
    scenario_digest: str | None = None
    quarantined: list[str] = field(default_factory=list)

    def report_for(self, die: int) -> DieReport:
        for report in self.reports:
            if report.die == die:
                return report
        raise KeyError(f"no report for die {die}")

    def to_experiment_result(self) -> ExperimentResult:
        rows = []
        for report in self.reports:
            samples = report.error_samples()
            rows.append(
                [
                    str(report.die),
                    fmt(report.vmin),
                    fmt_percent(report.fault_rate, 2),
                    fmt(report.canary_margin),
                    str(report.requests_served),
                    fmt(float(np.quantile(samples, 0.50))) if samples else "-",
                    fmt(float(np.max(samples))) if samples else "-",
                    fmt(report.busy_seconds * 1e3, 2),
                ]
            )
        notes = (
            "Each die is an independent SeedSequence.spawn sample serving its "
            "slice of one seeded request stream at mixed operating voltages; "
            "errors are per-request application error.  See docs/population.md."
        )
        if self.summary is not None:
            s = self.summary
            rows.append(
                [
                    "fleet",
                    fmt(s.vmin_mean) + " ± " + fmt(s.vmin_std),
                    "-",
                    fmt(s.canary_margin_min),
                    str(s.total_requests),
                    "-",
                    "-",
                    fmt(s.makespan_seconds * 1e3, 2),
                ]
            )
            per_point = "; ".join(
                f"{voltage:.2f} V: p50={p['p50']:.4g} p99={p['p99']:.4g}"
                for voltage, p in s.error_percentiles.items()
            )
            notes = (
                f"Yield at {s.target_voltage:.2f} V: {s.yield_fraction:.0%} of "
                f"{s.num_dies} dies; throughput "
                f"{s.throughput_requests_per_second:.1f} req/s "
                f"(makespan {s.makespan_seconds * 1e3:.2f} ms).  "
                f"Error percentiles per operating point — {per_point}.  " + notes
            )
        return ExperimentResult(
            experiment=(
                f"Fleet population — {len(self.reports)} dies, "
                f"{self.num_requests} requests at mixed operating points "
                f"(Vmin/yield target {self.target_voltage:.2f} V)"
            ),
            headers=[
                "die",
                "Vmin (V)",
                "fault rate",
                "canary margin (V)",
                "requests",
                "err p50",
                "err max",
                "busy (ms)",
            ],
            rows=rows,
            paper_reference={
                "fleet evaluation": "the paper measures one fabricated die; "
                "population-level Vmin/yield and fleet serving are this "
                "repo's extension (ROADMAP)",
            },
            notes=notes,
            quarantined=list(self.quarantined),
        )


def _fleet_die_worker(shared: dict, task: SweepTask) -> DieReport:
    """Characterize one die and serve its slice of the request stream."""
    population: ChipPopulation = shared["population"]
    prepared: PreparedBenchmark = shared["prepared"]
    flow: MaticFlow = shared["flow"]
    return simulate_die(
        population,
        int(task.param("die")),
        flow,
        topology=prepared.spec.topology,
        train=prepared.train,
        loss=prepared.spec.loss,
        baseline=prepared.baseline,
        test_inputs=prepared.test.inputs,
        error_fn=lambda outputs: float(prepared.spec.error(outputs, prepared.test)),
        requests=shared["requests"],
        target_voltage=float(shared["target_voltage"]),
        target_fault_rate=float(shared["target_fault_rate"]),
        canaries_per_bank=int(shared["canaries_per_bank"]),
    )


def run_fleet_population(
    benchmark: str = "inversek2j",
    dies: int = 8,
    num_requests: int = 48,
    voltages: tuple[float, ...] = DEFAULT_OPERATING_VOLTAGES,
    target_voltage: float = 0.50,
    target_fault_rate: float = 0.01,
    canaries_per_bank: int = 8,
    num_pes: int = 8,
    words_per_bank: int = 512,
    shape: str = "iid",
    strength: float = 0.0,
    num_samples: int | None = None,
    seed: int = 1,
    chip_seed: int = 11,
    flow: MaticFlow | None = None,
    runner: SweepRunner | None = None,
    cache: ArtifactCache | None = None,
) -> FleetPopulationResult:
    """Simulate the chip population and serve the synthetic request stream.

    ``shape``/``strength`` select an optional correlated-variation scenario
    for the whole population (``"iid"`` keeps the legacy i.i.d. sampling).
    The request stream is generated once, up front, from the population's
    own seed tree — every shard of a ``--shard i/n`` fleet run sees the
    identical stream and each die worker serves exactly its slice.
    """
    cache = cache if cache is not None else default_cache()
    flow = flow or default_flow(seed=seed, cache=cache)
    runner = runner or SweepRunner()
    prepared = prepare_benchmark(
        benchmark, num_samples=num_samples, seed=seed, cache=cache
    )

    scenario = None
    if shape != "iid":
        scenario = VariationScenario(
            name=f"fleet-{shape}-{strength:.2f}-tt",
            correlation=CorrelationSpec.from_shape(shape, strength),
        )
    population = ChipPopulation(
        num_dies=int(dies),
        num_pes=int(num_pes),
        words_per_bank=int(words_per_bank),
        entropy=int(chip_seed),
        scenario=scenario,
    )
    requests = population.request_stream(
        int(num_requests), tuple(float(v) for v in voltages), seed=seed
    )

    grid = [{"benchmark": benchmark, "die": die} for die in range(int(dies))]
    tasks = expand_grid(params=grid, seed=seed)
    shared = {
        "population": population,
        "prepared": prepared,
        "flow": flow,
        "requests": requests,
        "target_voltage": float(target_voltage),
        "target_fault_rate": float(target_fault_rate),
        "canaries_per_bank": int(canaries_per_bank),
    }
    reports, quarantined = partition_quarantined(
        runner.map(_fleet_die_worker, tasks, shared=shared)
    )
    reports = sorted(reports, key=lambda report: report.die)
    return FleetPopulationResult(
        reports=reports,
        summary=summarize_fleet(reports, target_voltage) if reports else None,
        target_voltage=float(target_voltage),
        voltages=tuple(float(v) for v in voltages),
        num_requests=int(num_requests),
        scenario_digest=scenario.digest() if scenario is not None else None,
        quarantined=quarantine_notes(quarantined),
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.fleet_population`` — fleet simulator."""
    parser = experiment_parser(
        "python -m repro.experiments.fleet_population",
        "Fleet population — die Vmin/yield, canary margins, and error "
        "percentiles serving a mixed-operating-point request stream.",
    )
    parser.add_argument("--benchmark", default="inversek2j")
    parser.add_argument("--dies", type=int, default=8)
    parser.add_argument("--requests", type=int, default=48)
    parser.add_argument(
        "--voltages",
        type=float,
        nargs="+",
        default=list(DEFAULT_OPERATING_VOLTAGES),
        help="operating-voltage mix the request stream draws from",
    )
    parser.add_argument("--target-voltage", type=float, default=0.50)
    parser.add_argument("--target-fault-rate", type=float, default=0.01)
    parser.add_argument("--canaries-per-bank", type=int, default=8)
    parser.add_argument("--num-pes", type=int, default=8)
    parser.add_argument("--words-per-bank", type=int, default=512)
    parser.add_argument(
        "--shape",
        default="iid",
        choices=("iid", "row", "column", "region", "mixed"),
        help="correlated-variation scenario for the whole population",
    )
    parser.add_argument("--strength", type=float, default=0.0)
    parser.add_argument("--num-samples", type=int, default=None)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--chip-seed", type=int, default=11)
    args = parser.parse_args(argv)
    return run_experiment_cli(
        args,
        "fleet_population",
        lambda runner, cache: run_fleet_population(
            benchmark=args.benchmark,
            dies=args.dies,
            num_requests=args.requests,
            voltages=tuple(args.voltages),
            target_voltage=args.target_voltage,
            target_fault_rate=args.target_fault_rate,
            canaries_per_bank=args.canaries_per_bank,
            num_pes=args.num_pes,
            words_per_bank=args.words_per_bank,
            shape=args.shape,
            strength=args.strength,
            num_samples=args.num_samples,
            seed=args.seed,
            chip_seed=args.chip_seed,
            runner=runner,
            cache=cache,
        ),
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    from repro.experiments.common import dispatch_canonical_main

    raise SystemExit(dispatch_canonical_main(__spec__))
