"""Fault-tolerant elastic sweep backend: a shared-directory task queue.

``QueueBackend`` is the fourth :class:`~repro.experiments.engine.SweepBackend`
and the one built for the ROADMAP's long-running-service north star: a sweep
that keeps its promises when workers are SIGKILLed, OOMed, hung, or simply
added and removed mid-flight.  There is no broker — the queue is a directory
(by default under the artifact-cache root), so anything that can share a
filesystem can share a sweep, and all coordination rides the same atomic
rename/link/replace guarantees the cache already depends on.

Queue layout
------------
One sweep occupies ``<queue_dir>/<sweep_id>/`` where ``sweep_id`` hashes the
store namespace (sweep label + worker function), so concurrent sweeps over
overlapping grids share task state exactly when they would share results::

    <queue_dir>/<sweep_id>/
        tasks/<task_digest>.pkl     queued task record:
                                    {task, digest, attempts, not_before, errors}
        leases/<task_digest>.lease  JSON: {owner, acquired,
                                    heartbeat_deadline, hard_deadline}
        shutdown                    sentinel: coordinator told workers to exit

Completed results never live in the queue directory: they publish through
the existing ``shard_result_key`` artifact-cache path (kind ``sweep-shard``),
and quarantined tasks through ``poison_key`` (kind ``sweep-poison``).  The
queue directory holds only *pending* state, which is why a coordinator
restart resumes with zero recomputation — everything done is in the store.

Claim protocol
--------------
A worker scans ``tasks/`` (rotated by worker index so a fleet doesn't
contend on one head), skips records whose ``not_before`` backoff is in the
future, and claims a task by atomically creating its lease file.  While the
task executes, a daemon thread renews the lease's heartbeat deadline every
``lease_seconds/4``; the hard deadline (``task_timeout``) is never renewed.
On success the worker publishes to the store *first*, then removes the task
file, then the lease — every step idempotent, so a crash between any two of
them is absorbed by the next worker's re-scan.  On failure (exception,
publish failure, or an expired lease stolen by a peer) the task is requeued
with ``attempts + 1`` and a ``not_before`` of now + :func:`retry_delay`
(exponential backoff, deterministic jitter); once ``attempts > retries`` it
is quarantined to the poison store and the coordinator yields a
:class:`~repro.experiments.engine.QuarantinedTask` in its place — the sweep
completes with a report instead of deadlocking.

Elasticity
----------
Workers are plain processes running :func:`_queue_worker_main`; they join by
scanning the directory and leave when the queue is idle or the shutdown
sentinel appears.  The coordinator respawns abnormally-dead workers (up to a
budget), steals expired leases itself, and — if the whole fleet is dead with
no respawn budget left — drains the queue inline, so the sweep *always*
terminates.  A coordinator killed outright leaves orphaned workers that
finish the queued tasks, publish, and exit; the restarted coordinator
recalls their work from the store.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import shutil
import sys
import tempfile
import threading
import time
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from .cache import (
    ArtifactCache,
    POISON_KIND,
    SHARD_RESULT_KIND,
    acquire_lease,
    cache_digest,
    default_cache,
    lease_expired,
    poison_key,
    read_lease,
    release_lease,
    renew_lease,
    shard_result_key,
    steal_lease,
)
from .engine import (
    DEFAULT_BACKOFF,
    QuarantinedTask,
    SweepTask,
    retry_delay,
    store_label,
    task_digest,
    worker_identity,
)
from .faults import NULL_INJECTOR, FaultPlan

__all__ = [
    "QueueBackend",
    "DEFAULT_QUEUE_RETRIES",
    "fail_transition",
    "recall_settled",
]

#: Queue-backend default retry budget (used when the runner leaves it unset):
#: unlike the in-process backends, retrying here is what the backend is *for*.
DEFAULT_QUEUE_RETRIES = 2

_SHUTDOWN_SENTINEL = "shutdown"


def _write_record(path: Path, record: dict[str, Any]) -> bool:
    """Atomically (re)write a task record; readers see old, new, or nothing."""
    temp_name = None
    try:
        handle, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        with os.fdopen(handle, "wb") as temp_file:
            pickle.dump(record, temp_file, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp_name, path)
        return True
    except OSError:
        if temp_name is not None:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
        return False


def _read_record(path: Path) -> dict[str, Any] | None:
    try:
        with open(path, "rb") as handle:
            record = pickle.load(handle)
    except Exception:
        # gone (claimed + completed), or a torn concurrent rewrite: skip —
        # the atomic replace means the next scan sees a whole record
        return None
    return record if isinstance(record, dict) else None


def fail_transition(
    record: dict[str, Any],
    error: str,
    retries: int,
    backoff: float,
    now: float | None = None,
) -> tuple[str, dict[str, Any]]:
    """The one requeue-or-quarantine decision every queue flavour shares.

    Given a task record ``{task, digest, attempts, errors, ...}`` and the
    error that failed this attempt, returns either ``("requeue", record')``
    — attempts incremented, the error appended, and ``not_before`` pushed to
    now + :func:`~repro.experiments.engine.retry_delay` (exponential backoff
    with deterministic per-digest jitter) — or, once ``attempts > retries``,
    ``("poison", payload)`` where the payload is store-shaped
    ``{task, digest, attempts, errors}``.  The directory queue persists the
    outcome as a task-file rewrite / poison-store put; the socket broker
    journals it — both express this exact transition so chaos tests can
    assert identical retry trajectories across backends.
    """
    now = time.time() if now is None else now
    digest = record["digest"]
    attempts = record.get("attempts", 0) + 1
    errors = [*record.get("errors", []), error]
    if attempts > int(retries):
        return "poison", {
            "task": record.get("task"),
            "digest": digest,
            "attempts": attempts,
            "errors": tuple(errors),
        }
    return "requeue", {
        **record,
        "attempts": attempts,
        "errors": errors,
        "not_before": now + retry_delay(backoff, digest, attempts),
    }


def recall_settled(
    store: ArtifactCache, label: str, worker_name: str, digest: str
) -> tuple[str, Any] | None:
    """Look a task up in the store's terminal states.

    Returns ``("result", value)`` for a published result, ``("poison",
    QuarantinedTask)`` for a quarantined task, or ``None`` while the task is
    still unsettled.  This is the single source of truth for "is this task
    done?" — workers use it to skip re-execution, and both the queue and
    broker coordinators use it to recall prior work at zero recomputation.
    """
    payload = store.get(SHARD_RESULT_KIND, shard_result_key(label, worker_name, digest))
    if payload is not None:
        return "result", payload["result"]
    payload = store.get(POISON_KIND, poison_key(label, worker_name, digest))
    if payload is not None:
        return "poison", QuarantinedTask(
            task=payload.get("task"),
            digest=digest,
            attempts=int(payload.get("attempts", 0)),
            errors=tuple(payload.get("errors", ())),
        )
    return None


@dataclass
class _WorkerConfig:
    """Everything a queue worker process needs, in one picklable record."""

    sweep_dir: str
    store: ArtifactCache
    label: str
    worker_name: str
    fn: Callable[[Any, SweepTask], Any]
    shared: Any
    retries: int
    backoff: float
    lease_seconds: float
    heartbeat_seconds: float
    task_timeout: float | None
    poll_seconds: float
    worker_index: int
    fault_plan: FaultPlan | None = None


class _Heartbeat:
    """Daemon thread renewing one task's lease while the task executes."""

    def __init__(self, lease_path: Path, owner: str, lease_seconds: float, interval: float):
        self.lease_path = lease_path
        self.owner = owner
        self.lease_seconds = lease_seconds
        self.interval = max(0.01, float(interval))
        self._stop = threading.Event()
        # named so tests can assert no repro-* thread outlives its sweep
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-heartbeat"
        )

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if not renew_lease(self.lease_path, self.owner, self.lease_seconds):
                # stolen (we straggled past our own deadline): stop renewing
                # and let the execution finish — the publish is idempotent
                return

    def stop(self) -> None:
        self._stop.set()
        # join so stop() is a real resource release, not a request: once it
        # returns, no renewal can race a lease this worker already released
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)


class _QueueWorker:
    """The claim/execute/publish loop one worker process runs to exhaustion."""

    def __init__(self, config: _WorkerConfig):
        self.config = config
        self.sweep_dir = Path(config.sweep_dir)
        self.tasks_dir = self.sweep_dir / "tasks"
        self.leases_dir = self.sweep_dir / "leases"
        # unique per process *and* per coordinator spawn: renewals must not
        # confuse two incarnations that recycled a pid
        self.owner = f"w{config.worker_index}:pid{os.getpid()}:{time.monotonic_ns():x}"
        self.completed = 0
        plan = config.fault_plan
        self.injector = (
            plan.for_worker(config.worker_index) if plan is not None else NULL_INJECTOR
        )

    # ------------------------------------------------------------- scanning

    def _pending_files(self) -> list[Path]:
        try:
            names = sorted(path.name for path in self.tasks_dir.glob("*.pkl"))
        except OSError:
            return []
        if names and self.config.worker_index > 0:
            # deterministic rotation: workers start their scans at different
            # offsets so a fresh fleet doesn't all fight over the first task
            pivot = self.config.worker_index % len(names)
            names = names[pivot:] + names[:pivot]
        return [self.tasks_dir / name for name in names]

    def _settled(self, digest: str) -> bool:
        """Whether the task already has a terminal record in the store."""
        config = self.config
        return (
            recall_settled(config.store, config.label, config.worker_name, digest)
            is not None
        )

    # ------------------------------------------------------ claim + execute

    def drain_once(self) -> bool:
        """Reclaim expired leases, then claim and run one task.

        Returns True when any progress was made (a lease reclaimed or a task
        executed) so the caller can rescan immediately instead of polling.
        """
        progressed = self.reclaim_expired() > 0
        now = time.time()
        for path in self._pending_files():
            record = _read_record(path)
            if record is None or record.get("not_before", 0.0) > now:
                continue
            digest = record["digest"]
            lease_path = self.leases_dir / f"{digest}.lease"
            hard = (
                now + self.config.task_timeout
                if self.config.task_timeout is not None
                else None
            )
            if not acquire_lease(
                lease_path, self.owner, self.config.lease_seconds, hard_deadline=hard
            ):
                continue
            # won the claim — but between scan and claim the task may have
            # been completed (or quarantined) by the previous lease holder
            record = _read_record(path)
            if record is None or self._settled(digest):
                try:
                    path.unlink()
                except OSError:
                    pass
                release_lease(lease_path)
                continue
            self._execute(path, lease_path, record)
            return True
        return progressed

    def _execute(self, path: Path, lease_path: Path, record: dict[str, Any]) -> None:
        config = self.config
        digest = record["digest"]
        self.injector.on_claim(self.completed)  # may SIGKILL mid-claim
        heartbeat: _Heartbeat | None = None
        if self.injector.heartbeat_allowed(self.completed):
            heartbeat = _Heartbeat(
                lease_path, self.owner, config.lease_seconds, config.heartbeat_seconds
            )
            heartbeat.start()
        try:
            try:
                self.injector.before_execute(record["task"])  # may raise (poison)
                result = config.fn(config.shared, record["task"])
            except Exception as error:
                self._fail_task(path, record, f"{type(error).__name__}: {error}")
                release_lease(lease_path)
                return
            published = config.store.put(
                SHARD_RESULT_KIND,
                shard_result_key(config.label, config.worker_name, digest),
                {"result": result, "attempts": record.get("attempts", 0) + 1},
            )
            if not published:
                # the store is the worker's only channel to the coordinator;
                # an unpublishable result is a failed attempt (retried, then
                # quarantined with the reason) — never a silent deadlock
                self._fail_task(
                    path,
                    record,
                    f"failed to publish result to the store at {config.store.root} "
                    "(unpicklable result or unwritable cache)",
                )
                release_lease(lease_path)
                return
        finally:
            if heartbeat is not None:
                heartbeat.stop()
        # publish → task file → lease, each idempotent: dying between steps
        # leaves either a claimable no-op (next claimer sees _settled) or an
        # expiring lease; never a lost result
        try:
            path.unlink()
        except OSError:
            pass
        release_lease(lease_path)
        self.completed += 1
        self.injector.on_publish(self.completed)  # may SIGKILL post-publish

    def _fail_task(self, path: Path, record: dict[str, Any], error: str) -> None:
        """Requeue a failed attempt with backoff, or quarantine it."""
        config = self.config
        state, payload = fail_transition(record, error, config.retries, config.backoff)
        if state == "poison":
            config.store.put(
                POISON_KIND,
                poison_key(config.label, config.worker_name, record["digest"]),
                payload,
            )
            try:
                path.unlink()
            except OSError:
                pass
        else:
            _write_record(path, payload)

    # ------------------------------------------------------- work stealing

    def reclaim_expired(self) -> int:
        """Steal expired leases; requeue (or quarantine) their tasks."""
        try:
            lease_paths = sorted(self.leases_dir.glob("*.lease"))
        except OSError:
            return 0
        reclaimed = 0
        now = time.time()
        for lease_path in lease_paths:
            if not lease_expired(read_lease(lease_path), now):
                continue
            stolen = steal_lease(lease_path)
            if stolen is None:
                continue  # a peer won the steal; it owns the requeue
            digest = lease_path.stem
            task_path = self.tasks_dir / f"{digest}.pkl"
            record = _read_record(task_path)
            if record is None or self._settled(digest):
                # the holder finished (or the task was quarantined) before
                # dying; nothing to requeue — just tidy the task file
                if record is not None:
                    try:
                        task_path.unlink()
                    except OSError:
                        pass
                continue
            owner = stolen.get("owner", "unknown")
            self._fail_task(
                task_path,
                record,
                f"lease expired: worker {owner} died or hung past its deadline",
            )
            reclaimed += 1
        return reclaimed

    # ------------------------------------------------------------ main loop

    def _queue_idle(self) -> bool:
        try:
            if any(self.tasks_dir.glob("*.pkl")):
                return False
            if any(self.leases_dir.glob("*.lease")):
                return False
        except OSError:
            return False
        return True

    def run(self) -> None:
        shutdown = self.sweep_dir / _SHUTDOWN_SENTINEL
        while True:
            if shutdown.exists() or not self.tasks_dir.is_dir():
                return
            if self.drain_once():
                continue
            if self._queue_idle():
                return
            # tasks exist but none claimable (backoff windows / live leases):
            # poll — a shared directory has nothing to block on
            time.sleep(self.config.poll_seconds)


def _queue_worker_main(config: _WorkerConfig) -> None:
    _QueueWorker(config).run()


# ---------------------------------------------------------------- coordinator


@dataclass
class QueueBackend:
    """Shared-directory elastic queue backend (leases, retries, quarantine).

    Satisfies the ``SweepBackend`` protocol.  Unlike the pool backends it is
    *stateful across submissions by design*: results publish through the
    artifact ``store`` under ``sweep_label``, so resubmitting the same sweep
    — after a crash, from another process, or concurrently — recomputes
    nothing that already published.  ``SweepRunner`` fills ``store``/
    ``sweep_label``/policy fields from its own configuration via
    :meth:`configure_from_runner` (only where unset here).

    Parameters
    ----------
    queue_dir:
        Root for per-sweep queue directories (default: ``<store.root>/queue``
        — next to, not inside, the artifact kinds).
    retries:
        Retry budget per task (``attempts <= retries + 1``); ``None`` →
        :data:`DEFAULT_QUEUE_RETRIES`.
    task_timeout:
        Hard lease deadline per attempt; a task running past it is stolen
        and requeued even if its worker still heartbeats.  ``None`` → no
        hard bound (heartbeat expiry still covers dead workers).
    lease_seconds:
        Heartbeat deadline horizon: a worker that misses renewals for this
        long is presumed dead and its task is stolen.  The renewal interval
        is ``lease_seconds / 4`` unless ``heartbeat_seconds`` overrides it.
    respawn / max_respawns:
        Whether (and how many times, default ``4 * workers + 4``) the
        coordinator replaces workers that died abnormally.  With respawn
        exhausted or disabled and the whole fleet dead, the coordinator
        drains the queue inline rather than deadlocking.
    fault_plan:
        Chaos injection (:mod:`repro.experiments.faults`); ``None`` reads
        ``$REPRO_FAULT_PLAN`` so CLI runs can be fault-injected too.

    After each completed submission, :attr:`last_stats` reports
    ``{"tasks", "recalled", "enqueued", "quarantined", "worker_deaths",
    "respawns", "inline_drained"}`` and :attr:`quarantined` lists the
    :class:`QuarantinedTask` sentinels yielded in place of results.
    """

    queue_dir: Path | str | None = None
    store: ArtifactCache | None = None
    sweep_label: str = ""
    retries: int | None = None
    task_timeout: float | None = None
    backoff: float | None = None
    lease_seconds: float = 15.0
    heartbeat_seconds: float | None = None
    poll_seconds: float = 0.05
    respawn: bool = True
    max_respawns: int | None = None
    mp_context: str | None = None
    fault_plan: FaultPlan | None = None

    quarantined: list[QuarantinedTask] = field(default_factory=list, init=False)
    last_stats: dict[str, int] = field(default_factory=dict, init=False)

    name = "queue"
    #: SweepRunner must not downgrade this backend to the in-process serial
    #: path at 1 worker, and should hand it runner-level configuration
    queue_semantics = True
    #: retries are handled natively (requeue/quarantine) — SweepRunner must
    #: not additionally wrap the worker in RetryingWorker
    handles_retries = True

    def configure_from_runner(self, runner: Any) -> None:
        """Adopt runner-level configuration for fields not set explicitly."""
        if self.store is None:
            self.store = runner.shard_store
        if not self.sweep_label and runner.sweep_label:
            self.sweep_label = runner.sweep_label
        if self.retries is None:
            self.retries = runner.retries
        if self.task_timeout is None:
            self.task_timeout = runner.task_timeout
        if self.backoff is None:
            self.backoff = runner.backoff
        if self.mp_context is None:
            self.mp_context = runner.mp_context

    def submit(
        self,
        fn: Callable[[Any, SweepTask], Any],
        shared: Any,
        tasks: Sequence[SweepTask],
        workers: int,
        chunksize: int,
    ) -> Iterator[tuple[int, Any]]:
        # chunksize is a pool-dispatch optimization; the queue hands out one
        # task per claim so stealing stays task-granular
        store = self.store if self.store is not None else default_cache()
        if not store.enabled:
            raise ValueError(
                "the queue backend publishes results through the artifact cache; "
                "the store must be enabled (unset $REPRO_CACHE_DISABLE or pass "
                "an enabled cache)"
            )
        label = store_label(self.sweep_label, shared)
        worker_name = worker_identity(fn)
        root = (
            Path(self.queue_dir)
            if self.queue_dir is not None
            else Path(store.root) / "queue"
        )
        # same namespace axes as the store keys: sweeps share queue state
        # exactly when they would share published results
        sweep_id = cache_digest({"label": label, "worker": worker_name})[:24]
        config = _WorkerConfig(
            sweep_dir=str(root / sweep_id),
            store=store,
            label=label,
            worker_name=worker_name,
            fn=fn,
            shared=shared,
            retries=(
                int(self.retries) if self.retries is not None else DEFAULT_QUEUE_RETRIES
            ),
            backoff=float(self.backoff) if self.backoff is not None else DEFAULT_BACKOFF,
            lease_seconds=float(self.lease_seconds),
            heartbeat_seconds=(
                float(self.heartbeat_seconds)
                if self.heartbeat_seconds is not None
                else max(float(self.lease_seconds) / 4.0, 0.01)
            ),
            task_timeout=self.task_timeout,
            poll_seconds=float(self.poll_seconds),
            worker_index=0,
            fault_plan=(
                self.fault_plan if self.fault_plan is not None else FaultPlan.from_env()
            ),
        )
        return self._coordinate(config, list(tasks), max(1, int(workers)))

    def _coordinate(
        self, config: _WorkerConfig, tasks: list[SweepTask], workers: int
    ) -> Iterator[tuple[int, Any]]:
        self.quarantined = []
        stats = {
            "tasks": len(tasks),
            "recalled": 0,
            "enqueued": 0,
            "quarantined": 0,
            "worker_deaths": 0,
            "respawns": 0,
            "inline_drained": 0,
        }
        self.last_stats = stats
        store = config.store
        digests = [task_digest(task) for task in tasks]
        positions: dict[str, list[int]] = {}
        for position, digest in enumerate(digests):
            positions.setdefault(digest, []).append(position)

        def recall(digest: str) -> tuple[str, Any] | None:
            return recall_settled(store, config.label, config.worker_name, digest)

        def consume(digest: str, kind: str, value: Any) -> list[tuple[int, Any]]:
            if kind == "poison":
                stats["quarantined"] += 1
                self.quarantined.append(value)
            return [(position, value) for position in positions.pop(digest)]

        # phase 1 — recall: everything a previous run (or a concurrent sweep
        # over an overlapping grid) already settled costs zero recomputation
        ready: list[tuple[int, Any]] = []
        for digest in list(positions):
            found = recall(digest)
            if found is None:
                continue
            kind, value = found
            if kind == "result":
                stats["recalled"] += 1
            ready.extend(consume(digest, kind, value))
        yield from ready
        if not positions:
            return

        # phase 2 — enqueue only the unsettled remainder
        stats["enqueued"] = len(positions)
        sweep_dir = Path(config.sweep_dir)
        tasks_dir = sweep_dir / "tasks"
        leases_dir = sweep_dir / "leases"
        tasks_dir.mkdir(parents=True, exist_ok=True)
        leases_dir.mkdir(parents=True, exist_ok=True)
        shutdown = sweep_dir / _SHUTDOWN_SENTINEL
        try:
            shutdown.unlink()  # stale sentinel from an earlier coordinator
        except OSError:
            pass
        for digest in positions:
            path = tasks_dir / f"{digest}.pkl"
            if path.exists():
                continue  # a concurrent coordinator already queued it
            _write_record(
                path,
                {
                    "task": tasks[positions[digest][0]],
                    "digest": digest,
                    "attempts": 0,
                    "not_before": 0.0,
                    "errors": [],
                },
            )

        # phase 3 — spawn the fleet and stream results out of the store
        method = self.mp_context or ("fork" if sys.platform == "linux" else "spawn")
        context = multiprocessing.get_context(method)
        processes: list[Any] = []
        next_index = 0
        spawn_budget = workers + (
            int(self.max_respawns) if self.max_respawns is not None else 4 * workers + 4
        )
        # the coordinator's own (never fault-injected) worker: steals expired
        # leases while the fleet runs and drains inline if the fleet dies
        inline = _QueueWorker(replace(config, worker_index=-1, fault_plan=None))

        def spawn() -> None:
            nonlocal next_index
            process = context.Process(
                target=_queue_worker_main,
                args=(replace(config, worker_index=next_index),),
                daemon=True,
            )
            process.start()
            processes.append(process)
            next_index += 1

        try:
            for _ in range(min(workers, len(positions))):
                spawn()
            while positions:
                progressed = False
                for digest in list(positions):
                    found = recall(digest)
                    if found is None:
                        continue
                    progressed = True
                    for item in consume(digest, *found):
                        yield item
                if not positions:
                    break
                alive = []
                died = 0
                for process in processes:
                    if process.is_alive():
                        alive.append(process)
                    elif process.exitcode not in (0, None):
                        # exit 0 is a clean drain (idle queue); a signal or
                        # nonzero exit is a death the fleet must absorb
                        died += 1
                processes[:] = alive
                stats["worker_deaths"] += died
                if self.respawn:
                    for _ in range(died):
                        if next_index >= spawn_budget:
                            break
                        spawn()
                        stats["respawns"] += 1
                inline.reclaim_expired()
                if not processes:
                    # fleet gone (dead, drained early, or respawn exhausted):
                    # the coordinator finishes the sweep itself — a sweep
                    # must terminate even with zero surviving workers
                    if inline.drain_once():
                        stats["inline_drained"] += 1
                        progressed = True
                if not progressed:
                    time.sleep(config.poll_seconds)
        finally:
            try:
                shutdown.touch()
            except OSError:
                pass
            deadline = time.time() + 10.0
            for process in processes:
                process.join(timeout=max(0.1, deadline - time.time()))
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
            if not positions:
                # sweep fully settled: retire the queue directory (all state
                # worth keeping lives in the store); a killed/abandoned sweep
                # keeps its directory so a resume can pick the queue back up
                shutil.rmtree(sweep_dir, ignore_errors=True)
