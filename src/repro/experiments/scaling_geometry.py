"""Geometry scaling — cycles/energy/error vs PE count × bank capacity × workload.

The paper evaluates one fixed design point (8 PEs, 512×16-bit banks); this
driver answers the ROADMAP's "what happens at 16 PEs, half-capacity banks,
or a 10× deeper network?" question.  The grid co-varies two axes the rest of
the suite holds constant:

* **chip geometry** — ``num_pes`` × ``words_per_bank``, building each point's
  chip from a non-default :class:`~repro.accelerator.soc.SnnacConfig` whose
  energy model is analytically scaled from the 65 nm anchors
  (:meth:`~repro.accelerator.energy.SnnacEnergyModel.for_geometry`); and
* **workload** — any catalog name, the paper's Table I benchmarks and the
  procedural ``synth/...`` specs alike (deep stacks, wide fan-in,
  autoencoders; see ``docs/workloads.md``).

Each grid point deploys the workload's pre-trained float baseline naively
(no memory-adaptive retraining — geometry, not fault response, is the
variable here), measures application error on the test split at the target
SRAM voltage, and reports the compiled program's cost model: cycles and SRAM
reads per inference (capacity-constrained geometries pay for placement
spill with extra passes), energy per inference, and efficiency at the
nominal operating point.  Geometries the workload cannot fit at all are
reported as ``fits=no`` rows rather than errors, so a sweep can chart the
capacity wall itself.

Like every driver, the grid expands into independent seeded tasks and runs
through the sweep engine — all backends, ``--shard i/n``, ``--stream``; the
sharded merge is bit-identical to an unsharded run (``benchmarks/
bench_scaling.py`` proves it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..accelerator.energy import NOMINAL_OPERATING_POINT
from ..accelerator.microcode import plan_capacity
from ..matic.flow import MaticFlow
from .cache import ArtifactCache, default_cache
from .common import (
    ExperimentResult,
    PreparedBenchmark,
    default_flow,
    experiment_parser,
    fmt,
    make_chip,
    partition_quarantined,
    prepare_benchmark,
    quarantine_notes,
    run_experiment_cli,
)
from .engine import SweepRunner, SweepTask, expand_grid

__all__ = [
    "GeometryPoint",
    "ScalingGeometryResult",
    "run_scaling_geometry",
    "DEFAULT_WORKLOADS",
    "DEFAULT_NUM_PES",
    "DEFAULT_WORDS_PER_BANK",
    "main",
]

#: Default workload mix: one paper benchmark plus one spec from each
#: procedural family (deep stack, wide fan-in, autoencoder).
DEFAULT_WORKLOADS = (
    "inversek2j",
    "synth/mlp-d4-w32",
    "synth/wide-f128-h8",
    "synth/ae-i64-b8",
)

#: Default geometry axes: half/default/double the fabricated PE count...
DEFAULT_NUM_PES = (4, 8, 16)

#: ...crossed with quarter/default bank capacity.
DEFAULT_WORDS_PER_BANK = (128, 512)


@dataclass
class GeometryPoint:
    """Measurements for one (workload, num_pes, words_per_bank) grid point.

    Unmeasured fields (a workload that does not fit the geometry) are
    ``None`` rather than NaN: points round-trip through the shard store's
    pickle channel, and NaN's self-inequality would make bit-identical
    merge comparisons spuriously fail.
    """

    workload: str
    num_pes: int
    words_per_bank: int
    fits: bool
    utilization: float
    spilled_neurons: int = 0
    num_segments: int = 0
    cycles_per_inference: int = 0
    sram_reads: int = 0
    error: float | None = None
    energy_per_inference_pj: float | None = None
    efficiency_gops_per_w: float | None = None


@dataclass
class ScalingGeometryResult:
    points: list[GeometryPoint] = field(default_factory=list)
    voltage: float = 0.9
    quarantined: list[str] = field(default_factory=list)

    def points_for(self, workload: str) -> list[GeometryPoint]:
        return [point for point in self.points if point.workload == workload]

    def to_experiment_result(self) -> ExperimentResult:
        rows = []
        for p in self.points:
            if p.fits:
                rows.append(
                    [
                        p.workload,
                        str(p.num_pes),
                        str(p.words_per_bank),
                        f"{p.utilization:.1%}",
                        str(p.spilled_neurons),
                        str(p.cycles_per_inference),
                        str(p.sram_reads),
                        fmt(p.error, 4),
                        f"{p.energy_per_inference_pj:.0f}",
                        f"{p.efficiency_gops_per_w:.1f}",
                    ]
                )
            else:
                rows.append(
                    [
                        p.workload,
                        str(p.num_pes),
                        str(p.words_per_bank),
                        f"{p.utilization:.1%}",
                        "-",
                        "does not fit",
                        "-",
                        "-",
                        "-",
                        "-",
                    ]
                )
        return ExperimentResult(
            experiment=(
                f"Geometry scaling — PE count x bank capacity x workload "
                f"(SRAM at {self.voltage:.2f} V)"
            ),
            headers=[
                "workload",
                "PEs",
                "words/bank",
                "util",
                "spill",
                "cycles/inf",
                "SRAM reads",
                "error",
                "pJ/inf",
                "GOPS/W",
            ],
            rows=rows,
            paper_reference={
                "design point": "the paper fabricates only 8 PEs x 512 words; "
                "other geometries are analytic extrapolation",
            },
            notes=(
                "Energy/efficiency use the geometry-scaled 65 nm anchor model at the "
                "nominal operating point; capacity-constrained rows pay for placement "
                "spill with extra passes (see docs/workloads.md for caveats)."
            ),
            quarantined=list(self.quarantined),
        )


def _scaling_point_worker(shared: dict, task: SweepTask) -> GeometryPoint:
    """Deploy one workload on one geometry and measure its cost/error."""
    prepared: PreparedBenchmark = shared["prepared"][task.benchmark]
    flow: MaticFlow = shared["flow"]
    num_pes = int(task.param("num_pes"))
    words_per_bank = int(task.param("words_per_bank"))
    voltage = float(shared["voltage"])

    report = plan_capacity(prepared.baseline.widths, num_pes, words_per_bank)
    if not report.fits:
        return GeometryPoint(
            workload=task.benchmark,
            num_pes=num_pes,
            words_per_bank=words_per_bank,
            fits=False,
            utilization=report.utilization,
        )

    # chip seed derives from the task's content-stable seed, so sharded and
    # reordered grids sample identical per-point chip instances
    chip = make_chip(
        seed=shared["chip_seed"] + int(task.seed) % 1_000_003,
        words_per_bank=words_per_bank,
        num_pes=num_pes,
    )
    deployment = flow.deploy_naive(
        chip,
        prepared.spec.topology,
        prepared.train,
        target_voltage=voltage,
        loss=prepared.spec.loss,
        initial_network=prepared.baseline,
        profile=False,
    )
    # single-point batched sweep: refreshes the deployed weights, then runs
    # at the target rail voltage through the plan-compiled read path
    outputs, stats = chip.run_voltage_sweep(prepared.test.inputs, [voltage])[0]
    program = deployment.program
    return GeometryPoint(
        workload=task.benchmark,
        num_pes=num_pes,
        words_per_bank=words_per_bank,
        fits=True,
        utilization=report.utilization,
        spilled_neurons=program.placement.spilled_neurons,
        num_segments=program.placement.num_segments,
        cycles_per_inference=program.total_cycles_per_inference,
        sram_reads=stats.sram_reads,
        error=float(prepared.spec.error(outputs, prepared.test)),
        energy_per_inference_pj=chip.energy_per_inference(NOMINAL_OPERATING_POINT),
        efficiency_gops_per_w=chip.efficiency_gops_per_watt(NOMINAL_OPERATING_POINT),
    )


def run_scaling_geometry(
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    num_pes_values: tuple[int, ...] = DEFAULT_NUM_PES,
    words_per_bank_values: tuple[int, ...] = DEFAULT_WORDS_PER_BANK,
    voltage: float = 0.9,
    num_samples: int | None = None,
    epochs: int | None = None,
    seed: int = 1,
    chip_seed: int = 11,
    flow: MaticFlow | None = None,
    runner: SweepRunner | None = None,
    cache: ArtifactCache | None = None,
) -> ScalingGeometryResult:
    """Run the geometry-scaling grid for the requested workloads."""
    cache = cache if cache is not None else default_cache()
    flow = flow or default_flow(seed=seed, cache=cache)
    runner = runner or SweepRunner()

    prepared = {
        name: prepare_benchmark(
            name, num_samples=num_samples, seed=seed, epochs=epochs, cache=cache
        )
        for name in workloads
    }

    grid = [
        {"benchmark": name, "num_pes": int(pes), "words_per_bank": int(words)}
        for name in workloads
        for pes in num_pes_values
        for words in words_per_bank_values
    ]
    tasks = expand_grid(params=grid, seed=seed)
    shared = {
        "prepared": prepared,
        "flow": flow,
        "voltage": float(voltage),
        "chip_seed": int(chip_seed),
    }
    points, quarantined = partition_quarantined(
        runner.map(_scaling_point_worker, tasks, shared=shared)
    )
    return ScalingGeometryResult(
        points=list(points),
        voltage=float(voltage),
        quarantined=quarantine_notes(quarantined),
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.scaling_geometry`` — geometry scaling."""
    parser = experiment_parser(
        "python -m repro.experiments.scaling_geometry",
        "Geometry scaling — cycles/energy/error vs PE count x bank capacity "
        "x workload (paper + procedural catalog).",
    )
    parser.add_argument("--workloads", nargs="+", default=list(DEFAULT_WORKLOADS))
    parser.add_argument(
        "--num-pes", type=int, nargs="+", default=list(DEFAULT_NUM_PES)
    )
    parser.add_argument(
        "--words-per-bank",
        type=int,
        nargs="+",
        default=list(DEFAULT_WORDS_PER_BANK),
    )
    parser.add_argument("--voltage", type=float, default=0.9)
    parser.add_argument("--num-samples", type=int, default=None)
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--chip-seed", type=int, default=11)
    args = parser.parse_args(argv)
    return run_experiment_cli(
        args,
        "scaling_geometry",
        lambda runner, cache: run_scaling_geometry(
            workloads=tuple(args.workloads),
            num_pes_values=tuple(args.num_pes),
            words_per_bank_values=tuple(args.words_per_bank),
            voltage=args.voltage,
            num_samples=args.num_samples,
            epochs=args.epochs,
            seed=args.seed,
            chip_seed=args.chip_seed,
            runner=runner,
            cache=cache,
        ),
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    from repro.experiments.common import dispatch_canonical_main

    raise SystemExit(dispatch_canonical_main(__spec__))
