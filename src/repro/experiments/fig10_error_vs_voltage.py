"""Fig. 10 — application error versus SRAM voltage, naive vs MATIC.

For every benchmark and every SRAM voltage in the sweep the driver:

1. deploys the float-trained baseline to a chip instance and measures its
   on-chip error at that voltage (the *naive* curve), and
2. runs the full MATIC flow — profile at that voltage, memory-adaptive
   training, deploy — and measures the adaptive model's on-chip error.

Both models share the same topology and the same pre-trained starting point,
exactly as in the paper ("the baseline and memory-adaptive models use the
same DNN model topologies ... memory-adaptive training modifications are
disabled for the naive case").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..matic.flow import MaticFlow
from .common import (
    ExperimentResult,
    PreparedBenchmark,
    default_flow,
    fmt,
    fmt_percent,
    make_chip,
    prepare_benchmark,
)

__all__ = ["VoltagePoint", "BenchmarkSweep", "Fig10Result", "run_fig10", "DEFAULT_VOLTAGES"]

#: SRAM voltage sweep covering the paper's measured range (first failure at
#: ~0.53 V down to the 0.46 V "significant error increase" point), plus the
#: nominal 0.9 V reference.
DEFAULT_VOLTAGES = (0.90, 0.53, 0.52, 0.51, 0.50, 0.48, 0.46)


@dataclass
class VoltagePoint:
    """Naive and adaptive error at one SRAM voltage."""

    voltage: float
    bit_fault_rate: float
    naive_error: float
    adaptive_error: float


@dataclass
class BenchmarkSweep:
    """Voltage sweep for one benchmark."""

    benchmark: str
    metric: str
    nominal_error: float
    points: list[VoltagePoint] = field(default_factory=list)

    def point_at(self, voltage: float) -> VoltagePoint:
        for point in self.points:
            if abs(point.voltage - voltage) < 1e-9:
                return point
        raise KeyError(f"no sweep point at {voltage} V")

    def average_error_increase(self, mode: str, exclude_nominal: bool = True) -> float:
        """Average error increase (AEI) over the swept voltages."""
        errors = []
        for point in self.points:
            if exclude_nominal and point.voltage >= 0.89:
                continue
            error = point.naive_error if mode == "naive" else point.adaptive_error
            errors.append(max(error - self.nominal_error, 0.0))
        if not errors:
            raise ValueError("no overscaled voltage points in the sweep")
        return float(np.mean(errors))


@dataclass
class Fig10Result:
    sweeps: list[BenchmarkSweep] = field(default_factory=list)

    def sweep_for(self, benchmark: str) -> BenchmarkSweep:
        for sweep in self.sweeps:
            if sweep.benchmark == benchmark:
                return sweep
        raise KeyError(f"no sweep for benchmark {benchmark!r}")

    def to_experiment_result(self) -> ExperimentResult:
        rows = []
        for sweep in self.sweeps:
            for point in sweep.points:
                formatter = fmt_percent if sweep.metric == "classification" else fmt
                rows.append(
                    [
                        sweep.benchmark,
                        f"{point.voltage:.2f}",
                        fmt_percent(point.bit_fault_rate, 2),
                        formatter(point.naive_error),
                        formatter(point.adaptive_error),
                    ]
                )
        return ExperimentResult(
            experiment="Fig. 10 — application error vs SRAM voltage (naive vs MATIC)",
            headers=["benchmark", "voltage (V)", "bit fault rate", "naive", "adaptive"],
            rows=rows,
            paper_reference={
                "shape": "naive error rises sharply below ~0.53 V; MATIC holds error near "
                "nominal down to ~0.50 V and degrades gracefully below",
            },
        )


def run_fig10(
    benchmarks: tuple[str, ...] = ("mnist", "facedet", "inversek2j", "bscholes"),
    voltages: tuple[float, ...] = DEFAULT_VOLTAGES,
    num_samples: int | None = None,
    adaptive_epochs: int = 60,
    seed: int = 1,
    chip_seed: int = 11,
    flow: MaticFlow | None = None,
    prepared_benchmarks: dict[str, PreparedBenchmark] | None = None,
) -> Fig10Result:
    """Run the full voltage sweep for the requested benchmarks."""
    flow = flow or default_flow(epochs=adaptive_epochs, seed=seed)
    result = Fig10Result()

    for benchmark_index, name in enumerate(benchmarks):
        if prepared_benchmarks and name in prepared_benchmarks:
            prepared = prepared_benchmarks[name]
        else:
            prepared = prepare_benchmark(name, num_samples=num_samples, seed=seed)
        sweep = BenchmarkSweep(
            benchmark=name,
            metric=prepared.spec.error_metric,
            nominal_error=prepared.baseline_error,
        )

        for voltage_index, voltage in enumerate(voltages):
            chip_naive = make_chip(seed=chip_seed + benchmark_index)
            naive = flow.deploy_naive(
                chip_naive,
                prepared.spec.topology,
                prepared.train,
                target_voltage=voltage,
                loss=prepared.spec.loss,
                initial_network=prepared.baseline,
            )
            naive_error = prepared.spec.error(
                naive.run_at(prepared.test.inputs), prepared.test
            )

            if voltage >= 0.89:
                # at nominal voltage MATIC is a no-op: reuse the naive
                # deployment's measurement for the adaptive column
                adaptive_error = naive_error
                fault_rate = 0.0
            else:
                chip_adaptive = make_chip(seed=chip_seed + benchmark_index)
                adaptive = flow.deploy_adaptive(
                    chip_adaptive,
                    prepared.spec.topology,
                    prepared.train,
                    target_voltage=voltage,
                    loss=prepared.spec.loss,
                    initial_network=prepared.baseline,
                    select_canaries=False,
                )
                adaptive_error = prepared.spec.error(
                    adaptive.run_at(prepared.test.inputs), prepared.test
                )
                fault_rate = float(
                    np.mean([fault_map.fault_rate for fault_map in adaptive.fault_maps])
                )

            sweep.points.append(
                VoltagePoint(
                    voltage=float(voltage),
                    bit_fault_rate=fault_rate,
                    naive_error=naive_error,
                    adaptive_error=adaptive_error,
                )
            )
        result.sweeps.append(sweep)
    return result
