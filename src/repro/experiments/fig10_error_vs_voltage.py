"""Fig. 10 — application error versus SRAM voltage, naive vs MATIC.

For every benchmark and every SRAM voltage in the sweep the driver:

1. deploys the float-trained baseline to a chip instance and measures its
   on-chip error at that voltage (the *naive* curve), and
2. runs the full MATIC flow — profile at that voltage, memory-adaptive
   training, deploy — and measures the adaptive model's on-chip error.

Both models share the same topology and the same pre-trained starting point,
exactly as in the paper ("the baseline and memory-adaptive models use the
same DNN model topologies ... memory-adaptive training modifications are
disabled for the naive case").

The grid expands into independent
:class:`~repro.experiments.engine.SweepTask` records — every task builds its
own chip instance from the per-benchmark chip seed, so parallel and serial
execution produce identical tables.  Memory-adaptive fine-tuning, the
dominant cost, is memoized through the flow's training cache.

Both correction modes are voltage-axis-batched, one task per benchmark.  A
*naive* deployment is voltage-independent (no profiling, no retraining —
only the measurement voltage changes), so each benchmark's whole naive curve
is **one** task that runs the batched
:meth:`~repro.matic.flow.MaticDeployment.run_sweep` primitive over every
voltage: one deployment, refreshed inference per point, decoded weight
images shared between operating points whose SRAM corruption masks are
identical.  The *adaptive* column is **one chained task** per benchmark
covering every overscaled point through
:meth:`~repro.matic.flow.MaticFlow.deploy_adaptive_sweep`: fault maps for
the whole axis from one sweep-profiling pass, one shared compile, and (by
default) each operating point's memory-adaptive fine-tuning warm-started
from the neighboring voltage's converged weights.  ``--no-warm-start``
retrains every point from the pristine baseline — bit-identical to the
historical one-task-per-overscaled-grid-point flow.  Both columns stay
shardable by benchmark and quarantine-safe (a poisoned task blanks its
benchmark's column, never the table).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

import numpy as np

from ..matic.flow import MaticFlow
from .cache import ArtifactCache, default_cache
from .common import (
    ExperimentResult,
    PreparedBenchmark,
    default_flow,
    experiment_parser,
    fmt,
    fmt_percent,
    make_chip,
    partition_quarantined,
    prepare_benchmark,
    quarantine_notes,
    run_experiment_cli,
)
from .engine import SweepRunner, SweepTask, expand_grid

__all__ = [
    "VoltagePoint",
    "BenchmarkSweep",
    "Fig10Result",
    "run_fig10",
    "DEFAULT_VOLTAGES",
    "main",
]

#: SRAM voltage sweep covering the paper's measured range (first failure at
#: ~0.53 V down to the 0.46 V "significant error increase" point), plus the
#: nominal 0.9 V reference.
DEFAULT_VOLTAGES = (0.90, 0.53, 0.52, 0.51, 0.50, 0.48, 0.46)

#: At and above this voltage the SRAM is fault-free, so MATIC is a no-op and
#: the adaptive measurement reuses the naive one.
NOMINAL_THRESHOLD = 0.89


@dataclass
class VoltagePoint:
    """Naive and adaptive error at one SRAM voltage.

    Errors are ``None`` when the task that would have measured them was
    quarantined in a merged sweep — the point still renders ("-" cells)
    instead of crashing the table.  The bit fault rate rides on the adaptive
    task (it comes from that task's profiling pass), so it is likewise
    ``None`` — rendered "-", not a misleading ``0.00%`` — when an overscaled
    point's adaptive measurement is missing.
    """

    voltage: float
    bit_fault_rate: float | None
    naive_error: float | None
    adaptive_error: float | None


@dataclass
class BenchmarkSweep:
    """Voltage sweep for one benchmark."""

    benchmark: str
    metric: str
    nominal_error: float
    points: list[VoltagePoint] = field(default_factory=list)

    def point_at(self, voltage: float) -> VoltagePoint:
        for point in self.points:
            if abs(point.voltage - voltage) < 1e-9:
                return point
        raise KeyError(f"no sweep point at {voltage} V")

    def average_error_increase(
        self, mode: str, exclude_nominal: bool = True
    ) -> float | None:
        """Average error increase (AEI) over the swept voltages.

        Points whose measurement is missing (quarantined task) are skipped;
        when *every* overscaled point is missing the AEI is undefined and
        ``None`` is returned so callers can render "-" instead of crashing.
        An empty overscaled grid is still a caller error.
        """
        errors = []
        missing = 0
        for point in self.points:
            if exclude_nominal and point.voltage >= NOMINAL_THRESHOLD:
                continue
            error = point.naive_error if mode == "naive" else point.adaptive_error
            if error is None:
                missing += 1
                continue
            errors.append(max(error - self.nominal_error, 0.0))
        if not errors:
            if missing:
                return None
            raise ValueError("no overscaled voltage points in the sweep")
        return float(np.mean(errors))


@dataclass
class Fig10Result:
    sweeps: list[BenchmarkSweep] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)

    def sweep_for(self, benchmark: str) -> BenchmarkSweep:
        for sweep in self.sweeps:
            if sweep.benchmark == benchmark:
                return sweep
        raise KeyError(f"no sweep for benchmark {benchmark!r}")

    def to_experiment_result(self) -> ExperimentResult:
        rows = []
        for sweep in self.sweeps:
            for point in sweep.points:
                formatter = fmt_percent if sweep.metric == "classification" else fmt
                rows.append(
                    [
                        sweep.benchmark,
                        f"{point.voltage:.2f}",
                        fmt_percent(point.bit_fault_rate, 2),
                        formatter(point.naive_error),
                        formatter(point.adaptive_error),
                    ]
                )
        return ExperimentResult(
            experiment="Fig. 10 — application error vs SRAM voltage (naive vs MATIC)",
            headers=["benchmark", "voltage (V)", "bit fault rate", "naive", "adaptive"],
            rows=rows,
            paper_reference={
                "shape": "naive error rises sharply below ~0.53 V; MATIC holds error near "
                "nominal down to ~0.50 V and degrades gracefully below",
            },
            quarantined=list(self.quarantined),
        )


def _fig10_point_worker(shared: dict, task: SweepTask) -> dict:
    """Measure one fig10 grid task on a fresh chip.

    A ``naive`` task covers the benchmark's *entire* voltage axis in one
    deployment: the baseline is deployed once (profiling disabled, nothing
    about the deployment depends on voltage) and measured at every swept
    voltage through the batched ``run_sweep`` primitive — bit-identical to
    the historical one-fresh-chip-per-voltage measurement because each point
    refreshes the weights before reading.  An ``adaptive`` task covers the
    benchmark's *entire overscaled axis* in one chained
    :meth:`~repro.matic.flow.MaticFlow.deploy_adaptive_sweep` walk —
    memory-adaptive training stays specific to each profiled operating
    point, but profiling, compilation, and (with ``warm_start``) the
    starting weights are shared along the axis; each point's on-chip error
    is measured through the sweep's ``measure`` callback while that point's
    weights are resident.
    """
    prepared: PreparedBenchmark = shared["prepared"][task.benchmark]
    flow: MaticFlow = shared["flow"]
    chip = make_chip(
        seed=shared["chip_seed"] + shared["benchmark_index"][task.benchmark]
    )
    if task.mode == "naive":
        # the axis rides in the task params (not only the shared payload):
        # the result depends on it, so it must participate in task_digest
        voltages = [float(v) for v in task.param("voltages")]
        deployment = flow.deploy_naive(
            chip,
            prepared.spec.topology,
            prepared.train,
            target_voltage=voltages[0],
            loss=prepared.spec.loss,
            initial_network=prepared.baseline,
            profile=False,
        )
        outputs = deployment.run_sweep(prepared.test.inputs, voltages)
        return {
            "benchmark": task.benchmark,
            "mode": "naive",
            "points": [
                {
                    "voltage": float(voltage),
                    "error": prepared.spec.error(batch, prepared.test),
                }
                for voltage, batch in zip(voltages, outputs)
            ],
        }
    else:
        points = flow.deploy_adaptive_sweep(
            chip,
            prepared.spec.topology,
            prepared.train,
            voltages=[float(v) for v in task.param("voltages")],
            loss=prepared.spec.loss,
            initial_network=prepared.baseline,
            select_canaries=False,
            warm_start=bool(task.param("warm_start", True)),
            measure=lambda deployment: prepared.spec.error(
                deployment.run_at(prepared.test.inputs), prepared.test
            ),
        )
        return {
            "benchmark": task.benchmark,
            "mode": "adaptive",
            "points": [
                {
                    "voltage": point.voltage,
                    "error": point.measurement,
                    "fault_rate": float(
                        np.mean(
                            [fm.fault_rate for fm in point.deployment.fault_maps]
                        )
                    ),
                }
                for point in points
            ],
        }


def run_fig10(
    benchmarks: tuple[str, ...] = ("mnist", "facedet", "inversek2j", "bscholes"),
    voltages: tuple[float, ...] = DEFAULT_VOLTAGES,
    num_samples: int | None = None,
    adaptive_epochs: int = 60,
    seed: int = 1,
    chip_seed: int = 11,
    flow: MaticFlow | None = None,
    prepared_benchmarks: dict[str, PreparedBenchmark] | None = None,
    runner: SweepRunner | None = None,
    cache: ArtifactCache | None = None,
    warm_start: bool = True,
) -> Fig10Result:
    """Run the full voltage sweep for the requested benchmarks.

    ``warm_start=False`` retrains every adaptive operating point from the
    pristine baseline under the flow's full training budget — bit-identical
    to the historical per-voltage adaptive flow.
    """
    cache = cache if cache is not None else default_cache()
    flow = flow or default_flow(epochs=adaptive_epochs, seed=seed, cache=cache)
    runner = runner or SweepRunner()

    prepared: dict[str, PreparedBenchmark] = {}
    for name in benchmarks:
        if prepared_benchmarks and name in prepared_benchmarks:
            prepared[name] = prepared_benchmarks[name]
        else:
            prepared[name] = prepare_benchmark(
                name, num_samples=num_samples, seed=seed, cache=cache
            )

    # one batched naive task per benchmark covers the whole voltage axis; at
    # nominal voltage MATIC is a no-op, so the adaptive task covers only the
    # overscaled points (one chained sweep task per benchmark) and the naive
    # error is reused at nominal during assembly
    voltage_axis = tuple(float(voltage) for voltage in voltages)
    overscaled = tuple(v for v in voltage_axis if v < NOMINAL_THRESHOLD)
    grid: list[dict] = []
    for name in benchmarks:
        grid.append({"benchmark": name, "mode": "naive", "voltages": voltage_axis})
        if overscaled:
            grid.append(
                {
                    "benchmark": name,
                    "mode": "adaptive",
                    "voltages": overscaled,
                    "warm_start": bool(warm_start),
                }
            )
    tasks = expand_grid(params=grid, seed=seed)
    shared = {
        "prepared": prepared,
        "flow": flow,
        "chip_seed": chip_seed,
        "benchmark_index": {name: index for index, name in enumerate(benchmarks)},
    }
    measurements, quarantined = partition_quarantined(
        runner.map(_fig10_point_worker, tasks, shared=shared)
    )

    naive_by_point: dict[tuple[str, float], float] = {}
    adaptive_by_point: dict[tuple[str, float], dict] = {}
    for measurement in measurements:
        for point in measurement["points"]:
            key = (measurement["benchmark"], round(point["voltage"], 9))
            if measurement["mode"] == "naive":
                naive_by_point[key] = point["error"]
            else:
                adaptive_by_point[key] = point
    result = Fig10Result(quarantined=quarantine_notes(quarantined))
    for name in benchmarks:
        sweep = BenchmarkSweep(
            benchmark=name,
            metric=prepared[name].spec.error_metric,
            nominal_error=prepared[name].baseline_error,
        )
        for voltage in voltages:
            key = (name, round(float(voltage), 9))
            # a quarantined naive task leaves the whole benchmark's naive
            # curve missing; a quarantined adaptive task leaves every
            # overscaled point — either way the points render with "-"
            # instead of crashing
            naive_error = naive_by_point.get(key)
            adaptive = adaptive_by_point.get(key)
            adaptive_error = adaptive["error"] if adaptive else naive_error
            if voltage < NOMINAL_THRESHOLD and adaptive is None:
                # overscaled points always have an adaptive task; its absence
                # means quarantine, not "MATIC is a no-op here"
                adaptive_error = None
            if adaptive is not None:
                bit_fault_rate = adaptive["fault_rate"]
            elif voltage < NOMINAL_THRESHOLD:
                # the fault rate rides on the quarantined adaptive task, so
                # it was never measured — "-" beats a misleading 0.00%
                bit_fault_rate = None
            else:
                bit_fault_rate = 0.0
            sweep.points.append(
                VoltagePoint(
                    voltage=float(voltage),
                    bit_fault_rate=bit_fault_rate,
                    naive_error=naive_error,
                    adaptive_error=adaptive_error,
                )
            )
        result.sweeps.append(sweep)
    return result


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.fig10_error_vs_voltage`` — Fig. 10."""
    parser = experiment_parser(
        "python -m repro.experiments.fig10_error_vs_voltage",
        "Fig. 10 — application error vs SRAM voltage, naive vs MATIC.",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=["mnist", "facedet", "inversek2j", "bscholes"],
    )
    parser.add_argument(
        "--voltages", type=float, nargs="+", default=list(DEFAULT_VOLTAGES)
    )
    parser.add_argument("--num-samples", type=int, default=None)
    parser.add_argument("--adaptive-epochs", type=int, default=60)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--chip-seed", type=int, default=11)
    parser.add_argument(
        "--warm-start",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="warm-start each adaptive operating point from the neighboring "
        "voltage's converged weights (--no-warm-start retrains every point "
        "from the pristine baseline, bit-identical to the historical flow)",
    )
    args = parser.parse_args(argv)
    return run_experiment_cli(
        args,
        "fig10",
        lambda runner, cache: run_fig10(
            benchmarks=tuple(args.benchmarks),
            voltages=tuple(args.voltages),
            num_samples=args.num_samples,
            adaptive_epochs=args.adaptive_epochs,
            seed=args.seed,
            chip_seed=args.chip_seed,
            runner=runner,
            cache=cache,
            warm_start=args.warm_start,
        ),
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    from repro.experiments.common import dispatch_canonical_main

    raise SystemExit(dispatch_canonical_main(__spec__))
