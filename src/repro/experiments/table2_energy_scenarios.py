"""Table II — energy efficiency with MATIC-enabled voltage scaling.

The paper evaluates three operating scenarios:

``HighPerf``
    Maximum frequency (250 MHz).  Logic must stay at 0.9 V for timing; with
    MATIC the SRAM rail scales down to the SRAM-periphery timing limit
    (0.65 V).  The baseline keeps SRAM at the nominal 0.9 V.
``EnOpt_split``
    Disjoint logic/SRAM rails at the energy-optimal point: logic at its
    minimum-energy voltage (≈0.55 V → 17.8 MHz), SRAM at the
    accuracy-constrained minimum (0.50 V).  The baseline scales logic but
    keeps SRAM at 0.9 V.
``EnOpt_joint``
    A single unified rail: with MATIC both domains sit at the joint
    minimum-energy voltage (≈0.55 V); the baseline cannot scale at all
    because SRAM margins pin the shared rail at 0.9 V.

The driver recomputes every row from the calibrated energy/frequency model:
operating voltages come from the model's timing and minimum-energy searches
(subject to the MATIC accuracy floor), not from hard-coded paper values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..accelerator.energy import OperatingPoint, SnnacEnergyModel
from .common import (
    ExperimentResult,
    experiment_parser,
    fmt,
    partition_quarantined,
    quarantine_notes,
    run_experiment_cli,
)
from .engine import SweepRunner, SweepTask, expand_grid

__all__ = ["ScenarioResult", "Table2Result", "run_table2", "PAPER_TABLE2", "main"]


#: Paper-reported Table II rows (pJ/cycle) for side-by-side comparison.
PAPER_TABLE2 = {
    "HighPerf": {"total": 48.96, "baseline_total": 67.08, "reduction": 1.4},
    "EnOpt_split": {"total": 19.98, "baseline_total": 49.23, "reduction": 2.5},
    "EnOpt_joint": {"total": 20.60, "baseline_total": 67.08, "reduction": 3.3},
}


@dataclass
class ScenarioResult:
    """One scenario row: the MATIC-enabled point and its baseline."""

    name: str
    matic_point: OperatingPoint
    baseline_point: OperatingPoint
    matic_energy: float
    baseline_energy: float
    matic_logic_energy: float
    matic_sram_energy: float
    baseline_logic_energy: float
    baseline_sram_energy: float

    @property
    def reduction(self) -> float:
        return self.baseline_energy / self.matic_energy


@dataclass
class Table2Result:
    scenarios: list[ScenarioResult] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)

    def scenario(self, name: str) -> ScenarioResult:
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise KeyError(f"no scenario named {name!r}")

    def to_experiment_result(self) -> ExperimentResult:
        rows = []
        for scenario in self.scenarios:
            rows.append(
                [
                    scenario.name,
                    f"{scenario.matic_point.logic_voltage:.2f}",
                    f"{scenario.matic_point.sram_voltage:.2f}",
                    f"{scenario.matic_point.frequency / 1e6:.1f}",
                    fmt(scenario.matic_logic_energy, 2),
                    fmt(scenario.matic_sram_energy, 2),
                    fmt(scenario.matic_energy, 2),
                    fmt(scenario.baseline_energy, 2),
                    f"{scenario.reduction:.1f}x",
                    f"{PAPER_TABLE2[scenario.name]['reduction']}x"
                    if scenario.name in PAPER_TABLE2
                    else "-",
                ]
            )
        return ExperimentResult(
            experiment="Table II — energy efficiency with MATIC-enabled scaling",
            headers=[
                "scenario",
                "logic V",
                "SRAM V",
                "freq (MHz)",
                "logic pJ/cyc",
                "SRAM pJ/cyc",
                "total pJ/cyc",
                "baseline pJ/cyc",
                "reduction",
                "paper",
            ],
            rows=rows,
            paper_reference={
                "HighPerf (paper)": "48.96 pJ/cycle, 1.4x",
                "EnOpt_split (paper)": "19.98 pJ/cycle, 2.5x",
                "EnOpt_joint (paper)": "20.60 pJ/cycle, 3.3x",
            },
            quarantined=list(self.quarantined),
        )


def _table2_scenario_worker(shared: dict, task: SweepTask) -> ScenarioResult:
    """Recompute one operating scenario (voltage searches included)."""
    model: SnnacEnergyModel = shared["model"]
    accuracy_floor_voltage = shared["accuracy_floor_voltage"]
    sram_nominal_voltage = shared["sram_nominal_voltage"]
    max_frequency = shared["max_frequency"]
    name = task.mode

    if name == "HighPerf":
        logic_v = model.logic_frequency.min_voltage_for(max_frequency)
        sram_timing_floor = model.sram_frequency.min_voltage_for(max_frequency)
        sram_v = max(accuracy_floor_voltage, sram_timing_floor)
        matic_point = OperatingPoint(logic_v, sram_v, max_frequency, "HighPerf")
        baseline_point = OperatingPoint(
            logic_v, sram_nominal_voltage, max_frequency, "HighPerf_base"
        )
    elif name == "EnOpt_split":
        logic_mep_voltage, logic_mep_frequency = model.logic_minimum_energy_point()
        sram_v = max(
            accuracy_floor_voltage,
            model.sram_frequency.min_voltage_for(logic_mep_frequency),
        )
        matic_point = OperatingPoint(
            logic_mep_voltage, sram_v, logic_mep_frequency, "EnOpt_split"
        )
        baseline_point = OperatingPoint(
            logic_mep_voltage, sram_nominal_voltage, logic_mep_frequency, "EnOpt_split_base"
        )
    elif name == "EnOpt_joint":
        joint_voltage, joint_frequency = model.joint_minimum_energy_point(
            min_sram_voltage=accuracy_floor_voltage
        )
        matic_point = OperatingPoint(
            joint_voltage, joint_voltage, joint_frequency, "EnOpt_joint"
        )
        # a unified rail cannot scale below the SRAM's nominal requirement
        # without MATIC, so the baseline stays at nominal voltage and frequency
        baseline_point = OperatingPoint(
            sram_nominal_voltage, sram_nominal_voltage, max_frequency, "EnOpt_joint_base"
        )
    else:
        raise ValueError(f"unknown scenario {name!r}")
    return _scenario(name, model, matic_point, baseline_point)


def run_table2(
    energy_model: SnnacEnergyModel | None = None,
    accuracy_floor_voltage: float = 0.50,
    sram_nominal_voltage: float = 0.90,
    max_frequency: float = 250.0e6,
    runner: SweepRunner | None = None,
) -> Table2Result:
    """Recompute the Table II scenarios from the calibrated chip model.

    ``accuracy_floor_voltage`` is the lowest SRAM voltage at which the
    deployed memory-adaptive models still meet their accuracy target — the
    MATIC knob that turns voltage scaling into an accuracy/energy trade-off.
    Each scenario is one engine task on the in-process path (the analytic
    model evaluations are far cheaper than a worker pool).
    """
    model = energy_model or SnnacEnergyModel()
    runner = runner or SweepRunner(parallel=False)
    scenario_names = ("HighPerf", "EnOpt_split", "EnOpt_joint")
    tasks = expand_grid(modes=scenario_names)
    shared = {
        "model": model,
        "accuracy_floor_voltage": accuracy_floor_voltage,
        "sram_nominal_voltage": sram_nominal_voltage,
        "max_frequency": max_frequency,
    }
    result = Table2Result()
    scenarios, quarantined = partition_quarantined(
        runner.map(_table2_scenario_worker, tasks, shared=shared)
    )
    result.scenarios.extend(scenarios)
    result.quarantined.extend(quarantine_notes(quarantined))
    return result


def _scenario(
    name: str,
    model: SnnacEnergyModel,
    matic_point: OperatingPoint,
    baseline_point: OperatingPoint,
) -> ScenarioResult:
    matic_breakdown = model.breakdown(matic_point)
    baseline_breakdown = model.breakdown(baseline_point)
    return ScenarioResult(
        name=name,
        matic_point=matic_point,
        baseline_point=baseline_point,
        matic_energy=matic_breakdown.total,
        baseline_energy=baseline_breakdown.total,
        matic_logic_energy=matic_breakdown.logic_total,
        matic_sram_energy=matic_breakdown.sram_total,
        baseline_logic_energy=baseline_breakdown.logic_total,
        baseline_sram_energy=baseline_breakdown.sram_total,
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.table2_energy_scenarios`` — Table II."""
    parser = experiment_parser(
        "python -m repro.experiments.table2_energy_scenarios",
        "Table II — energy scenarios (HighPerf, EnOpt_split, EnOpt_joint).",
    )
    parser.add_argument("--accuracy-floor-voltage", type=float, default=0.50)
    parser.add_argument("--sram-nominal-voltage", type=float, default=0.90)
    parser.add_argument("--max-frequency", type=float, default=250.0e6)
    args = parser.parse_args(argv)
    return run_experiment_cli(
        args,
        "table2",
        lambda runner, cache: run_table2(
            accuracy_floor_voltage=args.accuracy_floor_voltage,
            sram_nominal_voltage=args.sram_nominal_voltage,
            max_frequency=args.max_frequency,
            runner=runner,
        ),
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    from repro.experiments.common import dispatch_canonical_main

    raise SystemExit(dispatch_canonical_main(__spec__))
