"""Fig. 12 — closed-loop SRAM voltage control under temperature variation.

The paper sweeps ambient temperature from −15 °C to 90 °C in a temperature
chamber while the in-situ canary controller re-adjusts the SRAM rail between
inferences.  Because the experiments run below the 65 nm process's
temperature-inversion point, the required SRAM voltage *falls* as temperature
rises — the canary-tracked rail shows that inverse relationship, where a
conventional design would have carried a static worst-case margin.

The driver deploys the ``inversek2j`` benchmark with the full MATIC flow
(0.50 V target, as in the paper), then steps a simulated chamber through the
paper's temperature schedule; at each stabilized point the canary controller
runs Algorithm 1 and the resulting rail voltage plus the on-chip application
error are recorded.

The walk is expressed as an
:class:`~repro.sram.variation.EnvironmentTrajectory` — the chamber schedule
is lifted into a trajectory, so drift scenarios (an aging V_min shift
accumulating over the dwell times) reuse this driver unchanged via the
``trajectory`` argument or the ``--aging-rate`` / ``--dwell-hours`` flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..matic.flow import MaticDeployment
from ..sram.variation import (
    EnvironmentalConditions,
    EnvironmentTrajectory,
    TemperatureChamber,
)
from .cache import ArtifactCache, default_cache
from .common import (
    ExperimentResult,
    default_flow,
    experiment_parser,
    fmt,
    make_chip,
    partition_quarantined,
    prepare_benchmark,
    quarantine_notes,
    run_experiment_cli,
)
from .engine import SweepRunner, SweepTask, expand_grid

__all__ = ["TemperatureStep", "Fig12Result", "run_fig12", "main"]


@dataclass
class TemperatureStep:
    """Controller outcome at one stabilized trajectory step."""

    temperature: float
    sram_voltage: float
    canary_failure_voltage: float | None
    application_error: float
    #: accumulated aging/drift V_min shift active at this step, volts
    vmin_shift: float = 0.0


@dataclass
class Fig12Result:
    benchmark: str
    target_voltage: float
    nominal_error: float
    steps: list[TemperatureStep] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)

    @property
    def voltage_temperature_correlation(self) -> float:
        """Pearson correlation between temperature and regulated voltage.

        Negative values confirm the inverse relationship of Fig. 12.
        """
        temperatures = np.array([step.temperature for step in self.steps])
        voltages = np.array([step.sram_voltage for step in self.steps])
        if len(self.steps) < 2 or np.std(voltages) == 0:
            return 0.0
        return float(np.corrcoef(temperatures, voltages)[0, 1])

    def to_experiment_result(self) -> ExperimentResult:
        rows = [
            [
                f"{step.temperature:.0f}",
                f"{step.sram_voltage:.3f}",
                "-" if step.canary_failure_voltage is None else f"{step.canary_failure_voltage:.3f}",
                fmt(step.application_error),
            ]
            for step in self.steps
        ]
        return ExperimentResult(
            experiment="Fig. 12 — canary-controlled SRAM voltage vs ambient temperature",
            headers=["temp (°C)", "SRAM voltage (V)", "canary fail V", "app. error"],
            rows=rows,
            paper_reference={
                "relationship": "inverse (below temperature inversion): hotter chip → lower "
                "canary-tracked SRAM voltage",
                "initial setting": "0.5 V at the nominal temperature on inversek2j",
            },
            notes=(
                f"temperature/voltage correlation = {self.voltage_temperature_correlation:+.2f} "
                "(negative confirms the paper's inverse tracking)"
            ),
            quarantined=list(self.quarantined),
        )


def _fig12_step_worker(shared: dict, task: SweepTask) -> TemperatureStep:
    """Execute one stabilized chamber step on the shared chip.

    The chamber schedule intentionally walks *one* chip through consecutive
    conditions (regulator state and storage corruption carry across steps,
    as in the physical experiment), so these tasks run on the engine's
    serial path and share live objects through the payload.
    """
    deployment: MaticDeployment = shared["deployment"]
    prepared = shared["prepared"]
    conditions: EnvironmentalConditions = shared["conditions"][task.index]
    chip = deployment.chip
    chip.set_environment(conditions)
    trace = deployment.controller.regulate(safe_voltage=shared["safe_voltage"])
    outputs, _ = chip.run_inference(prepared.test.inputs)
    error = prepared.spec.error(outputs, prepared.test)
    return TemperatureStep(
        temperature=conditions.temperature,
        sram_voltage=trace.final_voltage,
        canary_failure_voltage=trace.canary_failure_voltage,
        application_error=error,
        vmin_shift=conditions.vmin_shift,
    )


#: Why Fig. 12 refuses ``--shard``: the walk is one physical experiment, not
#: a grid of independent points.
_SHARD_REJECTION = (
    "the Fig. 12 trajectory walk is stateful and cannot be sharded: each step "
    "inherits the previous step's regulator setting and persistent storage "
    "corruption, so splitting the walk across shards would change the physics. "
    "Run it unsharded (e.g. --workers 1) instead."
)


def run_fig12(
    benchmark: str = "inversek2j",
    target_voltage: float = 0.50,
    num_samples: int | None = None,
    adaptive_epochs: int = 50,
    seed: int = 1,
    chip_seed: int = 11,
    safe_voltage: float = 0.60,
    chamber: TemperatureChamber | None = None,
    trajectory: EnvironmentTrajectory | None = None,
    dwell_hours: float = 1.0,
    aging_vmin_shift_per_hour: float = 0.0,
    deployment: MaticDeployment | None = None,
    runner: SweepRunner | None = None,
    cache: ArtifactCache | None = None,
) -> Fig12Result:
    """Run the trajectory experiment with the canary controller.

    ``trajectory`` defaults to the paper's chamber schedule lifted into an
    :class:`~repro.sram.variation.EnvironmentTrajectory` (``chamber``,
    ``dwell_hours``, and ``aging_vmin_shift_per_hour`` parameterize the
    lift); pass a custom trajectory to run arbitrary timed condition walks
    through the same driver.

    The walk is *stateful* (regulator state and storage corruption carry
    from step to step), so any provided ``runner`` is forced onto the
    engine's in-process serial path and sharding is rejected — splitting
    the walk across hosts would change the physics.
    """
    if runner is not None and runner.shard is not None:
        raise ValueError(_SHARD_REJECTION)
    cache = cache if cache is not None else default_cache()
    prepared = prepare_benchmark(
        benchmark, num_samples=num_samples, seed=seed, cache=cache
    )
    if deployment is None:
        chip = make_chip(seed=chip_seed)
        flow = default_flow(epochs=adaptive_epochs, seed=seed, cache=cache)
        deployment = flow.deploy_adaptive(
            chip,
            prepared.spec.topology,
            prepared.train,
            target_voltage=target_voltage,
            loss=prepared.spec.loss,
            initial_network=prepared.baseline,
            select_canaries=True,
        )
    if deployment.controller is None:
        raise ValueError("the deployment has no canary controller")
    # fine-grained regulator steps make the temperature tracking visible
    # (the paper's Fig. 12 voltage steps are on the order of 10 mV)
    deployment.controller.voltage_step = 0.005

    if trajectory is None:
        trajectory = EnvironmentTrajectory.from_chamber(
            chamber or TemperatureChamber(),
            dwell_hours=dwell_hours,
            aging_vmin_shift_per_hour=aging_vmin_shift_per_hour,
        )
    conditions = trajectory.conditions()
    result = Fig12Result(
        benchmark=benchmark,
        target_voltage=target_voltage,
        nominal_error=prepared.baseline_error,
    )

    # state carries between chamber steps: force the engine's serial path
    runner = (
        SweepRunner(parallel=False)
        if runner is None
        else replace(runner, parallel=False, shard=None)
    )
    tasks = expand_grid(
        params=[{"temperature": c.temperature} for c in conditions], seed=seed
    )
    shared = {
        "deployment": deployment,
        "prepared": prepared,
        "conditions": conditions,
        "safe_voltage": safe_voltage,
    }
    # the forced serial path cannot normally quarantine, but a shard-merged
    # store may still recall poison sentinels — render, don't crash
    steps, quarantined = partition_quarantined(
        runner.map(_fig12_step_worker, tasks, shared=shared)
    )
    result.steps.extend(steps)
    result.quarantined.extend(quarantine_notes(quarantined))
    # leave the chamber back at nominal conditions
    deployment.chip.set_environment(EnvironmentalConditions())
    return result


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.fig12_temperature`` — Fig. 12."""
    parser = experiment_parser(
        "python -m repro.experiments.fig12_temperature",
        "Fig. 12 — canary-controlled SRAM voltage vs ambient temperature.",
    )
    parser.add_argument("--benchmark", default="inversek2j")
    parser.add_argument("--target-voltage", type=float, default=0.50)
    parser.add_argument("--num-samples", type=int, default=None)
    parser.add_argument("--adaptive-epochs", type=int, default=50)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--chip-seed", type=int, default=11)
    parser.add_argument("--safe-voltage", type=float, default=0.60)
    parser.add_argument(
        "--dwell-hours",
        type=float,
        default=1.0,
        help="hours spent stabilized at each trajectory step",
    )
    parser.add_argument(
        "--aging-rate",
        type=float,
        default=0.0,
        help="aging V_min drift in volts per hour, accumulated over the walk",
    )
    args = parser.parse_args(argv)
    if args.shard is not None:
        parser.error(_SHARD_REJECTION)
    return run_experiment_cli(
        args,
        "fig12",
        lambda runner, cache: run_fig12(
            benchmark=args.benchmark,
            target_voltage=args.target_voltage,
            num_samples=args.num_samples,
            adaptive_epochs=args.adaptive_epochs,
            seed=args.seed,
            chip_seed=args.chip_seed,
            safe_voltage=args.safe_voltage,
            dwell_hours=args.dwell_hours,
            aging_vmin_shift_per_hour=args.aging_rate,
            runner=runner,
            cache=cache,
        ),
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    from repro.experiments.common import dispatch_canonical_main

    raise SystemExit(dispatch_canonical_main(__spec__))
