"""Variation scenarios — Vmin/yield and MATIC error under correlated variation.

The paper's Monte Carlo samples every bit-cell i.i.d., which flatters
large-array Vmin/yield extrapolation: real banks share peripherals (wordline
drivers per row, sense amps per column group, die-level gradients), so
failures cluster.  This driver makes the variation *scenario* a sweep axis —
correlation shape × strength × workload — and reports, per grid point:

* the **die Vmin distribution** (the voltage at which a die's aggregate
  bit-fault rate reaches the target) and the **yield** at the target voltage
  across a batch of sampled dies,
* **clustering diagnostics** of the fault maps (run lengths, adjacent-cell
  autocorrelation — :meth:`~repro.sram.fault_map.FaultMap.clustering_summary`),
* **MATIC-vs-naive application error** on a representative die, and
* a **canary-placement comparison**: pure-margin ordering versus spatially
  stratified placement (region coverage, and whether each policy detects a
  localized V_min disturbance injected into one die region).

Because every scenario maps the same standard-normal field through the same
marginal transform, correlation strengths redistribute variance without
changing any cell's marginal law — so Vmin/yield *shifts* between i.i.d. and
correlated rows are a pure clustering effect, measured at equal marginal
variance.  With ``shape=iid`` the sampled populations are bit-identical to
the legacy models (``benchmarks/bench_variation.py`` proves it).

Like every driver, the grid expands into independent seeded tasks and runs
through the sweep engine — all backends, ``--shard i/n``, ``--stream``; the
sharded merge is bit-identical to an unsharded run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..matic.canary import CanarySelector
from ..matic.flow import MaticFlow
from ..sram import calibration
from ..sram.array import SramBank, WeightMemorySystem
from ..sram.variation import CorrelationSpec, VariationScenario
from .cache import ArtifactCache, default_cache
from .common import (
    ExperimentResult,
    PreparedBenchmark,
    default_flow,
    experiment_parser,
    fmt,
    fmt_percent,
    make_chip,
    partition_quarantined,
    prepare_benchmark,
    quarantine_notes,
    run_experiment_cli,
)
from .engine import SweepRunner, SweepTask, expand_grid

__all__ = [
    "VariationPoint",
    "VariationScenariosResult",
    "run_variation_scenarios",
    "DEFAULT_SHAPES",
    "DEFAULT_STRENGTHS",
    "DEFAULT_BENCHMARKS",
    "main",
]

#: Default correlation shapes: the zero-correlation reference plus one
#: single-component shape per shared peripheral and the mixed split.
DEFAULT_SHAPES = ("iid", "row", "region", "mixed")

#: Default correlation strengths (total shared-variance fraction); ``iid``
#: ignores them and contributes a single 0.0 row.
DEFAULT_STRENGTHS = (0.3, 0.6)

#: Default workload (the paper's Fig. 12 benchmark).
DEFAULT_BENCHMARKS = ("inversek2j",)

#: Localized V_min disturbance injected into one die region for the
#: canary-detection comparison, volts.
_REGIONAL_DISTURBANCE = 0.03


@dataclass
class VariationPoint:
    """Measurements for one (benchmark, shape, strength) grid point.

    Unmeasured fields are ``None`` rather than NaN: points round-trip
    through the shard store's pickle channel, and NaN's self-inequality
    would make bit-identical merge comparisons spuriously fail.
    """

    benchmark: str
    shape: str
    strength: float
    scenario_digest: str
    num_dies: int
    #: per-die Vmin at the target fault rate: mean / std / max across dies
    vmin_mean: float
    vmin_std: float
    vmin_max: float
    #: fraction of dies whose Vmin is at or below the target voltage
    yield_fraction: float
    #: aggregate bit-fault rate of die 0 at the target voltage
    fault_rate: float
    #: clustering diagnostics averaged over die 0's banks
    mean_row_run: float
    mean_column_run: float
    row_autocorrelation: float
    column_autocorrelation: float
    naive_error: float | None = None
    adaptive_error: float | None = None
    #: distinct die regions covered by each canary-placement policy (die 0)
    margin_regions: int = 0
    stratified_regions: int = 0
    #: whether each policy detects the injected regional disturbance (die 0)
    margin_detects: bool = False
    stratified_detects: bool = False


@dataclass
class VariationScenariosResult:
    points: list[VariationPoint] = field(default_factory=list)
    voltage: float = 0.50
    target_fault_rate: float = 0.01
    quarantined: list[str] = field(default_factory=list)

    def points_for(self, shape: str) -> list[VariationPoint]:
        return [point for point in self.points if point.shape == shape]

    def to_experiment_result(self) -> ExperimentResult:
        rows = []
        for p in self.points:
            rows.append(
                [
                    p.benchmark,
                    p.shape,
                    fmt(p.strength, 2),
                    fmt(p.vmin_mean) + " ± " + fmt(p.vmin_std),
                    fmt_percent(p.yield_fraction, 0),
                    fmt(p.mean_row_run, 2),
                    fmt(p.row_autocorrelation, 3),
                    "-" if p.naive_error is None else fmt(p.naive_error),
                    "-" if p.adaptive_error is None else fmt(p.adaptive_error),
                    f"{p.margin_regions}/{p.stratified_regions}",
                    ("yes" if p.margin_detects else "no")
                    + "/"
                    + ("yes" if p.stratified_detects else "no"),
                ]
            )
        return ExperimentResult(
            experiment=(
                f"Variation scenarios — die Vmin/yield and MATIC error vs "
                f"correlation (target {self.voltage:.2f} V, "
                f"{self.target_fault_rate:.0%} fault-rate Vmin)"
            ),
            headers=[
                "workload",
                "shape",
                "strength",
                "die Vmin (V)",
                "yield",
                "row run",
                "row corr",
                "naive err",
                "MATIC err",
                "regions m/s",
                "detects m/s",
            ],
            rows=rows,
            paper_reference={
                "variation model": "the paper samples every bit-cell i.i.d.; "
                "correlated rows are this repo's extension (ROADMAP)",
            },
            notes=(
                "All shapes share the i.i.d. model's per-cell marginals (equal "
                "marginal variance); shifts are pure clustering effects.  "
                "'regions/detects m/s' compare margin vs stratified canary "
                "placement on a localized Vmin disturbance "
                f"(+{_REGIONAL_DISTURBANCE:.2f} V on one die region).  "
                "See docs/variation.md."
            ),
            quarantined=list(self.quarantined),
        )


def _region_of(address: int, num_regions: int, span: int) -> int:
    """Contiguous-block die region of a word address (clamped)."""
    regions = max(min(num_regions, span), 1)
    return min(address * regions // span, regions - 1)


def _canary_comparison(
    bank_canaries: dict[int, list],
    memory: WeightMemorySystem,
    spec: CorrelationSpec,
    voltage: float,
    temperature: float,
    used_words_per_bank: list[int],
) -> tuple[int, bool]:
    """(distinct regions covered, disturbance detected) for one policy.

    Regions are computed over each bank's *deployed* address span — the same
    span the stratified selector uses — because synaptic canaries can only
    live in words the model occupies.  The disturbance adds
    ``_REGIONAL_DISTURBANCE`` volts to every cell of the last region of that
    span; a canary flags it when its cell's shifted effective V_min crosses
    the rail voltage *and* the flip is observable (the stored expected value
    differs from the cell's preferred state).  Computed array-side, without
    mutating the banks.
    """
    covered: set[int] = set()
    detected = False
    for bank_index, canaries in bank_canaries.items():
        bank: SramBank = memory[bank_index]
        vmin = bank.effective_vmin(temperature)
        span = max(min(int(used_words_per_bank[bank_index]), bank.num_words), 1)
        disturbed_region = max(min(spec.num_regions, span), 1) - 1
        for canary in canaries:
            region = _region_of(canary.address, spec.num_regions, span)
            covered.add(region)
            if region != disturbed_region:
                continue
            shifted = vmin[canary.address, canary.bit] + _REGIONAL_DISTURBANCE
            preferred = int(bank.cells.preferred_state[canary.address, canary.bit])
            if shifted > voltage and preferred != canary.expected_value:
                detected = True
    return len(covered), detected


def _variation_point_worker(shared: dict, task: SweepTask) -> VariationPoint:
    """Measure one (benchmark, shape, strength) grid point."""
    prepared: PreparedBenchmark = shared["prepared"][task.benchmark]
    flow: MaticFlow = shared["flow"]
    shape = str(task.param("shape"))
    strength = float(task.param("strength"))
    voltage = float(shared["voltage"])
    temperature = calibration.NOMINAL_TEMPERATURE
    target_rate = float(shared["target_fault_rate"])
    num_dies = int(shared["num_dies"])
    num_pes = int(shared["num_pes"])
    words_per_bank = int(shared["words_per_bank"])

    spec = CorrelationSpec.from_shape(shape, strength)
    scenario = VariationScenario(
        name=f"{shape}-{strength:.2f}-tt", correlation=spec
    )
    # chip seed derives from the task's content-stable seed, so sharded and
    # reordered grids sample identical per-point dies
    base_seed = shared["chip_seed"] + int(task.seed) % 1_000_003

    die_vmins = []
    die0_summaries = []
    die0_fault_rate = 0.0
    for die in range(num_dies):
        memory = WeightMemorySystem.build(
            num_banks=num_pes,
            words_per_bank=words_per_bank,
            word_bits=16,
            scenario=scenario,
            seed=base_seed + die,
        )
        vmin = np.concatenate(
            [bank.effective_vmin(temperature).ravel() for bank in memory]
        )
        # the die's Vmin at the target fault rate: fault_rate(v) <= target
        # exactly when v >= this quantile of the effective V_min population
        die_vmins.append(float(np.quantile(vmin, 1.0 - target_rate)))
        if die == 0:
            die0_fault_rate = memory.fault_rate_at(voltage, temperature)
            die0_summaries = [
                fault_map.clustering_summary()
                for fault_map in memory.fault_maps_at(voltage, temperature)
            ]

    die_vmins_array = np.asarray(die_vmins)
    yield_fraction = float(np.mean(die_vmins_array <= voltage))

    def _mean(key: str) -> float:
        return float(np.mean([summary[key] for summary in die0_summaries]))

    # --- MATIC vs naive application error on die 0 -----------------------
    naive_error = adaptive_error = None
    margin_regions = stratified_regions = 0
    margin_detects = stratified_detects = False
    if shared["measure_error"]:
        naive_chip = make_chip(
            seed=base_seed,
            words_per_bank=words_per_bank,
            num_pes=num_pes,
            scenario=scenario,
        )
        naive = flow.deploy_naive(
            naive_chip,
            prepared.spec.topology,
            prepared.train,
            target_voltage=voltage,
            loss=prepared.spec.loss,
            initial_network=prepared.baseline,
            profile=False,
        )
        outputs = naive.run_at(prepared.test.inputs)
        naive_error = float(prepared.spec.error(outputs, prepared.test))

        adaptive_chip = make_chip(
            seed=base_seed,
            words_per_bank=words_per_bank,
            num_pes=num_pes,
            scenario=scenario,
        )
        deployment = flow.deploy_adaptive(
            adaptive_chip,
            prepared.spec.topology,
            prepared.train,
            target_voltage=voltage,
            loss=prepared.spec.loss,
            initial_network=prepared.baseline,
            select_canaries=False,
        )
        outputs = deployment.run_at(prepared.test.inputs)
        adaptive_error = float(prepared.spec.error(outputs, prepared.test))

        # --- canary-placement comparison on the deployed die -------------
        used = deployment.program.placement.words_used_per_pe
        for placement in ("margin", "stratified"):
            selector = CanarySelector(
                canaries_per_bank=int(shared["canaries_per_bank"]),
                strategy="oracle",
                placement=placement,
            )
            canaries = selector.select(
                adaptive_chip.memory,
                voltage,
                temperature=temperature,
                used_words_per_bank=used,
            )
            per_bank: dict[int, list] = {}
            for canary in canaries:
                per_bank.setdefault(canary.bank, []).append(canary)
            regions, detects = _canary_comparison(
                per_bank, adaptive_chip.memory, spec, voltage, temperature, used
            )
            if placement == "margin":
                margin_regions, margin_detects = regions, detects
            else:
                stratified_regions, stratified_detects = regions, detects

    return VariationPoint(
        benchmark=task.benchmark,
        shape=shape,
        strength=strength,
        scenario_digest=scenario.digest(),
        num_dies=num_dies,
        vmin_mean=float(die_vmins_array.mean()),
        vmin_std=float(die_vmins_array.std()),
        vmin_max=float(die_vmins_array.max()),
        yield_fraction=yield_fraction,
        fault_rate=float(die0_fault_rate),
        mean_row_run=_mean("mean_row_run"),
        mean_column_run=_mean("mean_column_run"),
        row_autocorrelation=_mean("row_autocorrelation"),
        column_autocorrelation=_mean("column_autocorrelation"),
        naive_error=naive_error,
        adaptive_error=adaptive_error,
        margin_regions=margin_regions,
        stratified_regions=stratified_regions,
        margin_detects=margin_detects,
        stratified_detects=stratified_detects,
    )


def run_variation_scenarios(
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    shapes: tuple[str, ...] = DEFAULT_SHAPES,
    strengths: tuple[float, ...] = DEFAULT_STRENGTHS,
    voltage: float = 0.50,
    target_fault_rate: float = 0.01,
    num_dies: int = 8,
    num_pes: int = 8,
    words_per_bank: int = 512,
    canaries_per_bank: int = 8,
    measure_error: bool = True,
    num_samples: int | None = None,
    adaptive_epochs: int = 50,
    seed: int = 1,
    chip_seed: int = 11,
    flow: MaticFlow | None = None,
    runner: SweepRunner | None = None,
    cache: ArtifactCache | None = None,
) -> VariationScenariosResult:
    """Run the correlation-scenario grid for the requested workloads.

    ``shape="iid"`` contributes exactly one grid row (strength 0.0)
    regardless of ``strengths`` — it is the zero-correlation reference every
    correlated row is compared against.
    """
    cache = cache if cache is not None else default_cache()
    flow = flow or default_flow(epochs=adaptive_epochs, seed=seed, cache=cache)
    runner = runner or SweepRunner()

    prepared = {
        name: prepare_benchmark(name, num_samples=num_samples, seed=seed, cache=cache)
        for name in benchmarks
    }

    grid = []
    for name in benchmarks:
        for shape in shapes:
            if shape == "iid":
                grid.append({"benchmark": name, "shape": "iid", "strength": 0.0})
            else:
                for strength in strengths:
                    grid.append(
                        {
                            "benchmark": name,
                            "shape": str(shape),
                            "strength": float(strength),
                        }
                    )
    tasks = expand_grid(params=grid, seed=seed)
    shared = {
        "prepared": prepared,
        "flow": flow,
        "voltage": float(voltage),
        "target_fault_rate": float(target_fault_rate),
        "num_dies": int(num_dies),
        "num_pes": int(num_pes),
        "words_per_bank": int(words_per_bank),
        "canaries_per_bank": int(canaries_per_bank),
        "measure_error": bool(measure_error),
        "chip_seed": int(chip_seed),
    }
    points, quarantined = partition_quarantined(
        runner.map(_variation_point_worker, tasks, shared=shared)
    )
    return VariationScenariosResult(
        points=list(points),
        voltage=float(voltage),
        target_fault_rate=float(target_fault_rate),
        quarantined=quarantine_notes(quarantined),
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.variation_scenarios`` — scenario sweep."""
    parser = experiment_parser(
        "python -m repro.experiments.variation_scenarios",
        "Variation scenarios — die Vmin/yield, clustering, and MATIC error "
        "vs correlation shape x strength x workload.",
    )
    parser.add_argument("--benchmarks", nargs="+", default=list(DEFAULT_BENCHMARKS))
    parser.add_argument(
        "--shapes",
        nargs="+",
        default=list(DEFAULT_SHAPES),
        choices=("iid", "row", "column", "region", "mixed"),
    )
    parser.add_argument(
        "--strengths", type=float, nargs="+", default=list(DEFAULT_STRENGTHS)
    )
    parser.add_argument("--voltage", type=float, default=0.50)
    parser.add_argument("--target-fault-rate", type=float, default=0.01)
    parser.add_argument("--num-dies", type=int, default=8)
    parser.add_argument("--num-pes", type=int, default=8)
    parser.add_argument("--words-per-bank", type=int, default=512)
    parser.add_argument("--canaries-per-bank", type=int, default=8)
    parser.add_argument(
        "--skip-error",
        action="store_true",
        help="skip the MATIC/naive deployments (Vmin/yield statistics only)",
    )
    parser.add_argument("--num-samples", type=int, default=None)
    parser.add_argument("--adaptive-epochs", type=int, default=50)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--chip-seed", type=int, default=11)
    args = parser.parse_args(argv)
    return run_experiment_cli(
        args,
        "variation_scenarios",
        lambda runner, cache: run_variation_scenarios(
            benchmarks=tuple(args.benchmarks),
            shapes=tuple(args.shapes),
            strengths=tuple(args.strengths),
            voltage=args.voltage,
            target_fault_rate=args.target_fault_rate,
            num_dies=args.num_dies,
            num_pes=args.num_pes,
            words_per_bank=args.words_per_bank,
            canaries_per_bank=args.canaries_per_bank,
            measure_error=not args.skip_error,
            num_samples=args.num_samples,
            adaptive_epochs=args.adaptive_epochs,
            seed=args.seed,
            chip_seed=args.chip_seed,
            runner=runner,
            cache=cache,
        ),
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    from repro.experiments.common import dispatch_canonical_main

    raise SystemExit(dispatch_canonical_main(__spec__))
