"""Table I — DNN benchmarks and application error measurements.

Regenerates the paper's headline application-error table: for each of the
four benchmarks it reports the nominal-voltage error, the naive and
memory-adaptive errors at 0.50 V (the energy-optimal SRAM voltage) and at
0.46 V (where error increases significantly), the average error increase
(AEI) of both modes over the overscaled voltage range, and the AEI reduction
factor MATIC delivers.  The final row is the benchmark-average AEI reduction
(the paper reports 18.6×).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

import numpy as np

from .common import (
    ExperimentResult,
    experiment_parser,
    fmt,
    fmt_percent,
    prepare_benchmark,
    run_experiment_cli,
)
from .fig10_error_vs_voltage import DEFAULT_VOLTAGES, Fig10Result, run_fig10

__all__ = ["Table1Row", "Table1Result", "run_table1", "PAPER_TABLE1", "main"]


#: The paper's Table I values (error rates as fractions, MSE as reported).
PAPER_TABLE1 = {
    "mnist": {
        "topology": "100-32-10",
        "nominal": 0.094,
        "naive_050": 0.707,
        "adaptive_050": 0.130,
        "naive_046": 0.840,
        "adaptive_046": 0.156,
        "aei_reduction": 12.5,
    },
    "facedet": {
        "topology": "400-8-1",
        "nominal": 0.125,
        "naive_050": 0.336,
        "adaptive_050": 0.156,
        "naive_046": 0.477,
        "adaptive_046": 0.158,
        "aei_reduction": 6.7,
    },
    "inversek2j": {
        "topology": "2-16-2",
        "nominal": 0.032,
        "naive_050": 0.169,
        "adaptive_050": 0.040,
        "naive_046": 0.245,
        "adaptive_046": 0.050,
        "aei_reduction": 26.7,
    },
    "bscholes": {
        "topology": "6-16-1",
        "nominal": 0.021,
        "naive_050": 0.094,
        "adaptive_050": 0.023,
        "naive_046": 0.094,
        "adaptive_046": 0.026,
        "aei_reduction": 28.4,
    },
    "average_aei_reduction": 18.6,
}


@dataclass
class Table1Row:
    """Regenerated Table I entries for one benchmark.

    Measurement fields are ``None`` when the underlying Fig. 10 task was
    quarantined in a merged sweep; those cells render "-" and the AEI
    reduction is undefined for the row.
    """

    benchmark: str
    topology: str
    metric: str
    nominal_error: float
    naive_050: float | None
    adaptive_050: float | None
    naive_046: float | None
    adaptive_046: float | None
    naive_aei: float | None
    adaptive_aei: float | None

    @property
    def aei_reduction(self) -> float | None:
        if self.naive_aei is None or self.adaptive_aei is None:
            return None
        if self.adaptive_aei <= 0:
            return float("inf")
        return self.naive_aei / self.adaptive_aei


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)
    sweep: Fig10Result | None = None

    @property
    def average_aei_reduction(self) -> float:
        finite = [
            row.aei_reduction
            for row in self.rows
            if row.aei_reduction is not None and np.isfinite(row.aei_reduction)
        ]
        if not finite:
            return float("inf")
        return float(np.mean(finite))

    def to_experiment_result(self) -> ExperimentResult:
        table_rows = []
        for row in self.rows:
            formatter = fmt_percent if row.metric == "classification" else fmt
            table_rows.append(
                [
                    row.benchmark,
                    row.topology,
                    formatter(row.nominal_error),
                    formatter(row.naive_050),
                    formatter(row.adaptive_050),
                    formatter(row.naive_046),
                    formatter(row.adaptive_046),
                    fmt_percent(row.naive_aei),
                    fmt_percent(row.adaptive_aei),
                    "-" if row.aei_reduction is None else f"{row.aei_reduction:.1f}x",
                ]
            )
        table_rows.append(
            ["average", "-", "-", "-", "-", "-", "-", "-", "-", f"{self.average_aei_reduction:.1f}x"]
        )
        paper = {
            f"{name} AEI reduction (paper)": f"{values['aei_reduction']}x"
            for name, values in PAPER_TABLE1.items()
            if isinstance(values, dict)
        }
        paper["average AEI reduction (paper)"] = f"{PAPER_TABLE1['average_aei_reduction']}x"
        return ExperimentResult(
            experiment="Table I — application error, naive vs memory-adaptive",
            headers=[
                "benchmark",
                "topology",
                "nominal",
                "naive@0.50V",
                "adapt@0.50V",
                "naive@0.46V",
                "adapt@0.46V",
                "naive AEI",
                "adapt AEI",
                "AEI reduction",
            ],
            rows=table_rows,
            paper_reference=paper,
            notes=(
                "AEI (average error increase) is computed over the overscaled voltages of "
                "the Fig. 10 sweep, relative to each benchmark's nominal error — the same "
                "definition the paper averages to its 18.6x headline number."
            ),
            quarantined=list(self.sweep.quarantined) if self.sweep is not None else [],
        )


def run_table1(
    benchmarks: tuple[str, ...] = ("mnist", "facedet", "inversek2j", "bscholes"),
    voltages: tuple[float, ...] = DEFAULT_VOLTAGES,
    num_samples: int | None = None,
    adaptive_epochs: int = 60,
    seed: int = 1,
    sweep: Fig10Result | None = None,
    runner=None,
    cache=None,
    warm_start: bool = True,
) -> Table1Result:
    """Regenerate Table I (reusing a Fig. 10 sweep when provided).

    When no sweep is handed in, the underlying Fig. 10 grid runs through the
    sweep engine — with a warm artifact cache the shared baselines and
    memory-adaptive trainings are all recalled rather than retrained, and
    each benchmark's naive column is one batched
    :meth:`~repro.accelerator.npu.Npu.run_sweep` over the whole voltage axis
    (see :func:`~repro.experiments.fig10_error_vs_voltage.run_fig10`).
    """
    if sweep is None:
        sweep = run_fig10(
            benchmarks=benchmarks,
            voltages=voltages,
            num_samples=num_samples,
            adaptive_epochs=adaptive_epochs,
            seed=seed,
            runner=runner,
            cache=cache,
            warm_start=warm_start,
        )
    result = Table1Result(sweep=sweep)
    for name in benchmarks:
        benchmark_sweep = sweep.sweep_for(name)
        spec_topology = PAPER_TABLE1.get(name, {}).get("topology", "")
        point_050 = benchmark_sweep.point_at(0.50)
        point_046 = benchmark_sweep.point_at(0.46)
        result.rows.append(
            Table1Row(
                benchmark=name,
                topology=spec_topology or "-",
                metric=benchmark_sweep.metric,
                nominal_error=benchmark_sweep.nominal_error,
                naive_050=point_050.naive_error,
                adaptive_050=point_050.adaptive_error,
                naive_046=point_046.naive_error,
                adaptive_046=point_046.adaptive_error,
                naive_aei=benchmark_sweep.average_error_increase("naive"),
                adaptive_aei=benchmark_sweep.average_error_increase("adaptive"),
            )
        )
    return result


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.table1_application_error`` — Table I."""
    parser = experiment_parser(
        "python -m repro.experiments.table1_application_error",
        "Table I — application error (nominal / 0.50 V / 0.46 V, AEI reduction).",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=["mnist", "facedet", "inversek2j", "bscholes"],
    )
    parser.add_argument(
        "--voltages", type=float, nargs="+", default=list(DEFAULT_VOLTAGES)
    )
    parser.add_argument("--num-samples", type=int, default=None)
    parser.add_argument("--adaptive-epochs", type=int, default=60)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--warm-start",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="warm-start each adaptive operating point from the neighboring "
        "voltage's converged weights (--no-warm-start retrains every point "
        "from the pristine baseline, bit-identical to the historical flow)",
    )
    args = parser.parse_args(argv)
    return run_experiment_cli(
        args,
        "table1",
        lambda runner, cache: run_table1(
            benchmarks=tuple(args.benchmarks),
            voltages=tuple(args.voltages),
            num_samples=args.num_samples,
            adaptive_epochs=args.adaptive_epochs,
            seed=args.seed,
            runner=runner,
            cache=cache,
            warm_start=args.warm_start,
        ),
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    from repro.experiments.common import dispatch_canonical_main

    raise SystemExit(dispatch_canonical_main(__spec__))
