"""Deterministic fault injection for chaos-testing the elastic sweep service.

The queue backend's whole value proposition — leases expire, tasks are
stolen, sweeps survive dead workers — is unobservable on a healthy host.
This module makes failure reproducible: a :class:`FaultPlan` is a seeded,
picklable description of *which* worker misbehaves, *when*, and *how*, and
the queue/broker workers consult their :class:`WorkerFaultInjector` at fixed
hook points (task claim, heartbeat renewal, result publish, and — on the
broker backend — every wire request).  Because kill points are counted in
completed tasks and all randomness is seeded, a chaos test that kills
worker 0 after its first task does so on every run, on every host.

Fault rules
-----------
Process-level rules (queue and broker workers):

* :class:`KillWorker` — ``os.kill(getpid(), SIGKILL)`` after N completed
  tasks.  ``phase="claim"`` dies *after acquiring the next lease* (the
  nastiest case: the task is mid-flight, recovery requires lease expiry +
  stealing); ``phase="publish"`` dies right after a clean publish (models a
  worker preempted between tasks — nothing to recover but the fleet shrank).
* :class:`DelayTask` — sleeps before executing (straggler injection; with a
  short lease this forces expiry *while the worker is still alive*,
  exercising the duplicate-execution path that idempotent publishes absorb).
* :class:`SuppressHeartbeat` — stops lease renewal while the task keeps
  running, forcing expiry + steal without killing anyone.
* :class:`PoisonTask` — raises inside task execution for every task whose
  ``describe()`` contains a substring, on *every* worker (``worker=-1``
  wildcard by default).  Because the failure is task-addressed rather than
  worker-addressed, retries land on the same poison and the task is
  deterministically quarantined once the retry budget is spent — the rule
  that exercises the ``QuarantinedTask`` rendering path end to end.

Wire-level rules (broker backend, :mod:`repro.experiments.broker`):

* :class:`DropConnection` — the worker's broker client closes its socket
  right after sending a request, before reading the reply.  The reply is
  lost, so the client must reconnect-with-backoff and re-send; the broker
  protocol is idempotent per ``(digest, attempts)``, so the retry is
  absorbed without double-counting.
* :class:`PartitionWorker` — from the claim of the N-th task, every wire
  call from that worker fails for ``seconds`` (the socket is never even
  touched), modelling a network partition.  Heartbeats stop reaching the
  broker, the lease expires, the broker re-leases the task elsewhere, and
  the partitioned worker abandons it once its lease deadline passes.
* :class:`DelayAck` — sleeps between publishing a result to the store and
  sending the ``complete`` ack; with a short lease the task is re-leased in
  that window and the duplicate is absorbed idempotently.
* :class:`KillBroker` — consulted by the *broker process*, not a worker:
  SIGKILL right after journaling the N-th completed task (the reply for
  that completion is never sent).  Recovery is journal replay: a restarted
  broker reloads every pending task, restored lease, and settled result.

CLI injection
-------------
``$REPRO_FAULT_PLAN`` carries a JSON-encoded plan into driver CLIs (the CI
chaos-smoke job kills a ``fig09_sram --backend queue`` worker this way, and
broker-smoke kills a live broker under a driver)::

    REPRO_FAULT_PLAN='[{"kind": "kill", "worker": 0, "after_tasks": 1}]' \\
        python -m repro.experiments.fig09_sram --figure a --backend queue

Only queue/broker workers (and the broker server) consult the plan — the
fault hooks live in their loops, so other backends ignore the variable.
Malformed plans fail fast with the accepted grammar
(:func:`rule_grammar`) instead of failing deep inside a worker.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import signal
import time
from dataclasses import asdict, dataclass

__all__ = [
    "DelayAck",
    "DelayTask",
    "DropConnection",
    "FaultPlan",
    "KillBroker",
    "KillWorker",
    "PartitionWorker",
    "PoisonTask",
    "SuppressHeartbeat",
    "WorkerFaultInjector",
    "NULL_INJECTOR",
    "rule_grammar",
]

ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

_KILL_PHASES = ("claim", "publish")


@dataclass(frozen=True)
class KillWorker:
    """SIGKILL worker ``worker`` once it has completed ``after_tasks`` tasks.

    ``after_tasks=None`` draws the count deterministically from the plan
    seed (1–3), so randomized chaos stays reproducible.  See the module
    docstring for the ``phase`` semantics.
    """

    worker: int
    after_tasks: int | None = None
    phase: str = "claim"

    kind = "kill"

    def __post_init__(self) -> None:
        if self.phase not in _KILL_PHASES:
            raise ValueError(
                f"kill phase must be one of {_KILL_PHASES}, got {self.phase!r}"
            )


@dataclass(frozen=True)
class DelayTask:
    """Sleep ``seconds`` before executing every ``every``-th claimed task."""

    worker: int
    seconds: float
    every: int = 1

    kind = "delay"


@dataclass(frozen=True)
class SuppressHeartbeat:
    """Stop renewing leases once ``after_tasks`` tasks have completed.

    The worker keeps executing; its lease expires mid-task and another
    worker steals + requeues it.  The suppressed worker's publish still
    lands (idempotently), modelling the classic partitioned-but-alive node.
    """

    worker: int
    after_tasks: int = 0

    kind = "no-heartbeat"


@dataclass(frozen=True)
class PoisonTask:
    """Raise inside execution for tasks whose ``describe()`` contains ``match``.

    Unlike the worker-addressed rules, poison follows the *task*: with the
    default ``worker=-1`` wildcard every worker that claims a matching task
    fails it, so retry attempts cannot escape by landing elsewhere and the
    task is quarantined after exactly ``retries + 1`` attempts.  An empty
    ``match`` poisons every task (a fully-poisoned sweep still terminates —
    with a table of QUARANTINED rows).
    """

    match: str = ""
    worker: int = -1

    kind = "poison"


@dataclass(frozen=True)
class DropConnection:
    """Forcibly close the broker connection after sending a request.

    Fires on every ``every``-th matching wire request (``op`` is a substring
    filter over the request's operation name; empty matches any), at most
    ``limit`` times (``None`` = unlimited).  The reply is lost, so the
    client must reconnect and re-send — exercising the reconnect-with-
    backoff path and the broker protocol's idempotency.
    """

    worker: int
    every: int = 1
    op: str = ""
    limit: int | None = 1

    kind = "drop-connection"


@dataclass(frozen=True)
class PartitionWorker:
    """Cut the worker off from the broker for ``seconds``.

    Triggers once, on the claim hook of the task after ``after_tasks``
    completions: every wire call from this worker (heartbeats included)
    fails until the window closes.  The broker re-leases the abandoned task
    once its lease expires; the healed worker's late traffic is absorbed
    idempotently.
    """

    worker: int
    after_tasks: int = 0
    seconds: float = 1.0

    kind = "partition"


@dataclass(frozen=True)
class DelayAck:
    """Sleep ``seconds`` between store publish and the ``complete`` ack.

    Fires on every ``every``-th completed task.  With a lease shorter than
    the delay, the broker re-leases the task in the publish→ack window and
    the duplicate execution is absorbed idempotently.
    """

    worker: int
    seconds: float
    every: int = 1

    kind = "delay-ack"


@dataclass(frozen=True)
class KillBroker:
    """SIGKILL the *broker process* after journaling ``after_completions`` tasks.

    Consulted by the broker server, never by workers (the default
    ``worker=-1`` is cosmetic — :meth:`FaultPlan.for_worker` filters this
    rule out).  The kill lands *after* the journal append and *before* the
    completion reply is sent, so recovery exercises both journal replay and
    the client-side re-send of a lost ack.  Journal-replayed completions
    count toward the threshold, so a restarted broker does not die again at
    the same point.
    """

    after_completions: int = 1
    worker: int = -1

    kind = "kill-broker"


_RULE_TYPES = {
    cls.kind: cls
    for cls in (
        KillWorker,
        DelayTask,
        SuppressHeartbeat,
        PoisonTask,
        DropConnection,
        PartitionWorker,
        DelayAck,
        KillBroker,
    )
}

FaultRule = (
    KillWorker
    | DelayTask
    | SuppressHeartbeat
    | PoisonTask
    | DropConnection
    | PartitionWorker
    | DelayAck
    | KillBroker
)


def rule_grammar() -> str:
    """Human-readable catalogue of every accepted rule kind and its fields.

    Embedded in validation errors so a malformed ``$REPRO_FAULT_PLAN``
    fails fast with the full grammar instead of deep inside a worker.
    """
    lines = []
    for kind in sorted(_RULE_TYPES):
        cls = _RULE_TYPES[kind]
        params = []
        for field in dataclasses.fields(cls):
            if field.default is dataclasses.MISSING:
                params.append(field.name)
            else:
                params.append(f"{field.name}={field.default!r}")
        lines.append(f'  {{"kind": "{kind}", {", ".join(params)}}}')
    return "\n".join(lines)


def _rule_from_entry(entry: object, position: int) -> FaultRule:
    """Build one rule from a decoded JSON entry, or fail naming the culprit."""
    where = f"fault rule #{position}"
    if not isinstance(entry, dict):
        raise ValueError(
            f"{where} must be a JSON object with a \"kind\", got {entry!r}; "
            f"accepted rules:\n{rule_grammar()}"
        )
    if "kind" not in entry:
        raise ValueError(
            f"{where} {entry!r} has no \"kind\"; accepted rules:\n{rule_grammar()}"
        )
    kind = entry["kind"]
    rule_type = _RULE_TYPES.get(kind)
    if rule_type is None:
        raise ValueError(
            f"{where}: unknown fault kind {kind!r} (expected one of "
            f"{sorted(_RULE_TYPES)}); accepted rules:\n{rule_grammar()}"
        )
    fields = {key: value for key, value in entry.items() if key != "kind"}
    accepted = {field.name for field in dataclasses.fields(rule_type)}
    unknown = sorted(set(fields) - accepted)
    if unknown:
        raise ValueError(
            f"{where} ({kind!r}): unknown field(s) {unknown} — accepted fields "
            f"are {sorted(accepted)}; accepted rules:\n{rule_grammar()}"
        )
    try:
        return rule_type(**fields)
    except (TypeError, ValueError) as error:
        raise ValueError(
            f"{where} ({kind!r}) {entry!r} is invalid: {error}; "
            f"accepted rules:\n{rule_grammar()}"
        ) from error


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules, distributable to workers by index."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def for_worker(self, index: int) -> "WorkerFaultInjector":
        """The injector a queue/broker worker with this index should consult.

        ``worker=-1`` on a rule is a wildcard: every worker in the fleet
        applies it (the coordinator's inline drain worker never consults a
        plan, so even wildcard rules cannot poison the coordinator itself).
        :class:`KillBroker` rules are broker-side and never distributed to
        workers (see :meth:`broker_kill_after`).
        """
        mine = [
            rule
            for rule in self.rules
            if not isinstance(rule, KillBroker) and rule.worker in (index, -1)
        ]
        return WorkerFaultInjector(index, mine, seed=self.seed)

    def broker_kill_after(self) -> int | None:
        """The completion count after which the broker should SIGKILL itself.

        ``None`` when the plan carries no :class:`KillBroker` rule; the
        first such rule wins otherwise.
        """
        for rule in self.rules:
            if isinstance(rule, KillBroker):
                return int(rule.after_completions)
        return None

    # ------------------------------------------------- env/JSON round-trip

    def to_json(self) -> str:
        return json.dumps(
            [{"kind": rule.kind, **asdict(rule)} for rule in self.rules]
        )

    @classmethod
    def from_json(cls, text: str, seed: int = 0) -> "FaultPlan":
        try:
            entries = json.loads(text)
        except ValueError as error:
            raise ValueError(
                f"fault plan is not valid JSON ({error}); expected a JSON "
                f"list of rule objects, e.g.\n{rule_grammar()}"
            ) from error
        if not isinstance(entries, list):
            raise ValueError(
                f"fault plan JSON must be a list of rule objects, got "
                f"{type(entries).__name__}; accepted rules:\n{rule_grammar()}"
            )
        rules = [
            _rule_from_entry(entry, position) for position, entry in enumerate(entries)
        ]
        return cls(rules=tuple(rules), seed=seed)

    def to_env(self, environ: dict[str, str] | None = None) -> dict[str, str]:
        """Write the plan into an environment mapping (default ``os.environ``)."""
        target = os.environ if environ is None else environ
        target[ENV_FAULT_PLAN] = self.to_json()
        return target

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan carried by ``$REPRO_FAULT_PLAN``, or None when unset.

        A present-but-malformed plan raises immediately (naming the variable
        and the grammar) rather than being silently ignored or failing deep
        inside a worker process.
        """
        text = os.environ.get(ENV_FAULT_PLAN, "").strip()
        if not text:
            return None
        try:
            return cls.from_json(text)
        except ValueError as error:
            raise ValueError(f"${ENV_FAULT_PLAN}: {error}") from error


class WorkerFaultInjector:
    """One worker's slice of a fault plan, consulted at the queue hook points.

    The queue/broker worker calls :meth:`on_claim` after acquiring a lease
    (before executing), :meth:`heartbeat_allowed` when deciding whether to
    start the renewal thread, and :meth:`on_publish` after a completed
    task's result landed.  The broker client additionally consults
    :meth:`wire_drop` after sending each request, :meth:`partition_active`
    before touching the socket, and :meth:`ack_delay` before sending a
    completion ack.  All decisions are pure functions of (rules, seed,
    completed count) — no live randomness.
    """

    def __init__(self, index: int, rules: list, seed: int = 0):
        self.index = index
        self._delays = [rule for rule in rules if isinstance(rule, DelayTask)]
        self._suppress = [rule for rule in rules if isinstance(rule, SuppressHeartbeat)]
        self._poisons = [rule for rule in rules if isinstance(rule, PoisonTask)]
        self._drops = [rule for rule in rules if isinstance(rule, DropConnection)]
        self._drop_matches = [0] * len(self._drops)
        self._drop_fired = [0] * len(self._drops)
        self._partitions = [rule for rule in rules if isinstance(rule, PartitionWorker)]
        self._partition_done = [False] * len(self._partitions)
        self._partition_until = 0.0
        self._ack_delays = [rule for rule in rules if isinstance(rule, DelayAck)]
        self._kill: tuple[int, str] | None = None
        kills = [rule for rule in rules if isinstance(rule, KillWorker)]
        if kills:
            rule = kills[0]
            after = rule.after_tasks
            if after is None:
                token = hashlib.sha256(f"faults:{seed}:{index}".encode()).digest()
                after = 1 + token[0] % 3
            self._kill = (int(after), rule.phase)

    def on_claim(self, completed: int) -> None:
        """Hook after lease acquisition; may sleep (straggle) or never return."""
        for rule in self._delays:
            if rule.every > 0 and (completed + 1) % rule.every == 0:
                time.sleep(rule.seconds)
        for position, rule in enumerate(self._partitions):
            if not self._partition_done[position] and completed >= rule.after_tasks:
                self._partition_done[position] = True
                self._partition_until = max(
                    self._partition_until, time.time() + float(rule.seconds)
                )
        if self._kill is not None:
            after, phase = self._kill
            if phase == "claim" and completed >= after:
                self._die()

    def before_execute(self, task) -> None:
        """Hook inside the execution try-block; raising fails the *attempt*.

        The queue worker treats the raise exactly like a worker-function
        exception: the task is requeued with backoff and quarantined once
        ``attempts > retries`` — never a crashed worker, never a deadlock.
        """
        if not self._poisons:
            return
        description = task.describe() if hasattr(task, "describe") else str(task)
        for rule in self._poisons:
            if rule.match in description:
                raise RuntimeError(
                    f"fault plan poisoned task ({rule.match!r} in {description!r})"
                )

    def heartbeat_allowed(self, completed: int) -> bool:
        """Whether this task's lease may be renewed while it runs."""
        return not any(completed >= rule.after_tasks for rule in self._suppress)

    # ----------------------------------------------------- wire-level hooks

    def wire_drop(self, op: str) -> bool:
        """Whether to sever the connection after sending this request."""
        dropped = False
        for position, rule in enumerate(self._drops):
            if rule.op and rule.op not in op:
                continue
            self._drop_matches[position] += 1
            if rule.limit is not None and self._drop_fired[position] >= rule.limit:
                continue
            if rule.every > 0 and self._drop_matches[position] % rule.every == 0:
                self._drop_fired[position] += 1
                dropped = True
        return dropped

    def partition_active(self) -> bool:
        """Whether this worker is currently partitioned from the broker.

        The window is armed by :meth:`on_claim` (see
        :class:`PartitionWorker`) and shared by every connection the worker
        process holds — the main client and the heartbeat client fail
        together, exactly like a real network partition.
        """
        return time.time() < self._partition_until

    def ack_delay(self, completed: int) -> float:
        """Seconds to sleep between store publish and the completion ack."""
        total = 0.0
        for rule in self._ack_delays:
            if rule.every > 0 and (completed + 1) % rule.every == 0:
                total += float(rule.seconds)
        return total

    def on_publish(self, completed: int) -> None:
        """Hook after a clean publish + lease release; may never return."""
        if self._kill is not None:
            after, phase = self._kill
            if phase == "publish" and completed >= after:
                self._die()

    @staticmethod
    def _die() -> None:
        # SIGKILL self: no cleanup handlers, no finally blocks — exactly the
        # abrupt death (OOM killer, preemption) the lease protocol must absorb
        os.kill(os.getpid(), signal.SIGKILL)


#: Injector that never fires — what workers use when no plan is active.
NULL_INJECTOR = WorkerFaultInjector(-1, [])
