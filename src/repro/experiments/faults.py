"""Deterministic fault injection for chaos-testing the elastic sweep service.

The queue backend's whole value proposition — leases expire, tasks are
stolen, sweeps survive dead workers — is unobservable on a healthy host.
This module makes failure reproducible: a :class:`FaultPlan` is a seeded,
picklable description of *which* worker misbehaves, *when*, and *how*, and
the queue workers consult their :class:`WorkerFaultInjector` at three fixed
hook points (task claim, heartbeat renewal, result publish).  Because kill
points are counted in completed tasks and all randomness is seeded, a chaos
test that kills worker 0 after its first task does so on every run, on every
host.

Fault rules
-----------
* :class:`KillWorker` — ``os.kill(getpid(), SIGKILL)`` after N completed
  tasks.  ``phase="claim"`` dies *after acquiring the next lease* (the
  nastiest case: the task is mid-flight, recovery requires lease expiry +
  stealing); ``phase="publish"`` dies right after a clean publish (models a
  worker preempted between tasks — nothing to recover but the fleet shrank).
* :class:`DelayTask` — sleeps before executing (straggler injection; with a
  short lease this forces expiry *while the worker is still alive*,
  exercising the duplicate-execution path that idempotent publishes absorb).
* :class:`SuppressHeartbeat` — stops lease renewal while the task keeps
  running, forcing expiry + steal without killing anyone.
* :class:`PoisonTask` — raises inside task execution for every task whose
  ``describe()`` contains a substring, on *every* worker (``worker=-1``
  wildcard by default).  Because the failure is task-addressed rather than
  worker-addressed, retries land on the same poison and the task is
  deterministically quarantined once the retry budget is spent — the rule
  that exercises the ``QuarantinedTask`` rendering path end to end.

CLI injection
-------------
``$REPRO_FAULT_PLAN`` carries a JSON-encoded plan into driver CLIs (the CI
chaos-smoke job kills a ``fig09_sram --backend queue`` worker this way)::

    REPRO_FAULT_PLAN='[{"kind": "kill", "worker": 0, "after_tasks": 1}]' \\
        python -m repro.experiments.fig09_sram --figure a --backend queue

Only queue workers consult the plan — the fault hooks live in the queue
worker loop, so other backends ignore the variable.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import asdict, dataclass

__all__ = [
    "DelayTask",
    "FaultPlan",
    "KillWorker",
    "PoisonTask",
    "SuppressHeartbeat",
    "WorkerFaultInjector",
    "NULL_INJECTOR",
]

ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

_KILL_PHASES = ("claim", "publish")


@dataclass(frozen=True)
class KillWorker:
    """SIGKILL worker ``worker`` once it has completed ``after_tasks`` tasks.

    ``after_tasks=None`` draws the count deterministically from the plan
    seed (1–3), so randomized chaos stays reproducible.  See the module
    docstring for the ``phase`` semantics.
    """

    worker: int
    after_tasks: int | None = None
    phase: str = "claim"

    kind = "kill"

    def __post_init__(self) -> None:
        if self.phase not in _KILL_PHASES:
            raise ValueError(
                f"kill phase must be one of {_KILL_PHASES}, got {self.phase!r}"
            )


@dataclass(frozen=True)
class DelayTask:
    """Sleep ``seconds`` before executing every ``every``-th claimed task."""

    worker: int
    seconds: float
    every: int = 1

    kind = "delay"


@dataclass(frozen=True)
class SuppressHeartbeat:
    """Stop renewing leases once ``after_tasks`` tasks have completed.

    The worker keeps executing; its lease expires mid-task and another
    worker steals + requeues it.  The suppressed worker's publish still
    lands (idempotently), modelling the classic partitioned-but-alive node.
    """

    worker: int
    after_tasks: int = 0

    kind = "no-heartbeat"


@dataclass(frozen=True)
class PoisonTask:
    """Raise inside execution for tasks whose ``describe()`` contains ``match``.

    Unlike the worker-addressed rules, poison follows the *task*: with the
    default ``worker=-1`` wildcard every worker that claims a matching task
    fails it, so retry attempts cannot escape by landing elsewhere and the
    task is quarantined after exactly ``retries + 1`` attempts.  An empty
    ``match`` poisons every task (a fully-poisoned sweep still terminates —
    with a table of QUARANTINED rows).
    """

    match: str = ""
    worker: int = -1

    kind = "poison"


_RULE_TYPES = {
    cls.kind: cls for cls in (KillWorker, DelayTask, SuppressHeartbeat, PoisonTask)
}

FaultRule = KillWorker | DelayTask | SuppressHeartbeat | PoisonTask


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules, distributable to workers by index."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def for_worker(self, index: int) -> "WorkerFaultInjector":
        """The injector a queue worker with this index should consult.

        ``worker=-1`` on a rule is a wildcard: every worker in the fleet
        applies it (the coordinator's inline drain worker never consults a
        plan, so even wildcard rules cannot poison the coordinator itself).
        """
        mine = [rule for rule in self.rules if rule.worker in (index, -1)]
        return WorkerFaultInjector(index, mine, seed=self.seed)

    # ------------------------------------------------- env/JSON round-trip

    def to_json(self) -> str:
        return json.dumps(
            [{"kind": rule.kind, **asdict(rule)} for rule in self.rules]
        )

    @classmethod
    def from_json(cls, text: str, seed: int = 0) -> "FaultPlan":
        entries = json.loads(text)
        if not isinstance(entries, list):
            raise ValueError("fault plan JSON must be a list of rule objects")
        rules = []
        for entry in entries:
            if not isinstance(entry, dict) or "kind" not in entry:
                raise ValueError(f"fault rule must be an object with a kind: {entry!r}")
            fields = dict(entry)
            kind = fields.pop("kind")
            try:
                rule_type = _RULE_TYPES[kind]
            except KeyError:
                raise ValueError(
                    f"unknown fault kind {kind!r} (expected one of "
                    f"{sorted(_RULE_TYPES)})"
                ) from None
            rules.append(rule_type(**fields))
        return cls(rules=tuple(rules), seed=seed)

    def to_env(self, environ: dict[str, str] | None = None) -> dict[str, str]:
        """Write the plan into an environment mapping (default ``os.environ``)."""
        target = os.environ if environ is None else environ
        target[ENV_FAULT_PLAN] = self.to_json()
        return target

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan carried by ``$REPRO_FAULT_PLAN``, or None when unset."""
        text = os.environ.get(ENV_FAULT_PLAN, "").strip()
        if not text:
            return None
        return cls.from_json(text)


class WorkerFaultInjector:
    """One worker's slice of a fault plan, consulted at the queue hook points.

    The queue worker calls :meth:`on_claim` after acquiring a lease (before
    executing), :meth:`heartbeat_allowed` when deciding whether to start the
    renewal thread, and :meth:`on_publish` after a completed task's result
    landed.  All decisions are pure functions of (rules, seed, completed
    count) — no live randomness.
    """

    def __init__(self, index: int, rules: list, seed: int = 0):
        self.index = index
        self._delays = [rule for rule in rules if isinstance(rule, DelayTask)]
        self._suppress = [rule for rule in rules if isinstance(rule, SuppressHeartbeat)]
        self._poisons = [rule for rule in rules if isinstance(rule, PoisonTask)]
        self._kill: tuple[int, str] | None = None
        kills = [rule for rule in rules if isinstance(rule, KillWorker)]
        if kills:
            rule = kills[0]
            after = rule.after_tasks
            if after is None:
                token = hashlib.sha256(f"faults:{seed}:{index}".encode()).digest()
                after = 1 + token[0] % 3
            self._kill = (int(after), rule.phase)

    def on_claim(self, completed: int) -> None:
        """Hook after lease acquisition; may sleep (straggle) or never return."""
        for rule in self._delays:
            if rule.every > 0 and (completed + 1) % rule.every == 0:
                time.sleep(rule.seconds)
        if self._kill is not None:
            after, phase = self._kill
            if phase == "claim" and completed >= after:
                self._die()

    def before_execute(self, task) -> None:
        """Hook inside the execution try-block; raising fails the *attempt*.

        The queue worker treats the raise exactly like a worker-function
        exception: the task is requeued with backoff and quarantined once
        ``attempts > retries`` — never a crashed worker, never a deadlock.
        """
        if not self._poisons:
            return
        description = task.describe() if hasattr(task, "describe") else str(task)
        for rule in self._poisons:
            if rule.match in description:
                raise RuntimeError(
                    f"fault plan poisoned task ({rule.match!r} in {description!r})"
                )

    def heartbeat_allowed(self, completed: int) -> bool:
        """Whether this task's lease may be renewed while it runs."""
        return not any(completed >= rule.after_tasks for rule in self._suppress)

    def on_publish(self, completed: int) -> None:
        """Hook after a clean publish + lease release; may never return."""
        if self._kill is not None:
            after, phase = self._kill
            if phase == "publish" and completed >= after:
                self._die()

    @staticmethod
    def _die() -> None:
        # SIGKILL self: no cleanup handlers, no finally blocks — exactly the
        # abrupt death (OOM killer, preemption) the lease protocol must absorb
        os.kill(os.getpid(), signal.SIGKILL)


#: Injector that never fires — what workers use when no plan is active.
NULL_INJECTOR = WorkerFaultInjector(-1, [])
