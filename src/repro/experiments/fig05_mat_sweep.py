"""Fig. 5 — simulated performance of memory-adaptive training on MNIST.

The paper's pre-silicon feasibility study statically flips a randomly
selected proportion of weight bits (drawn from SPICE Monte-Carlo failure
statistics) and compares a naive baseline against memory-adaptive training
across that fault proportion.  This driver reproduces the sweep on the
digit-recognition benchmark: for each fault rate it reports the error of

* the *naive baseline* — the float-trained model with the fault masks simply
  imposed at deployment, and
* the *memory-adaptive* model — the same initial model fine-tuned with the
  masks injected during training.

Each fault rate is one :class:`~repro.experiments.engine.SweepTask`; the
tasks are independent (they share only the read-only prepared benchmark) and
run through a :class:`~repro.experiments.engine.SweepRunner`, with the
memory-adaptive fine-tuning memoized in the artifact cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..matic.flow import MaticFlow, TrainingConfig
from ..matic.masking import FaultMaskSet
from ..quant.quantizer import WeightQuantizer
from .cache import ArtifactCache, default_cache
from .common import (
    ExperimentResult,
    PreparedBenchmark,
    experiment_parser,
    fmt_percent,
    partition_quarantined,
    prepare_benchmark,
    quarantine_notes,
    run_experiment_cli,
)
from .engine import SweepRunner, SweepTask, expand_grid

__all__ = ["Fig5Point", "run_fig5", "main"]

#: Fault proportions swept by the paper's figure (0.5 % ... 90 %).
DEFAULT_FAULT_RATES = (0.005, 0.01, 0.02, 0.05, 0.10, 0.30, 0.50, 0.70, 0.90)


@dataclass
class Fig5Point:
    """One point of the Fig. 5 sweep."""

    fault_rate: float
    naive_error: float
    adaptive_error: float


@dataclass
class Fig5Result:
    """Full sweep result."""

    benchmark: str
    baseline_error: float
    points: list[Fig5Point] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)

    def to_experiment_result(self) -> ExperimentResult:
        rows = [
            [
                fmt_percent(point.fault_rate),
                fmt_percent(point.naive_error),
                fmt_percent(point.adaptive_error),
            ]
            for point in self.points
        ]
        return ExperimentResult(
            experiment="Fig. 5 — MAT vs naive baseline over % failed SRAM bits",
            headers=["% failed bits", "naive error", "memory-adaptive error"],
            rows=rows,
            paper_reference={
                "figure": "error kept low by MAT well past the naive baseline's collapse",
                "nominal (0% faults) error": fmt_percent(self.baseline_error),
            },
            notes=(
                "Shape target: the naive curve rises sharply as soon as faults appear, "
                "while memory-adaptive training holds substantially lower error through "
                "the small-to-moderate fault-rate regime."
            ),
            quarantined=list(self.quarantined),
        )


def _fig5_point_worker(shared: dict, task: SweepTask) -> Fig5Point:
    """Evaluate naive and memory-adaptive error at one fault rate."""
    prepared: PreparedBenchmark = shared["prepared"]
    quantizer = WeightQuantizer(
        total_bits=shared["word_bits"], frac_bits=shared["frac_bits"]
    )
    rate = task.param("fault_rate")
    mask_rng = np.random.default_rng(shared["seed"] * 1000 + task.index)

    # naive: clean training, faults imposed at deployment
    naive = prepared.baseline.copy()
    masks = FaultMaskSet.random(naive, quantizer, rate, rng=mask_rng)
    masks.install(naive)
    naive_error = prepared.spec.error(naive.predict(prepared.test.inputs), prepared.test)

    # adaptive: fine-tune the same starting point with the same masks.  The
    # memoized fit (key schema included) is the flow's — one implementation
    # for every "trained-weights" artifact in the suite.
    adaptive = prepared.baseline.copy()
    flow = MaticFlow(
        word_bits=shared["word_bits"],
        frac_bits=shared["frac_bits"],
        training=TrainingConfig(
            optimizer="momentum",
            learning_rate=0.15,
            batch_size=32,
            epochs=int(shared["adaptive_epochs"]),
            patience=None,
            lr_decay=0.95,
            weight_decay=0.0,
            seed=shared["seed"] + 7,
        ),
        training_cache=shared["cache"],
    )
    flow.fit_adaptive(adaptive, masks, prepared.train, None)
    adaptive_error = prepared.spec.error(
        adaptive.predict(prepared.test.inputs), prepared.test
    )
    return Fig5Point(fault_rate=rate, naive_error=naive_error, adaptive_error=adaptive_error)


def run_fig5(
    fault_rates: tuple[float, ...] = DEFAULT_FAULT_RATES,
    benchmark: str = "mnist",
    num_samples: int | None = None,
    adaptive_epochs: int = 50,
    word_bits: int = 16,
    frac_bits: int = 13,
    seed: int = 1,
    prepared: PreparedBenchmark | None = None,
    runner: SweepRunner | None = None,
    cache: ArtifactCache | None = None,
) -> Fig5Result:
    """Run the Fig. 5 sweep and return the naive/adaptive error curves."""
    cache = cache if cache is not None else default_cache()
    prepared = prepared or prepare_benchmark(
        benchmark, num_samples=num_samples, seed=seed, cache=cache
    )
    runner = runner or SweepRunner()
    tasks = expand_grid(
        params=[{"fault_rate": float(rate)} for rate in fault_rates], seed=seed
    )
    shared = {
        "prepared": prepared,
        "word_bits": word_bits,
        "frac_bits": frac_bits,
        "adaptive_epochs": adaptive_epochs,
        "seed": seed,
        "cache": cache,
    }
    points, quarantined = partition_quarantined(
        runner.map(_fig5_point_worker, tasks, shared=shared)
    )
    result = Fig5Result(benchmark=prepared.name, baseline_error=prepared.baseline_error)
    result.points.extend(points)
    result.quarantined.extend(quarantine_notes(quarantined))
    return result


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.fig05_mat_sweep`` — regenerate Fig. 5."""
    parser = experiment_parser(
        "python -m repro.experiments.fig05_mat_sweep",
        "Fig. 5 — memory-adaptive training vs naive baseline across fault rates.",
    )
    parser.add_argument("--benchmark", default="mnist")
    parser.add_argument(
        "--fault-rates", type=float, nargs="+", default=list(DEFAULT_FAULT_RATES)
    )
    parser.add_argument("--num-samples", type=int, default=None)
    parser.add_argument("--adaptive-epochs", type=int, default=50)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    return run_experiment_cli(
        args,
        "fig5",
        lambda runner, cache: run_fig5(
            fault_rates=tuple(args.fault_rates),
            benchmark=args.benchmark,
            num_samples=args.num_samples,
            adaptive_epochs=args.adaptive_epochs,
            seed=args.seed,
            runner=runner,
            cache=cache,
        ),
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    from repro.experiments.common import dispatch_canonical_main

    raise SystemExit(dispatch_canonical_main(__spec__))
