"""Fig. 5 — simulated performance of memory-adaptive training on MNIST.

The paper's pre-silicon feasibility study statically flips a randomly
selected proportion of weight bits (drawn from SPICE Monte-Carlo failure
statistics) and compares a naive baseline against memory-adaptive training
across that fault proportion.  This driver reproduces the sweep on the
digit-recognition benchmark: for each fault rate it reports the error of

* the *naive baseline* — the float-trained model with the fault masks simply
  imposed at deployment, and
* the *memory-adaptive* model — the same initial model fine-tuned with the
  masks injected during training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..matic.masking import FaultMaskSet
from ..matic.training import MemoryAdaptiveTrainer
from ..quant.quantizer import WeightQuantizer
from .common import ExperimentResult, PreparedBenchmark, fmt_percent, prepare_benchmark

__all__ = ["Fig5Point", "run_fig5"]

#: Fault proportions swept by the paper's figure (0.5 % ... 90 %).
DEFAULT_FAULT_RATES = (0.005, 0.01, 0.02, 0.05, 0.10, 0.30, 0.50, 0.70, 0.90)


@dataclass
class Fig5Point:
    """One point of the Fig. 5 sweep."""

    fault_rate: float
    naive_error: float
    adaptive_error: float


@dataclass
class Fig5Result:
    """Full sweep result."""

    benchmark: str
    baseline_error: float
    points: list[Fig5Point] = field(default_factory=list)

    def to_experiment_result(self) -> ExperimentResult:
        rows = [
            [
                fmt_percent(point.fault_rate),
                fmt_percent(point.naive_error),
                fmt_percent(point.adaptive_error),
            ]
            for point in self.points
        ]
        return ExperimentResult(
            experiment="Fig. 5 — MAT vs naive baseline over % failed SRAM bits",
            headers=["% failed bits", "naive error", "memory-adaptive error"],
            rows=rows,
            paper_reference={
                "figure": "error kept low by MAT well past the naive baseline's collapse",
                "nominal (0% faults) error": fmt_percent(self.baseline_error),
            },
            notes=(
                "Shape target: the naive curve rises sharply as soon as faults appear, "
                "while memory-adaptive training holds substantially lower error through "
                "the small-to-moderate fault-rate regime."
            ),
        )


def run_fig5(
    fault_rates: tuple[float, ...] = DEFAULT_FAULT_RATES,
    benchmark: str = "mnist",
    num_samples: int | None = None,
    adaptive_epochs: int = 50,
    word_bits: int = 16,
    frac_bits: int = 13,
    seed: int = 1,
    prepared: PreparedBenchmark | None = None,
) -> Fig5Result:
    """Run the Fig. 5 sweep and return the naive/adaptive error curves."""
    prepared = prepared or prepare_benchmark(benchmark, num_samples=num_samples, seed=seed)
    quantizer = WeightQuantizer(total_bits=word_bits, frac_bits=frac_bits)
    result = Fig5Result(benchmark=prepared.name, baseline_error=prepared.baseline_error)

    for index, rate in enumerate(fault_rates):
        mask_rng = np.random.default_rng(seed * 1000 + index)
        # naive: clean training, faults imposed at deployment
        naive = prepared.baseline.copy()
        masks = FaultMaskSet.random(naive, quantizer, rate, rng=mask_rng)
        masks.install(naive)
        naive_error = prepared.spec.error(naive.predict(prepared.test.inputs), prepared.test)

        # adaptive: fine-tune the same starting point with the same masks
        adaptive = prepared.baseline.copy()
        trainer = MemoryAdaptiveTrainer(
            adaptive,
            masks,
            learning_rate=0.15,
            lr_decay=0.95,
            batch_size=32,
            epochs=adaptive_epochs,
            seed=seed + 7,
        )
        trainer.fit(prepared.train)
        adaptive_error = prepared.spec.error(
            adaptive.predict(prepared.test.inputs), prepared.test
        )
        result.points.append(
            Fig5Point(fault_rate=rate, naive_error=naive_error, adaptive_error=adaptive_error)
        )
    return result
