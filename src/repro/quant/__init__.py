"""Fixed-point formats and weight quantization for the SNNAC datapath."""

from .fixed_point import FixedPointFormat
from .quantizer import (
    FrozenWeightQuantizer,
    LayerQuantization,
    QuantizedWeights,
    WeightQuantizer,
)

__all__ = [
    "FixedPointFormat",
    "LayerQuantization",
    "QuantizedWeights",
    "WeightQuantizer",
    "FrozenWeightQuantizer",
]
