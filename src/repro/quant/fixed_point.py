"""Fixed-point number formats.

SNNAC's processing elements operate on 8–22 bit fixed-point operands and the
weight SRAMs store weights as two's-complement words.  The
:class:`FixedPointFormat` describes one such word layout and provides
vectorized conversion between float values, integer codes, and raw bit
patterns (the representation the SRAM fault masks operate on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointFormat"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement fixed-point format.

    Parameters
    ----------
    total_bits:
        Word length in bits (the SRAM word length), including the sign bit.
        SNNAC supports 8–22 bit operands; 16 is the default used by the
        reproduction's benchmark models.
    frac_bits:
        Number of fractional bits.  The representable range is
        ``[-2**(total_bits-1-frac_bits), 2**(total_bits-1-frac_bits) - lsb]``
        with ``lsb = 2**-frac_bits``.
    """

    total_bits: int = 16
    frac_bits: int = 12

    def __post_init__(self) -> None:
        if not 2 <= self.total_bits <= 64:
            raise ValueError("total_bits must be in [2, 64]")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ValueError("frac_bits must be in [0, total_bits)")

    # ------------------------------------------------------------ ranges

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.frac_bits)

    @property
    def min_code(self) -> int:
        """Most negative integer code."""
        return -(1 << (self.total_bits - 1))

    @property
    def max_code(self) -> int:
        """Most positive integer code."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_value(self) -> float:
        """Most negative representable value."""
        return self.min_code * self.scale

    @property
    def max_value(self) -> float:
        """Most positive representable value."""
        return self.max_code * self.scale

    @property
    def word_mask(self) -> int:
        """Bit mask covering the full word (``total_bits`` ones)."""
        return (1 << self.total_bits) - 1

    # -------------------------------------------------------- conversions

    def quantize_to_code(self, values: np.ndarray) -> np.ndarray:
        """Quantize float values to integer codes with saturation.

        Rounding is round-half-away-from-zero to match typical hardware
        quantizers; results are ``int64``.  Saturation is decided in the
        float domain but the clip itself happens on integers: float64 cannot
        represent every code of formats wider than 53 bits, so clipping
        against ``float(max_code)`` would overflow the int64 cast for
        ``total_bits`` near 64.
        """
        values = np.asarray(values, dtype=float)
        scaled = values / self.scale
        rounded = np.sign(scaled) * np.floor(np.abs(scaled) + 0.5)
        # float(max_code) rounds up to 2**(total_bits-1) for wide formats, so
        # anything at or above it saturates; float(min_code) is always exact.
        high = rounded >= float(self.max_code)
        low = rounded <= float(self.min_code)
        in_range = np.where(high | low, 0.0, rounded).astype(np.int64)
        codes = np.where(high, self.max_code, np.where(low, self.min_code, in_range))
        return codes.astype(np.int64)

    def dequantize_code(self, codes: np.ndarray) -> np.ndarray:
        """Convert integer codes back to float values."""
        return np.asarray(codes, dtype=np.int64).astype(float) * self.scale

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Quantize float values onto the representable grid (returns floats)."""
        return self.dequantize_code(self.quantize_to_code(values))

    def quantization_error(self, values: np.ndarray) -> np.ndarray:
        """Fractional quantization error ``values − Q(values)``.

        This is the ``ε_q`` term of the paper's memory-adaptive weight-update
        rule: preserving it across iterations lets small gradient updates
        accumulate instead of being rounded away.
        """
        values = np.asarray(values, dtype=float)
        return values - self.quantize(values)

    # --------------------------------------------------------- bit packing

    def code_to_word(self, codes: np.ndarray) -> np.ndarray:
        """Convert signed integer codes to unsigned two's-complement words."""
        codes = np.asarray(codes, dtype=np.int64)
        if np.any(codes < self.min_code) or np.any(codes > self.max_code):
            raise ValueError("code out of range for this format")
        # mask in the uint64 domain: `int64 & word_mask` overflows for a
        # 64-bit word_mask (2**64 - 1 does not fit in int64)
        return codes.astype(np.uint64) & np.uint64(self.word_mask)

    def word_to_code(self, words: np.ndarray) -> np.ndarray:
        """Convert unsigned two's-complement words back to signed codes."""
        words = np.asarray(words, dtype=np.uint64) & np.uint64(self.word_mask)
        sign_bit = np.uint64(1) << np.uint64(self.total_bits - 1)
        negative = (words & sign_bit) != 0
        # sign-extend in the uint64 domain, then reinterpret the bit pattern
        # as int64 — subtracting 2**total_bits would overflow at 64 bits
        extension = np.uint64(np.uint64(0xFFFFFFFFFFFFFFFF) ^ np.uint64(self.word_mask))
        extended = np.where(negative, words | extension, words)
        return np.ascontiguousarray(extended, dtype=np.uint64).view(np.int64)

    def float_to_word(self, values: np.ndarray) -> np.ndarray:
        """Quantize floats directly to two's-complement SRAM words."""
        return self.code_to_word(self.quantize_to_code(values))

    def word_to_float(self, words: np.ndarray) -> np.ndarray:
        """Decode two's-complement SRAM words back to float values."""
        return self.dequantize_code(self.word_to_code(words))

    def word_to_bits(self, words: np.ndarray) -> np.ndarray:
        """Expand words to a bit matrix of shape ``(*words.shape, total_bits)``.

        Bit index 0 is the least-significant bit — the same convention the
        SRAM fault maps use for bit positions within a word.
        """
        words = np.asarray(words, dtype=np.uint64)
        shifts = np.arange(self.total_bits, dtype=np.uint64)
        return ((words[..., None] >> shifts) & np.uint64(1)).astype(np.uint8)

    def bits_to_word(self, bits: np.ndarray) -> np.ndarray:
        """Pack a bit matrix (LSB first) back into unsigned words."""
        bits = np.asarray(bits, dtype=np.uint64)
        if bits.shape[-1] != self.total_bits:
            raise ValueError(
                f"last dimension must be {self.total_bits}, got {bits.shape[-1]}"
            )
        shifts = np.arange(self.total_bits, dtype=np.uint64)
        return np.sum(bits << shifts, axis=-1).astype(np.uint64)

    # ------------------------------------------------------------- helpers

    def describe(self) -> str:
        """Human-readable Qm.n description, e.g. ``Q3.12 (16-bit)``."""
        int_bits = self.total_bits - 1 - self.frac_bits
        return f"Q{int_bits}.{self.frac_bits} ({self.total_bits}-bit)"

    @classmethod
    def for_range(
        cls, max_abs_value: float, total_bits: int = 16
    ) -> "FixedPointFormat":
        """Choose the fraction width that fits ``[-max_abs_value, max_abs_value]``.

        Picks the largest ``frac_bits`` such that ``max_abs_value`` is still
        representable, which maximizes resolution for the given word length.
        """
        if max_abs_value <= 0:
            raise ValueError("max_abs_value must be positive")
        if not 2 <= total_bits <= 64:
            raise ValueError("total_bits must be in [2, 64]")
        # integer bits needed to represent max_abs_value (excluding sign)
        int_bits = max(int(np.ceil(np.log2(max_abs_value + 1e-12))), 0)
        frac_bits = max(total_bits - 1 - int_bits, 0)
        return cls(total_bits=total_bits, frac_bits=frac_bits)
