"""Per-network weight quantization.

The weight SRAM stores one fixed-point word per synaptic weight.  The
:class:`WeightQuantizer` decides a fixed-point format per layer (or a single
shared format), converts a network's float weights to SRAM words and back,
and reports quantization error — the building block both for naive deployment
(quantize once, after training) and for memory-adaptive training (quantize
every iteration, inside the training loop).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.network import Network
from .fixed_point import FixedPointFormat

__all__ = [
    "LayerQuantization",
    "WeightQuantizer",
    "FrozenWeightQuantizer",
    "QuantizedWeights",
]


@dataclass
class LayerQuantization:
    """Fixed-point formats chosen for one layer's weights and bias."""

    weight_format: FixedPointFormat
    bias_format: FixedPointFormat


@dataclass
class QuantizedWeights:
    """Quantized view of a network's parameters, as SRAM words.

    ``weight_words[i]`` has the same shape as layer ``i``'s weight matrix and
    holds unsigned two's-complement words; likewise for ``bias_words``.
    """

    weight_words: list[np.ndarray]
    bias_words: list[np.ndarray]
    layer_formats: list[LayerQuantization]

    def to_float(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Decode back to float ``(weights, bias)`` pairs per layer."""
        decoded = []
        for words, bias_words, fmt in zip(
            self.weight_words, self.bias_words, self.layer_formats
        ):
            decoded.append(
                (
                    fmt.weight_format.word_to_float(words),
                    fmt.bias_format.word_to_float(bias_words),
                )
            )
        return decoded


class WeightQuantizer:
    """Quantize a network's weights to fixed-point SRAM words.

    Parameters
    ----------
    total_bits:
        SRAM word length (8–22 for SNNAC; default 16).
    frac_bits:
        Fixed fraction width; when ``None`` (default) the fraction width is
        chosen per layer from the observed weight range, which is what the
        paper's toolchain does when compiling a model for the accelerator.
    """

    def __init__(self, total_bits: int = 16, frac_bits: int | None = None) -> None:
        if not 2 <= total_bits <= 64:
            raise ValueError("total_bits must be in [2, 64]")
        if frac_bits is not None and not 0 <= frac_bits < total_bits:
            raise ValueError("frac_bits must be in [0, total_bits)")
        self.total_bits = int(total_bits)
        self.frac_bits = frac_bits

    # ------------------------------------------------------------------

    def format_for(self, values: np.ndarray) -> FixedPointFormat:
        """Pick the fixed-point format for one parameter tensor."""
        if self.frac_bits is not None:
            return FixedPointFormat(self.total_bits, self.frac_bits)
        max_abs = float(np.max(np.abs(values))) if np.asarray(values).size else 1.0
        max_abs = max(max_abs, 1e-6)
        return FixedPointFormat.for_range(max_abs, total_bits=self.total_bits)

    def layer_formats(self, network: Network) -> list[LayerQuantization]:
        """Choose formats for every layer of ``network``."""
        formats = []
        for layer in network.layers:
            formats.append(
                LayerQuantization(
                    weight_format=self.format_for(layer.weights),
                    bias_format=self.format_for(layer.bias),
                )
            )
        return formats

    def quantize_network(
        self,
        network: Network,
        layer_formats: list[LayerQuantization] | None = None,
    ) -> QuantizedWeights:
        """Quantize all weights/biases of a network to SRAM words."""
        formats = layer_formats if layer_formats is not None else self.layer_formats(network)
        if len(formats) != len(network.layers):
            raise ValueError("one LayerQuantization per layer is required")
        weight_words = []
        bias_words = []
        for layer, fmt in zip(network.layers, formats):
            weight_words.append(fmt.weight_format.float_to_word(layer.weights))
            bias_words.append(fmt.bias_format.float_to_word(layer.bias))
        return QuantizedWeights(weight_words, bias_words, formats)

    def apply_to_network(
        self,
        network: Network,
        layer_formats: list[LayerQuantization] | None = None,
    ) -> QuantizedWeights:
        """Quantize and install the quantized values as *effective* weights.

        The master float weights are untouched; forward passes will use the
        quantized view until :meth:`repro.nn.network.Network.clear_effective`
        is called.  Returns the quantized words for further processing (e.g.
        fault-mask application).
        """
        quantized = self.quantize_network(network, layer_formats)
        for layer, words, bias_words, fmt in zip(
            network.layers,
            quantized.weight_words,
            quantized.bias_words,
            quantized.layer_formats,
        ):
            layer.set_effective(
                fmt.weight_format.word_to_float(words),
                fmt.bias_format.word_to_float(bias_words),
            )
        return quantized

    def freeze(self, layer_formats: list[LayerQuantization]) -> "FrozenWeightQuantizer":
        """Return a quantizer pinned to the given per-layer formats.

        The MATIC flow computes formats once (from the pre-trained baseline)
        and freezes them so that injection masking during training and the
        final deployment to SRAM use *identical* word layouts — otherwise the
        profiled fault masks would not describe the deployed words.
        """
        return FrozenWeightQuantizer(self.total_bits, layer_formats)

    def quantization_snr_db(self, network: Network) -> float:
        """Signal-to-quantization-noise ratio over all weights, in dB."""
        formats = self.layer_formats(network)
        signal = 0.0
        noise = 0.0
        for layer, fmt in zip(network.layers, formats):
            q = fmt.weight_format.quantize(layer.weights)
            signal += float(np.sum(layer.weights**2))
            noise += float(np.sum((layer.weights - q) ** 2))
        if noise == 0.0:
            return float("inf")
        return 10.0 * float(np.log10(signal / noise))


class FrozenWeightQuantizer(WeightQuantizer):
    """A :class:`WeightQuantizer` pinned to a fixed list of per-layer formats.

    ``layer_formats`` ignores the network's current weight values and always
    returns the stored formats (after checking the layer count), so repeated
    quantization of an evolving model keeps using the word layout the fault
    masks were built for.
    """

    def __init__(self, total_bits: int, layer_formats: list[LayerQuantization]) -> None:
        super().__init__(total_bits=total_bits, frac_bits=None)
        if not layer_formats:
            raise ValueError("at least one layer format is required")
        self._frozen_formats = list(layer_formats)

    @property
    def frozen_formats(self) -> list[LayerQuantization]:
        return list(self._frozen_formats)

    def layer_formats(self, network: Network) -> list[LayerQuantization]:
        if len(network.layers) != len(self._frozen_formats):
            raise ValueError(
                f"frozen quantizer has {len(self._frozen_formats)} layer formats, "
                f"network has {len(network.layers)} layers"
            )
        return list(self._frozen_formats)
