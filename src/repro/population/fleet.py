"""Chip-population fleet simulation: N sampled dies serving one request stream.

The paper evaluates MATIC on one fabricated die, and every driver in this
repo likewise measures one sampled chip instance per grid point.  This
subsystem scales that to a *population*: :class:`ChipPopulation` names ``N``
die instances of one chip design — each sampled from its own
:meth:`numpy.random.SeedSequence.spawn` child, so dies are statistically
independent and any die can be re-materialized in isolation — and serves a
seeded synthetic request stream across the fleet at mixed operating points.

Per-die marginal cost stays small because the simulation leans on two
existing memoization layers rather than adding its own:

* per-bank fault maps are profiled through
  :meth:`~repro.matic.flow.MaticFlow.profile_chip`, whose artifact-cache
  memoization (kind ``"fault-map"``) turns a warm re-run of the same die
  into a pure cache recall; and
* within one die's request batch,
  :meth:`~repro.accelerator.npu.Npu.run_sweep` groups operating points by
  corruption-mask digest and aliases exact-duplicate voltages, so a stream
  that routes many requests to the same operating point decodes each
  corrupted weight image once.

Sharding composes for free: a die is one unit of work, so a driver that
expands ``{"die": i}`` tasks through the sweep engine gets ``--shard i/n``
fleet splits whose merge is bit-identical to an unsharded run
(``benchmarks/bench_population.py`` proves it).

The module is deliberately below the ``repro.experiments`` layer: it knows
chips, flows, and canaries, but nothing about argument parsing, caches-by-
default, or prepared benchmarks.  ``repro.experiments.fleet_population``
wires it into the sweep engine and the standard CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..accelerator.energy import NOMINAL_OPERATING_POINT
from ..accelerator.soc import Snnac, SnnacConfig
from ..matic.canary import CanarySelector
from ..matic.flow import MaticFlow
from ..sram import calibration
from ..sram.variation import VariationScenario

__all__ = [
    "ChipPopulation",
    "FleetRequest",
    "DieReport",
    "FleetSummary",
    "simulate_die",
    "summarize_fleet",
]

#: Spawn-key prefix reserving the request-stream generator its own branch of
#: the population's SeedSequence tree, disjoint from every die key ``(i,)``
#: (die keys are length-1; stream keys are length-2).
_STREAM_BRANCH = 0x5EED


@dataclass(frozen=True)
class FleetRequest:
    """One synthetic inference request: a batch routed to a die at a voltage."""

    index: int
    die: int
    voltage: float


@dataclass(frozen=True)
class ChipPopulation:
    """A seeded population of ``num_dies`` instances of one chip design.

    Each die's variation sample comes from the spawn child
    ``SeedSequence(entropy, spawn_key=(die,))`` — the documented identity
    for ``SeedSequence(entropy).spawn(die + 1)[die]`` — so a sharded fleet
    materializes only its own dies, in O(1) per die, and still samples the
    exact population an unsharded run would.  ``scenario`` threads a
    :class:`~repro.sram.variation.VariationScenario` (correlated sampling,
    process corner) into every die.
    """

    num_dies: int
    num_pes: int = 8
    words_per_bank: int = 512
    entropy: int = 11
    scenario: VariationScenario | None = None

    def __post_init__(self) -> None:
        if self.num_dies <= 0:
            raise ValueError("num_dies must be positive")

    def die_sequence(self, die: int) -> np.random.SeedSequence:
        """The spawn child that seeds one die's variation sample."""
        if not 0 <= die < self.num_dies:
            raise ValueError(f"die {die} outside population of {self.num_dies}")
        return np.random.SeedSequence(self.entropy, spawn_key=(die,))

    def die_seed(self, die: int) -> int:
        """Integer projection of the die's spawn child, for chip configs."""
        return int(self.die_sequence(die).generate_state(1, np.uint64)[0])

    def sample_chip(self, die: int) -> Snnac:
        """Materialize one die: a fresh chip with its own variation sample."""
        config = SnnacConfig(
            seed=self.die_seed(die),
            num_pes=self.num_pes,
            words_per_bank=self.words_per_bank,
        )
        return Snnac(config, scenario=self.scenario)

    def request_stream(
        self,
        num_requests: int,
        voltages: Sequence[float],
        seed: int = 0,
    ) -> list[FleetRequest]:
        """A seeded synthetic request stream routed across the fleet.

        Every request is an inference batch assigned a die (uniform load
        balancing) and an SRAM operating voltage (uniform over ``voltages``
        — the mixed-operating-point serving mix).  The stream derives from
        its own branch of the population's seed tree, so it is identical
        for every shard of a fleet sweep and never perturbs die sampling.
        """
        if num_requests < 0:
            raise ValueError("num_requests must be non-negative")
        if not voltages:
            raise ValueError("at least one operating voltage is required")
        rng = np.random.default_rng(
            np.random.SeedSequence(self.entropy, spawn_key=(_STREAM_BRANCH, seed))
        )
        dies = rng.integers(0, self.num_dies, size=num_requests)
        points = rng.integers(0, len(voltages), size=num_requests)
        return [
            FleetRequest(index=i, die=int(dies[i]), voltage=float(voltages[points[i]]))
            for i in range(num_requests)
        ]


@dataclass
class DieReport:
    """Everything one die contributes to the fleet picture.

    Unmeasured fields are ``None`` rather than NaN: reports round-trip
    through the shard store's pickle channel, and NaN's self-inequality
    would make bit-identical merge comparisons spuriously fail.
    """

    die: int
    seed: int
    #: voltage at which this die's aggregate bit-fault rate reaches target
    vmin: float
    #: aggregate bit-fault rate at the target voltage (from profiled maps)
    fault_rate: float
    #: headroom between the rail and the most marginal canary, volts
    #: (negative: that canary already fails at the target voltage)
    canary_margin: float | None
    requests_served: int = 0
    cycles: int = 0
    busy_seconds: float = 0.0
    #: requests routed here, bucketed by operating voltage
    requests_by_voltage: dict[float, int] = field(default_factory=dict)
    #: application error measured at each operating voltage served
    errors_by_voltage: dict[float, float] = field(default_factory=dict)

    def error_samples(self) -> list[float]:
        """Per-request error samples (one entry per request served)."""
        return [
            self.errors_by_voltage[voltage]
            for voltage, count in sorted(self.requests_by_voltage.items())
            for _ in range(count)
        ]


@dataclass
class FleetSummary:
    """Population-level aggregation of per-die reports."""

    num_dies: int
    target_voltage: float
    vmin_mean: float
    vmin_std: float
    vmin_min: float
    vmin_max: float
    #: fraction of dies whose Vmin is at or below the target voltage
    yield_fraction: float
    canary_margin_min: float | None
    canary_margin_mean: float | None
    total_requests: int
    #: wall-clock of the busiest die — dies serve concurrently, so this is
    #: the fleet's makespan for the stream
    makespan_seconds: float
    throughput_requests_per_second: float
    #: per operating voltage: error percentiles over the request samples
    error_percentiles: dict[float, dict[str, float]] = field(default_factory=dict)


def simulate_die(
    population: ChipPopulation,
    die: int,
    flow: MaticFlow,
    *,
    topology,
    train,
    loss: str,
    baseline,
    test_inputs: np.ndarray,
    error_fn: Callable[[np.ndarray], float],
    requests: Sequence[FleetRequest] = (),
    target_voltage: float = 0.50,
    target_fault_rate: float = 0.01,
    canaries_per_bank: int = 8,
    temperature: float = calibration.NOMINAL_TEMPERATURE,
    frequency: float = NOMINAL_OPERATING_POINT.frequency,
) -> DieReport:
    """Materialize one die, characterize it, and serve its request slice.

    The die deploys ``baseline`` naively (no retraining — the fleet question
    is die-to-die spread under one shipped model), is profiled through the
    flow's memoized fault-map path, gets margin-placed oracle canaries, and
    then serves every request routed to it as one batched
    :meth:`~repro.accelerator.soc.Snnac.run_voltage_sweep` whose duplicate
    operating points alias a single decoded weight image.

    ``error_fn`` maps a batch's output activations to the application error;
    ``frequency`` converts served cycles into busy time for throughput
    accounting.  Cycles are charged per request even when the simulator
    aliases duplicate voltages — on silicon every request still executes.
    """
    chip = population.sample_chip(die)
    deployment = flow.deploy_naive(
        chip,
        topology,
        train,
        target_voltage=target_voltage,
        loss=loss,
        initial_network=baseline,
        profile=False,
    )

    vmin = np.concatenate(
        [bank.effective_vmin(temperature).ravel() for bank in chip.memory]
    )
    # the die's Vmin at the target fault rate: fault_rate(v) <= target
    # exactly when v >= this quantile of the effective V_min population
    die_vmin = float(np.quantile(vmin, 1.0 - target_fault_rate))

    # memoized per-bank profiling: warm re-runs of the same die recall the
    # fault maps from the artifact cache instead of re-measuring the banks
    fault_maps = flow.profile_chip(chip, target_voltage, temperature)
    total_bits = sum(fault_map.stuck_mask.size for fault_map in fault_maps)
    faulty_bits = sum(int(fault_map.stuck_mask.sum()) for fault_map in fault_maps)
    fault_rate = float(faulty_bits / total_bits) if total_bits else 0.0

    selector = CanarySelector(
        canaries_per_bank=canaries_per_bank, strategy="oracle", placement="margin"
    )
    canaries = selector.select(
        chip.memory,
        target_voltage,
        temperature=temperature,
        used_words_per_bank=deployment.program.placement.words_used_per_pe,
    )
    margins = [
        target_voltage
        - float(chip.memory[c.bank].effective_vmin(temperature)[c.address, c.bit])
        for c in canaries
    ]
    canary_margin = float(min(margins)) if margins else None

    die_requests = [request for request in requests if request.die == die]
    requests_by_voltage: dict[float, int] = {}
    errors_by_voltage: dict[float, float] = {}
    cycles = 0
    if die_requests:
        runs = chip.run_voltage_sweep(
            test_inputs, [request.voltage for request in die_requests]
        )
        for request, (outputs, stats) in zip(die_requests, runs):
            requests_by_voltage[request.voltage] = (
                requests_by_voltage.get(request.voltage, 0) + 1
            )
            if request.voltage not in errors_by_voltage:
                errors_by_voltage[request.voltage] = float(error_fn(outputs))
            cycles += int(stats.cycles)

    return DieReport(
        die=die,
        seed=population.die_seed(die),
        vmin=die_vmin,
        fault_rate=fault_rate,
        canary_margin=canary_margin,
        requests_served=len(die_requests),
        cycles=cycles,
        busy_seconds=cycles / float(frequency),
        requests_by_voltage=requests_by_voltage,
        errors_by_voltage=errors_by_voltage,
    )


def summarize_fleet(
    reports: Iterable[DieReport], target_voltage: float
) -> FleetSummary:
    """Aggregate die reports into the population-level distributions."""
    reports = sorted(reports, key=lambda report: report.die)
    if not reports:
        raise ValueError("summarize_fleet needs at least one die report")

    vmins = np.asarray([report.vmin for report in reports])
    margins = [
        report.canary_margin
        for report in reports
        if report.canary_margin is not None
    ]

    samples: dict[float, list[float]] = {}
    for report in reports:
        for voltage, count in report.requests_by_voltage.items():
            samples.setdefault(voltage, []).extend(
                [report.errors_by_voltage[voltage]] * count
            )
    percentiles = {
        voltage: {
            "p50": float(np.quantile(errors, 0.50)),
            "p90": float(np.quantile(errors, 0.90)),
            "p99": float(np.quantile(errors, 0.99)),
            "max": float(np.max(errors)),
        }
        for voltage, errors in sorted(samples.items())
    }

    total_requests = sum(report.requests_served for report in reports)
    makespan = max((report.busy_seconds for report in reports), default=0.0)
    throughput = total_requests / makespan if makespan > 0.0 else 0.0

    return FleetSummary(
        num_dies=len(reports),
        target_voltage=float(target_voltage),
        vmin_mean=float(vmins.mean()),
        vmin_std=float(vmins.std()),
        vmin_min=float(vmins.min()),
        vmin_max=float(vmins.max()),
        yield_fraction=float(np.mean(vmins <= target_voltage)),
        canary_margin_min=float(min(margins)) if margins else None,
        canary_margin_mean=float(np.mean(margins)) if margins else None,
        total_requests=total_requests,
        makespan_seconds=float(makespan),
        throughput_requests_per_second=float(throughput),
        error_percentiles=percentiles,
    )
