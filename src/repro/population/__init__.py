"""Chip-population fleet simulation (see :mod:`repro.population.fleet`).

:class:`ChipPopulation` samples N independent die instances of one chip
design via per-die ``SeedSequence.spawn`` children and routes a seeded
synthetic request stream across them at mixed operating points;
:func:`simulate_die` characterizes one die (Vmin, fault rate, canary
margin) and serves its slice of the stream; :func:`summarize_fleet`
aggregates die reports into population Vmin/yield distributions, per-
operating-point error percentiles, and fleet throughput.
"""

from .fleet import (
    ChipPopulation,
    DieReport,
    FleetRequest,
    FleetSummary,
    simulate_die,
    summarize_fleet,
)

__all__ = [
    "ChipPopulation",
    "DieReport",
    "FleetRequest",
    "FleetSummary",
    "simulate_die",
    "summarize_fleet",
]
