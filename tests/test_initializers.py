"""Unit tests for repro.nn.initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    HeNormal,
    NormalInitializer,
    UniformInitializer,
    XavierNormal,
    XavierUniform,
    ZerosInitializer,
    get_initializer,
)

ALL = [
    ZerosInitializer(),
    UniformInitializer(),
    NormalInitializer(),
    XavierUniform(),
    XavierNormal(),
    HeNormal(),
]


class TestShapesAndDeterminism:
    @pytest.mark.parametrize("initializer", ALL, ids=lambda i: type(i).__name__)
    def test_returns_requested_shape(self, initializer):
        rng = np.random.default_rng(0)
        out = initializer((7, 3), rng)
        assert out.shape == (7, 3)

    @pytest.mark.parametrize("initializer", ALL, ids=lambda i: type(i).__name__)
    def test_same_seed_same_values(self, initializer):
        a = initializer((5, 5), np.random.default_rng(42))
        b = initializer((5, 5), np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        init = XavierUniform()
        a = init((20, 20), np.random.default_rng(1))
        b = init((20, 20), np.random.default_rng(2))
        assert not np.array_equal(a, b)


class TestDistributions:
    def test_zeros_is_all_zero(self):
        out = ZerosInitializer()((10,), np.random.default_rng(0))
        assert np.all(out == 0.0)

    def test_uniform_respects_scale(self):
        out = UniformInitializer(scale=0.2)((1000,), np.random.default_rng(0))
        assert np.all(np.abs(out) <= 0.2)

    def test_uniform_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            UniformInitializer(scale=0.0)

    def test_normal_std(self):
        out = NormalInitializer(std=0.1)((20000,), np.random.default_rng(0))
        assert np.std(out) == pytest.approx(0.1, rel=0.05)

    def test_xavier_uniform_limit(self):
        fan_in, fan_out = 100, 50
        out = XavierUniform()((fan_in, fan_out), np.random.default_rng(0))
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        assert np.all(np.abs(out) <= limit)

    def test_xavier_normal_std(self):
        fan_in, fan_out = 200, 100
        out = XavierNormal()((fan_in, fan_out), np.random.default_rng(0))
        expected = np.sqrt(2.0 / (fan_in + fan_out))
        assert np.std(out) == pytest.approx(expected, rel=0.1)

    def test_he_normal_std(self):
        fan_in = 400
        out = HeNormal()((fan_in, 50), np.random.default_rng(0))
        assert np.std(out) == pytest.approx(np.sqrt(2.0 / fan_in), rel=0.1)

    def test_bias_shape_fan_handling(self):
        # 1-D shapes must not crash the fan computation
        out = XavierUniform()((16,), np.random.default_rng(0))
        assert out.shape == (16,)


class TestRegistry:
    @pytest.mark.parametrize(
        "name",
        ["zeros", "uniform", "normal", "xavier_uniform", "xavier_normal", "he_normal"],
    )
    def test_lookup(self, name):
        assert get_initializer(name).name == name

    def test_passthrough(self):
        init = HeNormal()
        assert get_initializer(init) is init

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_initializer("glorot")  # not a registered alias
